#!/usr/bin/env python
"""Fuzz smoke test (used by CI on every push, runnable locally).

A ~30-second differential-fuzzing campaign through the real CLI entry
point: generate programs, run all three configurations, assert zero
mismatches, and validate the exported campaign trace.

Usage: PYTHONPATH=src python scripts/fuzz_smoke.py [--seed N] [--count N]
"""

import argparse
import io
import json
import os
import sys
import tempfile
from contextlib import redirect_stdout

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402
from repro.trace import validate_chrome_trace  # noqa: E402


def run(seed: int, count: int, budget: float) -> None:
    workdir = tempfile.mkdtemp(prefix="repro-fuzz-smoke-")
    trace_path = os.path.join(workdir, "fuzz.json")
    stdout = io.StringIO()
    with redirect_stdout(stdout):
        code = main(["fuzz", "--seed", str(seed), "--count", str(count),
                     "--time-budget", str(budget), "-j", "2",
                     "--trace", trace_path])
    print(stdout.getvalue())
    if code != 0:
        raise SystemExit(f"repro fuzz exited {code}: the campaign found "
                         f"mismatches (see above)")

    with open(trace_path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    problems = validate_chrome_trace(trace)
    if problems:
        raise SystemExit("invalid Chrome trace:\n  " + "\n  ".join(problems))
    instants = [e for e in trace["traceEvents"]
                if e.get("ph") == "i" and e.get("name") == "fuzz-campaign"]
    if not instants:
        raise SystemExit("no fuzz-campaign instant event in the trace")
    args = instants[0].get("args", {})
    if args.get("mismatches") != 0:
        raise SystemExit(f"campaign stats report mismatches: {args}")
    if args.get("programs", 0) <= 0:
        raise SystemExit(f"campaign stats report no programs: {args}")
    print(f"fuzz smoke passed: {args['programs']} programs, "
          f"{args['configs_run']} configs, 0 mismatches "
          f"({args['elapsed_seconds']}s)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--count", type=int, default=60)
    parser.add_argument("--time-budget", type=float, default=25.0)
    ns = parser.parse_args()
    run(ns.seed, ns.count, ns.time_budget)
