#!/usr/bin/env python
"""Cluster smoke test (used by CI, runnable locally).

Spawns the full distributed topology as real processes — 1 asyncio
gateway, 2 cache shards, 2 worker nodes — then:

  1. submits a batch of jobs and SIGKILLs one worker mid-batch,
  2. asserts every accepted job still completes (the dead-node sweep
     re-queues the killed worker's leases onto the survivor),
  3. resubmits the batch and asserts the repeats are answered from the
     shard tier (per-shard hit metrics observed through the gateway),
  4. drains the gateway and checks a clean exit.

Usage: PYTHONPATH=src python scripts/cluster_smoke.py [--jobs N]
"""

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.topology import LocalCluster  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--sleep", type=float, default=0.25,
                        help="per-job busy time, long enough to be "
                             "mid-batch when the worker dies")
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as cache_dir:
        with LocalCluster(shards=2, workers=2, worker_threads=1,
                          heartbeat_timeout=1.0, retry_backoff=0.1,
                          cache_dir=cache_dir) as cluster:
            client = ServiceClient(*cluster.gateway_address, timeout=60.0)
            deadline = time.monotonic() + 20
            topo = client.health()["cluster"]
            while topo["workers_alive"] < 2 and time.monotonic() < deadline:
                time.sleep(0.2)  # workers register on first heartbeat
                topo = client.health()["cluster"]
            print(f"cluster up: gateway={cluster.gateway_address} "
                  f"shards={len(topo['ring']['shards'])} "
                  f"workers_alive={topo['workers_alive']}")
            assert len(topo["ring"]["shards"]) == 2, topo
            assert topo["workers_alive"] == 2, topo

            submitted = [client.submit(probe("sleep", seconds=args.sleep,
                                             tag=f"smoke-{i}"),
                                       wait=False)
                         for i in range(args.jobs)]
            time.sleep(args.sleep + 0.1)  # let worker 0 lease + start
            pid = cluster.kill_worker(0)
            print(f"killed worker pid={pid} mid-batch")

            try:
                for s in submitted:
                    response = client.result(s["job_id"], wait=True,
                                             wait_timeout=90)
                    assert response["ok"] and response["state"] == "done", \
                        f"job lost after worker kill: {response}"
                print(f"batch of {args.jobs} completed after the kill")

                health = client.health()
                assert health["cluster"]["workers_alive"] >= 1, health
                deadline = time.monotonic() + 10
                dead = 0
                while time.monotonic() < deadline:
                    metrics = client.metrics()["metrics"]
                    dead = metrics.get("repro_cluster_dead_nodes_total", 0)
                    if dead:
                        break
                    time.sleep(0.2)
                assert dead >= 1, \
                    "the sweeper never noticed the killed worker"

                # repeats land on the shard tier: hits on both shards
                for i in range(args.jobs):
                    repeat = client.submit(
                        probe("sleep", seconds=args.sleep,
                              tag=f"smoke-{i}"),
                        wait=True, wait_timeout=30)
                    assert repeat["cached"], \
                        f"repeat not served from cache: {repeat}"
                shards = client.health()["cluster"]["shards"]
                hits = {name: stats.get("hits", 0)
                        for name, stats in shards.items()}
                print(f"shard hits after resubmit: {hits}")
                assert sum(hits.values()) >= args.jobs, hits
                if not all(h > 0 for h in hits.values()):
                    # possible (if unlikely) for a small key set to hash
                    # onto one shard; worth a note, not a failure
                    print(f"note: uneven shard traffic: {hits}")

                response = client.shutdown(drain=True, drain_timeout=30)
                assert response["ok"] and response["draining"], response
                print("gateway drained cleanly")
            except AssertionError as exc:
                failures.append(str(exc))
            except ServiceError as exc:
                failures.append(f"service error: {exc}")

    if failures:
        print("SMOKE FAILED:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
