#!/usr/bin/env python
"""Frontend-conformance smoke test (the ``frontend-conformance`` CI
job, runnable locally).

Replays the dialect corpus under ``tests/fortran/corpus/``: every
``NAME.f`` is paired with ``NAME.expect.json`` recording the recovery
diagnostics and per-loop parallelization verdicts the tolerant
fixed-form frontend must produce.  For each program the smoke asserts:

1. **never-uncaught**: ``parse_source_tolerant`` returns a tree — it
   must not raise for any malformed input;
2. **diagnostics match**: the recorded ``(code, line, severity)``
   triples equal the committed expectations, in order;
3. **verdicts match**: the per-loop ``(unit, var, parallel, reason)``
   records and the parallel-loop count equal the expectations;
4. **round-trip fixpoint**: parse -> unparse -> reparse -> unparse
   reaches a textual fixpoint (the second unparse equals the first).

Regenerate expectations after an intentional frontend change with
``--update`` and review the diff.

Usage: PYTHONPATH=src python scripts/frontend_smoke.py [--update]
"""

import argparse
import glob
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fortran.fixedform import parallelize_source, parse_source_tolerant  # noqa: E402
from repro.program import Program  # noqa: E402

CORPUS = os.path.join(os.path.dirname(__file__), "..",
                      "tests", "fortran", "corpus")

#: minimum corpus size the CI gate insists on
MIN_PROGRAMS = 15


def _simplify(result):
    return {
        "diagnostics": [{"code": d["code"], "line": d["line"],
                         "severity": d["severity"]}
                        for d in result["diagnostics"]],
        "loops": [{"unit": l["unit"], "var": l["var"],
                   "parallel": l["parallel"], "reason": l["reason"]}
                  for l in result["loops"]],
        "parallel_count": result["parallel_count"],
        "units": result["units"],
    }


def _roundtrip(name: str, text: str, failures) -> None:
    sf, _ = parse_source_tolerant(text, name)
    prog = Program([sf], "roundtrip")
    prog.resolve()
    once = "".join(prog.unparse().values())
    sf2, _ = parse_source_tolerant(once, name)
    prog2 = Program([sf2], "roundtrip")
    prog2.resolve()
    twice = "".join(prog2.unparse().values())
    if once != twice:
        failures.append(f"{name}: parse->unparse->reparse is not a "
                        f"fixpoint")


def check_program(path: str, update: bool, failures) -> None:
    name = os.path.basename(path)
    expect_path = path[:-2] + ".expect.json"
    with open(path) as fh:
        text = fh.read()

    try:
        result = parallelize_source(
            {name: text}, config="annotation", annotations_mode="inferred")
    except Exception as exc:  # noqa: BLE001 - the property under test
        failures.append(f"{name}: uncaught {type(exc).__name__}: {exc}")
        return
    got = _simplify(result)

    if update:
        expect = dict(got)
        expect["config"] = "annotation"
        expect["annotations_mode"] = "inferred"
        with open(expect_path, "w") as fh:
            json.dump(expect, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  {name}: expectations updated")
    else:
        if not os.path.exists(expect_path):
            failures.append(f"{name}: missing {expect_path}")
            return
        with open(expect_path) as fh:
            expect = json.load(fh)
        for key in ("diagnostics", "loops", "parallel_count", "units"):
            if got[key] != expect[key]:
                failures.append(
                    f"{name}: {key} mismatch\n"
                    f"    expected: {expect[key]}\n"
                    f"    got:      {got[key]}")

    _roundtrip(name, text, failures)


def run(update: bool) -> None:
    paths = sorted(glob.glob(os.path.join(CORPUS, "*.f")))
    if len(paths) < MIN_PROGRAMS:
        raise SystemExit(f"frontend smoke FAILED: corpus has only "
                         f"{len(paths)} programs (< {MIN_PROGRAMS})")
    failures = []
    for path in paths:
        check_program(path, update, failures)
    if failures:
        raise SystemExit("frontend smoke FAILED:\n  "
                         + "\n  ".join(failures))
    print(f"frontend smoke passed: {len(paths)} corpus programs, "
          f"diagnostics + verdicts match, round-trip fixpoint holds")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--update", action="store_true",
                        help="rewrite the .expect.json files from the "
                             "current frontend behavior")
    ns = parser.parse_args()
    run(ns.update)
