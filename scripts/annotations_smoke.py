#!/usr/bin/env python
"""Annotations-inference smoke test (used by CI on every push,
runnable locally).

Runs the ``annotation`` configuration twice over the whole benchmark
suite — once with the hand-written annotations, once with
``--annotations inferred`` — and gates on the two soundness/quality
invariants the ablation documents:

* **zero flips**: inference must never parallelize an original loop the
  hand-annotation run left serial (per benchmark, origin-set subset);
* **recovery floor**: across the suite, inference must recover at least
  80% of the hand-annotation parallel loops.

Usage: PYTHONPATH=src python scripts/annotations_smoke.py [--floor F]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.ablation import ablation_rows, render_ablation  # noqa: E402


def run(floor: float, jobs: int) -> None:
    rows = ablation_rows(jobs=jobs)
    print(render_ablation(rows))

    failures = []
    for row in rows:
        flipped = sorted(row.origins["inferred"] - row.origins["hand"])
        if flipped:
            failures.append(
                f"{row.benchmark}: inference parallelized loops the "
                f"hand run left serial: {', '.join(flipped)}")

    hand_total = sum(row.par("hand") for row in rows)
    recovered = sum(len(row.origins["inferred"] & row.origins["hand"])
                    for row in rows)
    recovery = recovered / hand_total if hand_total else 1.0
    print(f"\nrecovery: {recovered}/{hand_total} "
          f"({100 * recovery:.0f}%), floor {100 * floor:.0f}%")
    if recovery < floor:
        failures.append(
            f"recovery {100 * recovery:.0f}% is below the "
            f"{100 * floor:.0f}% floor")

    if failures:
        raise SystemExit("annotations smoke FAILED:\n  "
                         + "\n  ".join(failures))
    print(f"annotations smoke passed: {len(rows)} benchmarks, 0 flips")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--floor", type=float, default=0.8)
    parser.add_argument("-j", "--jobs", type=int, default=2)
    ns = parser.parse_args()
    run(ns.floor, ns.jobs)
