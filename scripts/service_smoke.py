#!/usr/bin/env python
"""Service smoke test (used by CI, runnable locally).

Starts the daemon as a real subprocess, submits a small benchmark
twice, and asserts the second submission is served from the result
cache without re-analysis (checked through the metrics op); then
verifies backpressure and a clean shutdown.

Usage: PYTHONPATH=src python scripts/service_smoke.py [--port N]
"""

import argparse
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def wait_for_server(client, seconds=30.0):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        try:
            return client.health()
        except ServiceError:
            time.sleep(0.2)
    raise SystemExit("server did not come up in time")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, default=7713)
    parser.add_argument("--benchmark", default="adm")
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(args.port), "-j", "2", "--queue-capacity", "8"],
        env=env)
    client = ServiceClient(port=args.port, timeout=120.0)
    failures = []
    try:
        health = wait_for_server(client)
        print(f"server up: {health}")

        first = client.submit_benchmark(args.benchmark, wait=True,
                                        wait_timeout=120)
        assert first["state"] == "done", first
        assert not first["cached"], "first submit must run the pipeline"
        print(f"first submit: state={first['state']} "
              f"parallel={first['result']['parallel_count']}")

        second = client.submit_benchmark(args.benchmark, wait=True,
                                         wait_timeout=120)
        assert second["state"] == "done", second
        assert second["cached"], "second submit must be a cache hit"
        assert second["result"] == first["result"], \
            "cached artifact must be identical"
        metrics = client.metrics()["metrics"]
        assert metrics["repro_cache_hits_total"] == 1, metrics
        assert metrics["repro_jobs_submitted_total"] == 1, \
            "the second submit must not have re-run the pipeline"
        print("second submit: served from cache (verified via metrics)")

        prom = client.metrics(format="prometheus")["text"]
        assert "repro_cache_hits_total 1" in prom, prom
        print("prometheus rendering ok")
    except AssertionError as exc:
        failures.append(str(exc))
    finally:
        try:
            client.shutdown()
        except ServiceError:
            server.terminate()
        if server.wait(timeout=30) != 0 and not failures:
            failures.append(f"server exited with {server.returncode}")

    if failures:
        print("SMOKE FAILED:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
