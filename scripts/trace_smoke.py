#!/usr/bin/env python
"""Trace smoke test (used by CI, runnable locally).

Runs `repro table2 --benchmarks adm --trace out.json -j 4` through the
real CLI entry point, then asserts:

1. the trace file is valid Chrome trace-event JSON
   (`validate_chrome_trace` finds nothing);
2. the per-loop decision records — from the trace's `loopDecisions` AND
   from the sibling `.decisions.jsonl` — reproduce the table's
   `#par-loops` counts exactly per configuration;
3. both decision sources agree with each other.

Usage: PYTHONPATH=src python scripts/trace_smoke.py [--benchmark adm]
"""

import argparse
import io
import json
import os
import sys
import tempfile
from contextlib import redirect_stdout

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402
from repro.perfect import get_benchmark  # noqa: E402
from repro.trace import (count_parallel, read_decisions_jsonl,  # noqa: E402
                         validate_chrome_trace)

CONFIG_KINDS = ("none", "conventional", "annotation")


def run(benchmark: str) -> None:
    workdir = tempfile.mkdtemp(prefix="repro-trace-smoke-")
    trace_path = os.path.join(workdir, "out.json")
    stdout = io.StringIO()
    with redirect_stdout(stdout):
        code = main(["table2", "--benchmarks", benchmark,
                     "--trace", trace_path, "-j", "4"])
    if code != 0:
        raise SystemExit(f"repro table2 exited {code}")
    print(stdout.getvalue())

    with open(trace_path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    problems = validate_chrome_trace(trace)
    if problems:
        raise SystemExit("invalid Chrome trace:\n  " + "\n  ".join(problems))
    print(f"trace OK: {len(trace['traceEvents'])} events, "
          f"{len(trace['loopDecisions'])} decision records")

    decisions_path = os.path.splitext(trace_path)[0] + ".decisions.jsonl"
    jsonl = read_decisions_jsonl(decisions_path)
    from_jsonl = count_parallel(jsonl)
    from repro.trace import LoopDecision
    from_trace = count_parallel(
        LoopDecision.from_dict(d) for d in trace["loopDecisions"])
    if from_trace != from_jsonl:
        raise SystemExit(f"loopDecisions {from_trace} != "
                         f"decisions.jsonl {from_jsonl}")

    # recompute the table independently (serial, fresh run) and compare
    from repro.experiments.table2 import table2_rows
    (row,) = table2_rows(benchmarks=[get_benchmark(benchmark)])
    for kind in CONFIG_KINDS:
        expected = row.configs[kind].par_loops
        got = from_trace.get((row.benchmark, kind), 0)
        status = "ok" if got == expected else "MISMATCH"
        print(f"  {row.benchmark}/{kind}: table={expected} "
              f"trace={got} [{status}]")
        if got != expected:
            raise SystemExit(
                f"decision records disagree with the table for "
                f"{row.benchmark}/{kind}: {got} != {expected}")
    print("trace smoke passed")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--benchmark", default="adm")
    run(parser.parse_args().benchmark)
