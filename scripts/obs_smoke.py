#!/usr/bin/env python
"""Observability smoke check (used by CI, runnable locally).

Exercises the full PR-5 observability surface end to end:

1. runs a warm ``repro table2 -j 2`` subprocess with ``REPRO_LOG=json``
   and validates every stderr log line against the record schema,
   asserting all records share one ``run_id`` (worker records must carry
   the parent's correlation ID across the pool boundary);
2. generates the ``repro report`` HTML dashboard for the full suite and
   asserts it is self-contained (no external fetches, no scripts) and
   names all 12 PERFECT benchmarks.

Usage:
  PYTHONPATH=src python scripts/obs_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

FAILURES = []


def check(ok, message):
    print(("ok   " if ok else "FAIL ") + message)
    if not ok:
        FAILURES.append(message)


def smoke_json_logs() -> None:
    env = dict(os.environ)
    env["REPRO_LOG"] = "json"
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table2", "-j", "2"],
        capture_output=True, text=True, env=env, timeout=600)
    check(proc.returncode == 0,
          f"table2 -j 2 exits 0 (got {proc.returncode})")
    check("TABLE II" in proc.stdout, "table2 stdout renders the table")

    from repro.obs.logging import validate_record
    records = []
    bad_lines = []
    for line in proc.stderr.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            bad_lines.append(line)
            continue
        problems = validate_record(record)
        if problems:
            bad_lines.append(f"{line} -> {problems}")
        else:
            records.append(record)
    check(not bad_lines,
          f"every stderr line is a schema-valid JSON record "
          f"({len(bad_lines)} bad: {bad_lines[:3]})")
    check(len(records) >= 36,
          f"one pipeline-done record per (benchmark x config) "
          f"({len(records)} records)")
    run_ids = {r.get("run_id") for r in records}
    check(len(run_ids) == 1 and None not in run_ids,
          f"all records share the parent run_id (got {run_ids})")
    benchmarks = {r.get("benchmark") for r in records
                  if r.get("event") == "pipeline-done"}
    check(len(benchmarks) == 12,
          f"pipeline-done records cover 12 benchmarks "
          f"({len(benchmarks)} seen)")


def smoke_dashboard() -> None:
    from repro.cli import main
    from repro.perfect.suite import benchmark_names
    out = os.path.join(tempfile.mkdtemp(prefix="repro-obs-"),
                       "report.html")
    status = main(["report", "--out", out])
    check(status == 0, f"repro report --out exits 0 (got {status})")
    with open(out, "r", encoding="utf-8") as fh:
        html = fh.read()
    check(len(html) > 10_000, f"dashboard is substantial ({len(html)}B)")
    check("http://" not in html and "https://" not in html,
          "dashboard fetches nothing external")
    check("<script" not in html and "<link" not in html,
          "dashboard has no scripts or external stylesheets")
    missing = [n for n in benchmark_names() if n not in html]
    check(not missing,
          f"dashboard names all 12 PERFECT benchmarks (missing {missing})")
    check("Paper divergence" in html,
          "dashboard evaluates the paper's aggregate claims")
    check("repro_dep_tests_total" in html,
          "dashboard embeds the metrics registry")


def main_() -> int:
    smoke_json_logs()
    smoke_dashboard()
    if FAILURES:
        print(f"\nobs smoke FAILED ({len(FAILURES)} checks)")
        return 1
    print("\nobs smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main_())
