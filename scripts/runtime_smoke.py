#!/usr/bin/env python
"""Runtime backend smoke check (used by CI, runnable locally).

Runs one PERFECT benchmark end to end under BOTH runtime backends and
asserts the compiled closure backend is a bit-exact stand-in for the
tree-walker:

1. serial execution: identical output lines, simulated cost, stop
   message, and COMMON contents (compared via ``tobytes()``, so
   ``-0.0`` vs ``0.0`` or NaN payload differences fail);
2. the full three-mode differential check
   (:func:`repro.runtime.difftest.backend_equivalence`) on the same
   benchmark after the annotation pipeline has parallelized it;
3. the compile-template cache actually serves repeat constructions.

Usage:
  PYTHONPATH=src python scripts/runtime_smoke.py [BENCHMARK]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

FAILURES = []


def check(ok, message):
    print(("ok   " if ok else "FAIL ") + message)
    if not ok:
        FAILURES.append(message)


def main(argv=None) -> int:
    name = (argv or sys.argv[1:] or ["TRFD"])[0]

    from repro.annotations import AnnotationInliner, AnnotationRegistry
    from repro.perfect import get_benchmark
    from repro.polaris import Polaris
    from repro.runtime.backend import make_interpreter
    from repro.runtime.compiler import (clear_compile_cache,
                                        compile_cache_info)
    from repro.runtime.difftest import backend_equivalence
    from repro.runtime.machine import INTEL_MAC

    bench = get_benchmark(name)
    print(f"benchmark: {bench.name}")

    # 1. serial, both backends, exact comparison
    results = {}
    for backend in ("tree", "compiled"):
        interp = make_interpreter(bench.program(), backend,
                                  inputs=list(bench.inputs))
        results[backend] = interp.run()
    tree, comp = results["tree"], results["compiled"]
    check(tree.output == comp.output,
          f"serial output identical ({len(tree.output)} lines)")
    check(tree.cost == comp.cost,
          f"serial cost identical ({tree.cost})")
    check(tree.stop_message == comp.stop_message,
          f"serial stop message identical ({tree.stop_message!r})")
    check(set(tree.commons) == set(comp.commons),
          f"same COMMON blocks ({sorted(tree.commons)})")
    for cname in sorted(tree.commons):
        a, b = tree.commons[cname], comp.commons[cname]
        check(a.shape == b.shape and a.tobytes() == b.tobytes(),
              f"COMMON /{cname}/ bit-identical")

    # 2. parallelized program, all three execution modes
    program = bench.program()
    registry = (AnnotationRegistry.from_text(bench.annotations)
                if bench.annotations.strip() else AnnotationRegistry())
    AnnotationInliner(registry).run(program)
    Polaris().run(program)
    divergence = backend_equivalence(program, INTEL_MAC, bench.inputs)
    check(divergence is None,
          "backend_equivalence over serial/parallel/permuted"
          + (f" — {divergence}" if divergence else ""))

    # 3. template cache serves repeat constructions
    clear_compile_cache()
    make_interpreter(bench.program(), "compiled").run()
    first = compile_cache_info()
    make_interpreter(bench.program(), "compiled").run()
    second = compile_cache_info()
    check(first["misses"] >= 1, f"cold run compiles ({first['misses']} "
                                f"template misses)")
    check(second["hits"] > first["hits"]
          and second["misses"] == first["misses"],
          f"warm run reuses every template ({second['hits']} hits)")

    if FAILURES:
        print(f"\nruntime smoke FAILED ({len(FAILURES)} checks):")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("\nruntime smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
