#!/usr/bin/env python
"""Observability cluster smoke test (used by CI, runnable locally).

Spawns the full distributed topology with telemetry enabled, drives a
traced batch through it, and proves the observability plane end to end:

  1. runs a traced loadtest — one root trace context, every submission
     carries it beside the payload,
  2. polls the gateway ``telemetry`` op and asserts a merged snapshot
     with worker health (heartbeat ages, lease ages) arrives, and that
     ``repro top`` renders it,
  3. collects the stitched Chrome trace via ``trace-export`` and
     asserts spans from all three tiers — gateway, worker fleet, shard
     servers — share the run's single trace id, the stitched JSON
     passes :func:`validate_chrome_trace`, and parent/child timestamps
     are monotonic after skew correction,
  4. gates the loadtest report against the committed ``SLO.json``
     (must pass) and against an absurdly tight injected spec (must
     report violations).

Usage: PYTHONPATH=src python scripts/obs_cluster_smoke.py [--sessions N]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.loadtest import run_loadtest  # noqa: E402
from repro.cluster.topology import LocalCluster  # noqa: E402
from repro.obs.distributed import (ClockModel, parent_child_monotonic,  # noqa: E402
                                   stitch_spans)
from repro.obs.slo import (evaluate_slo, load_slo_spec,  # noqa: E402
                           measurements_from_loadtest, render_slo)
from repro.obs.top import render_top  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.trace.chrome import validate_chrome_trace  # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

TIGHT_SPEC = {
    "name": "injected-tight",
    "objectives": [
        # nothing real finishes in a nanosecond: guaranteed violation
        {"name": "impossible-latency", "kind": "p99_latency",
         "threshold_seconds": 1e-9},
    ],
}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--sessions", type=int, default=24)
    parser.add_argument("--out", default=None,
                        help="keep the stitched trace at this path")
    args = parser.parse_args()

    failures = []
    telemetry_dir = tempfile.mkdtemp(prefix="obs-smoke-telemetry-")
    with LocalCluster(shards=2, workers=2, worker_threads=1,
                      heartbeat_timeout=2.0, retry_backoff=0.1,
                      telemetry_dir=telemetry_dir,
                      run_id="obs-smoke") as cluster:
        host, port = cluster.gateway_address
        client = ServiceClient(host, port, timeout=60.0)
        deadline = time.monotonic() + 20
        while client.health()["cluster"]["workers_alive"] < 2 \
                and time.monotonic() < deadline:
            time.sleep(0.2)

        # 1. traced batch -------------------------------------------------
        report = run_loadtest(host, port, sessions=args.sessions,
                              jobs_per_session=2, distinct=8,
                              kind="probe", wait_timeout=60.0,
                              trace=True)
        print(f"loadtest: {report['jobs']} jobs ok={report['ok']} "
              f"trace={report['trace_id']}")
        if not report["ok"]:
            failures.append("traced loadtest lost jobs or mismatched")
        time.sleep(1.5)  # heartbeats ship the last worker spans

        # 2. telemetry plane ----------------------------------------------
        frame = client.telemetry()
        snapshot = frame.get("snapshot") or {}
        workers = ((snapshot.get("health") or {}).get("cluster") or {}) \
            .get("worker_nodes") or {}
        if len(workers) < 2:
            failures.append(f"telemetry snapshot shows {len(workers)} "
                            f"workers, expected 2")
        for name, node in workers.items():
            if node.get("last_heartbeat_age") is None:
                failures.append(f"worker {name} missing heartbeat age")
        board = render_top(snapshot, frame.get("events"))
        if "workers" not in board:
            failures.append("repro top board missing the worker table")
        print("telemetry: snapshot ok, "
              f"{len(frame.get('events') or [])} events, "
              f"{frame.get('spans_stored')} spans stored")

        # 3. stitched trace -----------------------------------------------
        export = client.trace_export(trace_id=report["trace_id"])
        spans = export["spans"]
        cats = {s.get("cat") for s in spans}
        trace_ids = {s.get("trace_id") for s in spans}
        for tier in ("gateway", "worker", "shard"):
            if tier not in cats:
                failures.append(f"no spans from the {tier} tier "
                                f"(got {sorted(cats)})")
        if trace_ids != {report["trace_id"]}:
            failures.append(f"spans carry {len(trace_ids)} trace ids, "
                            f"expected exactly the run's one")
        chrome = stitch_spans(
            spans, ClockModel.from_offsets(export["clock_offsets"]),
            trace_id=report["trace_id"], label="obs-smoke")
        problems = validate_chrome_trace(chrome)
        if problems:
            failures.append("stitched trace invalid: "
                            + "; ".join(problems[:3]))
        disorder = parent_child_monotonic(chrome)
        if disorder:
            failures.append("parent/child timestamps not monotonic: "
                            + "; ".join(disorder[:3]))
        out = args.out or os.path.join(telemetry_dir, "trace.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh)
        print(f"trace: {len(spans)} spans, tiers={sorted(cats)}, "
              f"stitched -> {out}")

        # the CLI collector must agree with the library path
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "trace-collect",
             "--host", host, "--port", str(port),
             "--out", os.path.join(telemetry_dir, "trace-cli.json")],
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(REPO_ROOT, "src")),
            capture_output=True, text=True, timeout=60)
        if proc.returncode != 0:
            failures.append(f"repro trace-collect exited "
                            f"{proc.returncode}: {proc.stderr.strip()}")
        else:
            print(f"trace-collect: {proc.stdout.strip()}")

    # 4. SLO gates (outside the cluster: pure report math) ----------------
    spec = load_slo_spec(os.path.join(REPO_ROOT, "SLO.json"))
    measurements = measurements_from_loadtest(report)
    evaluation = evaluate_slo(spec, measurements, source="loadtest")
    print(render_slo(evaluation))
    if not evaluation["ok"]:
        failures.append("committed SLO.json violated by a healthy run: "
                        + ", ".join(evaluation["violations"]))
    tight = evaluate_slo(TIGHT_SPEC, measurements, source="loadtest")
    if tight["ok"]:
        failures.append("injected nanosecond SLO passed — the gate "
                        "cannot detect violations")
    else:
        print(f"injected violation detected: {tight['violations']}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs cluster smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
