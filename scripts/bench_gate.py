#!/usr/bin/env python
"""Bench regression gate (used by CI, runnable locally).

Two suites, selected with ``--suite``:

* ``table2`` (default) — the warm Table II pipeline (the workload PR 1
  parallelized and cached); baseline in ``BENCH_table2.json``.
* ``figure20`` — the full Figure 20 run (12 benchmarks x 2 machines x
  3 configs, tuning included) under the current runtime backend
  (``REPRO_BACKEND``, compiled by default); baseline in
  ``BENCH_figure20.json``.

Each run records per-phase wall-clock (and, for table2, cache hit
rates) into the suite's baseline file, and — in ``--check`` mode —
fails when the measured total is more than ``--tolerance`` (default
25%) slower than the committed baseline.

Raw wall-clock is not comparable across machines, so the baseline also
stores a *calibration* measurement (a fixed pure-Python workload); the
gate scales the committed total by ``calibration_now / calibration_then``
before comparing.  A slower runner therefore gets a proportionally
slower allowance instead of a spurious failure.

Usage:
  PYTHONPATH=src python scripts/bench_gate.py --check            # CI gate
  PYTHONPATH=src python scripts/bench_gate.py --write-baseline   # refresh
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA = 1
_ROOT = os.path.join(os.path.dirname(__file__), "..")
BASELINES = {
    "table2": os.path.join(_ROOT, "BENCH_table2.json"),
    "figure20": os.path.join(_ROOT, "BENCH_figure20.json"),
}
#: every gate run appends one record here — the trajectory the
#: ``repro report`` dashboard plots (one line per suite)
DEFAULT_HISTORY = os.path.join(_ROOT, "BENCH_history.jsonl")
#: benchmarks timed by the gate (full Table II suite)
BENCHMARKS = None  # None = the full suite
WARM_REPS = 5
#: figure20 reps are lower: one cold rep warms every cache, and a
#: single warm rep is ~15s of simulated tuning
FIG20_WARM_REPS = 3


def calibrate(reps: int = 3) -> float:
    """A fixed pure-Python workload measuring this machine's speed."""
    def one() -> float:
        t0 = time.perf_counter()
        acc = 0
        table = {}
        for i in range(200_000):
            table[i & 1023] = i
            acc += table[i & 1023] * 3 // 7
        assert acc > 0
        return time.perf_counter() - t0
    return min(one() for _ in range(reps))


def measure() -> dict:
    """Warm Table II timings (median of WARM_REPS) + cache hit rates."""
    from repro.experiments.pipeline import BASE_CACHE_STATS
    from repro.experiments.table2 import table2_rows
    from repro.perfect import all_benchmarks
    from repro.perfect.suite import PROGRAM_CACHE_STATS
    from repro.polaris.report import merge_timings

    benchmarks = all_benchmarks() if BENCHMARKS is None else [
        b for b in all_benchmarks() if b.name.lower() in BENCHMARKS]

    table2_rows(benchmarks=benchmarks)  # warm parse + base caches
    PROGRAM_CACHE_STATS.reset()
    BASE_CACHE_STATS.reset()

    totals = []
    phase_samples = []
    for _ in range(WARM_REPS):
        t0 = time.perf_counter()
        rows = table2_rows(benchmarks=benchmarks)
        totals.append(time.perf_counter() - t0)
        phases = {}
        for row in rows:
            merge_timings(phases, row.timings)
        phase_samples.append(phases)

    median_idx = totals.index(sorted(totals)[len(totals) // 2])
    return {
        "schema": SCHEMA,
        "suite": "table2",
        "benchmarks": [b.name for b in benchmarks],
        "warm_reps": WARM_REPS,
        "total_seconds": round(sorted(totals)[len(totals) // 2], 4),
        "total_samples": [round(t, 4) for t in totals],
        "phases": {k: round(v, 4) for k, v in
                   sorted(phase_samples[median_idx].items())},
        "cache": {
            "program": PROGRAM_CACHE_STATS.as_dict(),
            "base": BASE_CACHE_STATS.as_dict(),
        },
        "calibration_seconds": round(calibrate(), 4),
    }


def measure_figure20() -> dict:
    """Warm Figure 20 timings (median of FIG20_WARM_REPS) under the
    current runtime backend."""
    from repro.experiments.figure20 import figure20_all
    from repro.polaris.report import merge_timings
    from repro.runtime.backend import default_backend

    figure20_all()  # cold rep: warms the parse and pipeline caches

    totals = []
    phase_samples = []
    for _ in range(FIG20_WARM_REPS):
        t0 = time.perf_counter()
        cells = figure20_all()
        totals.append(time.perf_counter() - t0)
        phases = {}
        for cell in cells:
            merge_timings(phases, cell.timings)
        phase_samples.append(phases)

    median_idx = totals.index(sorted(totals)[len(totals) // 2])
    return {
        "schema": SCHEMA,
        "suite": "figure20",
        "backend": default_backend(),
        "warm_reps": FIG20_WARM_REPS,
        "total_seconds": round(sorted(totals)[len(totals) // 2], 4),
        "total_samples": [round(t, 4) for t in totals],
        "phases": {k: round(v, 4) for k, v in
                   sorted(phase_samples[median_idx].items())},
        "calibration_seconds": round(calibrate(), 4),
    }


MEASURERS = {"table2": measure, "figure20": measure_figure20}


def check(measured: dict, baseline: dict, tolerance: float) -> int:
    scale = (measured["calibration_seconds"]
             / baseline["calibration_seconds"])
    allowed = baseline["total_seconds"] * scale * (1.0 + tolerance)
    # compare the best measured sample against the allowance: the gate
    # must not fail on one noisy rep when any rep hits the target
    best = min(measured["total_samples"])
    print(f"baseline total : {baseline['total_seconds']:.4f}s "
          f"(calibration {baseline['calibration_seconds']:.4f}s)")
    print(f"machine scale  : x{scale:.3f} "
          f"(calibration now {measured['calibration_seconds']:.4f}s)")
    print(f"allowed total  : {allowed:.4f}s (+{tolerance:.0%})")
    print(f"measured total : median {measured['total_seconds']:.4f}s, "
          f"best {best:.4f}s")
    for phase, seconds in measured["phases"].items():
        base = baseline["phases"].get(phase)
        delta = "" if base is None else \
            f"  (baseline {base:.4f}s, x{seconds / base if base else 0:.2f})"
        print(f"  {phase:<12}{seconds:.4f}s{delta}")
    for label, now in measured.get("cache", {}).items():
        print(f"  cache/{label:<7}hit rate {now['hit_rate']:.2f} "
              f"({now['memory_hits']}+{now['disk_hits']} hits, "
              f"{now['misses']} misses)")
    if best > allowed:
        print(f"bench gate FAILED: {best:.4f}s > {allowed:.4f}s "
              f"(>{tolerance:.0%} slower than the committed baseline)")
        return 1
    print("bench gate passed")
    return 0


def append_history(path: str, measured: dict, mode: str,
                   passed=None, allowed=None, tolerance=None) -> None:
    """Append one gate-run record to the JSONL trajectory (best-effort)."""
    record = {
        "ts": round(time.time(), 3),
        "mode": mode,
        "suite": measured.get("suite", "table2"),
        "total_seconds": measured["total_seconds"],
        "best_seconds": min(measured["total_samples"]),
        "phases": measured["phases"],
        "calibration_seconds": measured["calibration_seconds"],
        "passed": passed,
        "allowed_seconds": None if allowed is None else round(allowed, 4),
        "tolerance": tolerance,
    }
    if "cache" in measured:
        record["cache"] = measured["cache"]
    if "backend" in measured:
        record["backend"] = measured["backend"]
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError as exc:
        print(f"bench gate: cannot append history to {path}: {exc}",
              file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(BASELINES),
                        default="table2",
                        help="which workload to time (default table2)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: the suite's "
                             "committed BENCH_<suite>.json)")
    parser.add_argument("--output", default=None,
                        help="also write the fresh measurement here")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="JSONL trajectory to append each run to "
                             "('' disables)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown over baseline "
                             "(default 0.25 = 25%%)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="compare against the committed baseline "
                           "(default)")
    mode.add_argument("--write-baseline", action="store_true",
                      help="overwrite the committed baseline with a "
                           "fresh measurement")
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = BASELINES[args.suite]

    measured = MEASURERS[args.suite]()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(measured, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(measured, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written: {args.baseline} "
              f"(total {measured['total_seconds']:.4f}s)")
        if args.history:
            append_history(args.history, measured, "write-baseline")
        return 0

    if not os.path.exists(args.baseline):
        print(f"bench gate: no baseline at {args.baseline}; run "
              f"--write-baseline first", file=sys.stderr)
        return 2
    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        print(f"bench gate: baseline schema {baseline.get('schema')} != "
              f"{SCHEMA}; refresh with --write-baseline", file=sys.stderr)
        return 2
    if baseline.get("suite", "table2") != args.suite:
        print(f"bench gate: baseline {args.baseline} is for suite "
              f"{baseline.get('suite', 'table2')!r}, not {args.suite!r}",
              file=sys.stderr)
        return 2
    scale = (measured["calibration_seconds"]
             / baseline["calibration_seconds"])
    allowed = baseline["total_seconds"] * scale * (1.0 + args.tolerance)
    status = check(measured, baseline, args.tolerance)
    if args.history:
        append_history(args.history, measured, "check",
                       passed=(status == 0), allowed=allowed,
                       tolerance=args.tolerance)
    return status


if __name__ == "__main__":
    sys.exit(main())
