"""Shrinker behaviour: minimizes, preserves the failure signature, and
declines to 'shrink' programs that do not fail."""

from repro.fuzz.generator import derive_seed, generate
from repro.fuzz.shrinker import Shrinker, shrink

#: the pre-fix repro.annotations.generate bug, as a hand-written unsound
#: annotation: the oracle flags it, so it is a stable shrinker input
SOURCES = {"big.f": """\
      PROGRAM P
        COMMON /D/A(64),B(64),C(64),S,T,K
        S = 0.0
        T = 0.0
        K = 1
        DO I = 1, 64
          A(I) = I*0.5
          B(I) = I+1.0
          C(I) = 0.0
        END DO
        DO I = 1, 8
          C(I) = B(I)+1.5
        END DO
        DO I = 1, 4
          CALL SUB1(A(12),2.0,1)
        END DO
        DO I = 1, 8
          T = T+B(I)
        END DO
        WRITE(6,*) S, T
      END
      SUBROUTINE SUB1(V,X,M)
        COMMON /D/A(64),B(64),C(64),S,T,K
        S = S+X*0.5
      END
"""}

BAD_ANNOTATION = """\
subroutine SUB1(V, X, M) {
  S = unknown(X);
}
"""


def test_shrinks_to_minimal_repro():
    result = shrink(SOURCES, BAD_ANNOTATION)
    assert result is not None
    assert result.kind == "parallel-divergence"
    assert result.config == "annotation"
    # everything irrelevant to the failing call loop must be gone
    assert result.line_count() < 15, result.source_text()
    text = result.source_text()
    assert "CALL SUB1" in text
    # the unrelated loops were deleted
    assert "B(I)+1.5" not in text


def test_steps_and_oracle_runs_are_accounted():
    shrinker = Shrinker(SOURCES, BAD_ANNOTATION)
    result = shrinker.run()
    assert result.steps > 0
    assert result.oracle_runs >= result.steps
    assert result.rounds >= 1


def test_passing_program_is_not_shrunk():
    fuzz = generate(derive_seed(42, 0))
    assert shrink(fuzz.sources, fuzz.annotations) is None
