"""Campaign driver: determinism, stats accounting, trace export."""

from repro.fuzz.campaign import FuzzTask, run_campaign, run_fuzz_task
from repro.fuzz.generator import derive_seed
from repro.trace import Tracer


def _stats_key(stats):
    return (stats.programs, stats.configs_run, stats.failing_programs,
            stats.mismatches, dict(stats.parallel_loops),
            dict(stats.features), stats.source_lines)


def test_campaign_is_deterministic_across_runs_and_job_counts():
    first = run_campaign(seed=42, count=6, jobs=1)
    second = run_campaign(seed=42, count=6, jobs=2)
    assert _stats_key(first.stats) == _stats_key(second.stats)
    assert first.ok and second.ok


def test_campaign_counts_add_up():
    result = run_campaign(seed=42, count=5, jobs=1)
    stats = result.stats
    assert stats.programs == 5
    # three configurations + the inferred/demand re-runs per program
    assert stats.configs_run == 25
    assert stats.elapsed_seconds > 0
    assert stats.source_lines > 0


def test_campaign_exports_trace_instants():
    tracer = Tracer(label="test")
    run_campaign(seed=42, count=3, jobs=1, tracer=tracer)
    instants = [e for e in tracer.events if e.get("ph") == "i"]
    campaign = [e for e in instants if e["name"] == "fuzz-campaign"]
    assert campaign, "no fuzz-campaign instant event"
    args = campaign[0]["args"]
    assert args["programs"] == 3
    assert args["mismatches"] == 0
    assert args["seed"] == 42


def test_worker_task_is_selfcontained_and_picklable():
    import pickle
    task = FuzzTask(0, derive_seed(42, 0))
    outcome = run_fuzz_task(pickle.loads(pickle.dumps(task)))
    assert outcome["passed"] is True
    assert outcome["seed"] == task.seed
    pickle.dumps(outcome)


def test_time_budget_stops_the_campaign():
    result = run_campaign(seed=42, time_budget=0.0, jobs=1)
    assert result.stats.programs == 0


def test_progress_callback_is_invoked():
    lines = []
    run_campaign(seed=42, count=2, jobs=1, progress=lines.append)
    assert lines
