"""The oracle's properties, exercised both positively (clean programs
pass) and negatively (a hand-planted unsound annotation is caught)."""

from repro.fuzz.generator import derive_seed, generate
from repro.fuzz.oracle import run_oracle, strip_omp, verdict_fingerprint
from repro.polaris import Polaris
from repro.program import Program

RMW_SOURCES = {"rmw.f": """\
      PROGRAM P
        COMMON /D/A(64),B(64),C(64),S,T,K
        S = 0.0
        DO I = 1, 4
          CALL SUB1(A(12),2.0,1)
        END DO
        WRITE(6,*) S
      END
      SUBROUTINE SUB1(V,X,M)
        COMMON /D/A(64),B(64),C(64),S,T,K
        S = S+X*0.5
      END
"""}

#: correct summary: the incoming S is an input of the new S
GOOD_ANNOTATION = """\
subroutine SUB1(V, X, M) {
  S = unknown(S, X);
}
"""

#: unsound summary: claims the new S does not depend on the old one
BAD_ANNOTATION = """\
subroutine SUB1(V, X, M) {
  S = unknown(X);
}
"""


def test_clean_generated_programs_pass():
    for i in range(6):
        fuzz = generate(derive_seed(42, i))
        result = run_oracle(fuzz.sources, fuzz.annotations)
        assert result.passed, f"seed {fuzz.seed}: {result.describe()}"
        # three paper configurations + the inferred/demand re-runs
        assert result.configs_run == 5


def test_sound_annotation_passes():
    result = run_oracle(RMW_SOURCES, GOOD_ANNOTATION)
    assert result.passed, result.describe()


def test_unsound_annotation_is_caught():
    """An annotation hiding the S -> S flow dependence lets the driver
    parallelize the call loop; the permuted/parallel executions then
    disagree with the serial baseline and the oracle must say so."""
    result = run_oracle(RMW_SOURCES, BAD_ANNOTATION)
    assert not result.passed
    kinds = {(m.kind, m.config) for m in result.mismatches}
    assert ("parallel-divergence", "annotation") in kinds
    # the sound configurations must NOT be blamed
    assert not any(config in ("none", "conventional")
                   for _, config in kinds)


def test_oracle_reports_parallel_loop_counts():
    fuzz = generate(derive_seed(42, 1))
    result = run_oracle(fuzz.sources, fuzz.annotations)
    assert set(result.parallel_loops) == {"none", "conventional",
                                          "annotation", "inferred",
                                          "demand"}


def test_inference_property_gated_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_INFERENCE", "0")
    fuzz = generate(derive_seed(42, 2))
    result = run_oracle(fuzz.sources, fuzz.annotations)
    assert result.passed, result.describe()
    assert result.configs_run == 3
    assert set(result.parallel_loops) == {"none", "conventional",
                                          "annotation"}


def test_inferred_never_out_parallelizes_hand():
    """The inferred-flip property on clean generated programs: the
    inferred registry is a restriction of the generated "hand" one, so
    the subset check is active and must hold."""
    for i in range(4):
        fuzz = generate(derive_seed(7, i))
        result = run_oracle(fuzz.sources, fuzz.annotations)
        assert not any(m.kind == "inferred-flip"
                       for m in result.mismatches), result.describe()


def test_strip_omp_and_fingerprint():
    program = Program.from_sources(dict(RMW_SOURCES), "t")
    report = Polaris().run(program)
    strip_omp(program)
    text = "".join(program.unparse().values())
    assert "OMP" not in text
    # re-analysis of the stripped program reproduces the verdicts
    second = Polaris().run(Program.from_sources(program.unparse(), "t"))
    assert verdict_fingerprint(report) == verdict_fingerprint(second)


def test_crash_in_pipeline_is_a_finding():
    """Unparseable 'annotations' make the annotation pipeline raise; the
    oracle must convert that into a crash mismatch, not propagate."""
    result = run_oracle(RMW_SOURCES, "subroutine SUB1 { this is not")
    assert any(m.kind == "crash" for m in result.mismatches)
