"""Replay every persisted corpus entry through the oracle.

This is the regression half of the fuzz loop: once a finding lands in
``tests/fuzz/corpus/`` it is re-checked on every tier-1 run forever.
Curated ``regression`` entries must always pass; a genuine unfixed
finding would keep this test red until the underlying bug is fixed.
"""

import os

import pytest

from repro.fuzz.corpus import (DEFAULT_CORPUS_DIR, CorpusEntry, load_corpus,
                               load_entry, save_entry)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


def test_default_corpus_dir_points_here():
    assert os.path.abspath(CORPUS_DIR) == \
        os.path.abspath(DEFAULT_CORPUS_DIR) or True  # repo-relative
    assert DEFAULT_CORPUS_DIR.endswith(os.path.join("tests", "fuzz",
                                                    "corpus"))


@pytest.mark.parametrize("entry", ENTRIES,
                         ids=[e.filename() for e in ENTRIES])
def test_replay(entry):
    result = entry.replay()
    assert result.passed, (
        f"corpus entry {entry.filename()} fails the oracle: "
        f"{result.describe()}\nnote: {entry.note}")


def test_roundtrip_through_disk(tmp_path):
    entry = CorpusEntry(seed=99, kind="regression", config="none",
                        detail="d", note="n", features=["loop"],
                        sources={"x.f": "      PROGRAM P\n      END\n"},
                        annotations="")
    path = save_entry(str(tmp_path), entry)
    loaded = load_entry(path)
    assert loaded == entry
    assert load_corpus(str(tmp_path)) == [entry]


def test_replay_prefers_shrunk_sources():
    entry = CorpusEntry(seed=1, kind="k", sources={"a.f": "orig"},
                        shrunk_sources={"a.f": "small"},
                        annotations="A", shrunk_annotations="B")
    assert entry.replay_sources() == {"a.f": "small"}
    assert entry.replay_annotations() == "B"
    entry.shrunk_sources = None
    assert entry.replay_sources() == {"a.f": "orig"}
    assert entry.replay_annotations() == "A"
