"""Mutation test: a deliberately injected dependence-test bug must be
caught by the oracle and shrunk to a sub-30-line repro.

This is the acceptance check for the whole fuzz loop: if someone breaks
the dependence tester (here: patched to claim every reference pair
independent), the campaign must notice within a handful of seeds, and
the shrinker must hand back a repro small enough to read at a glance.
"""

from unittest import mock

from repro.analysis.dependence import DependenceTester
from repro.fuzz.campaign import run_campaign
from repro.fuzz.generator import derive_seed, generate
from repro.fuzz.oracle import run_oracle
from repro.fuzz.shrinker import shrink


def _always_independent(self, subs_a, subs_b, loops, dirs):
    return False


def test_injected_dependence_bug_is_caught_and_shrunk():
    with mock.patch.object(DependenceTester, "may_depend",
                           _always_independent):
        caught = None
        for i in range(20):
            fuzz = generate(derive_seed(7, i))
            result = run_oracle(fuzz.sources, fuzz.annotations)
            if not result.passed:
                caught = (fuzz, result)
                break
        assert caught is not None, \
            "an always-independent dependence test survived 20 programs"
        fuzz, result = caught
        assert any(m.kind == "parallel-divergence"
                   for m in result.mismatches), result.describe()

        shrunk = shrink(fuzz.sources, fuzz.annotations)
        assert shrunk is not None
        assert shrunk.kind == "parallel-divergence"
        assert shrunk.line_count() < 30, shrunk.source_text()
        assert shrunk.steps > 0
        # the minimized program still reproduces the same failure
        replay = run_oracle(shrunk.sources, shrunk.annotations)
        assert any(m.kind == "parallel-divergence"
                   for m in replay.mismatches)


def test_injected_bug_is_caught_through_the_campaign(tmp_path):
    """End to end: the campaign driver itself (serial, so the patch
    reaches the oracle in-process) flags the bug and persists a corpus
    entry with a shrunk repro."""
    corpus = tmp_path / "corpus"
    with mock.patch.object(DependenceTester, "may_depend",
                           _always_independent):
        result = run_campaign(seed=7, count=4, jobs=1,
                              corpus_dir=str(corpus))
    assert not result.ok
    failure = result.failures[0]
    assert failure.shrunk is not None
    assert failure.shrunk.line_count() < 30
    assert failure.corpus_path is not None
    saved = list(corpus.glob("*.json"))
    assert saved, "failure was not persisted to the corpus"


def test_campaign_is_clean_without_the_mutation():
    result = run_campaign(seed=7, count=4, jobs=1)
    assert result.ok, [f.describe() for f in result.failures]
