"""The generator's contract: deterministic, valid, executable output."""

from repro.fuzz.generator import (ARRAY_EXTENT, ARRAYS, GeneratorOptions,
                                  derive_seed, generate)
from repro.runtime.interpreter import Interpreter

SAMPLE = [derive_seed(42, i) for i in range(12)]


def test_deterministic_for_fixed_seed():
    for seed in SAMPLE[:4]:
        first, second = generate(seed), generate(seed)
        assert first.sources == second.sources
        assert first.annotations == second.annotations
        assert first.features == second.features


def test_distinct_seeds_give_distinct_programs():
    texts = {generate(seed).source_text() for seed in SAMPLE}
    assert len(texts) > len(SAMPLE) // 2


def test_derive_seed_is_stable_and_injective_enough():
    assert derive_seed(42, 0) == derive_seed(42, 0)
    seeds = {derive_seed(42, i) for i in range(1000)}
    assert len(seeds) == 1000


def test_generated_programs_parse_and_execute():
    for seed in SAMPLE:
        fuzz = generate(seed)
        program = fuzz.program()
        result = Interpreter(program, machine=None,
                             honor_directives=False).run()
        # the observation WRITEs must have produced output
        assert result.output


def test_sources_roundtrip_through_reparse():
    """The shipped text IS the ground truth: reparsing and unparsing it
    again reproduces the same text."""
    for seed in SAMPLE[:4]:
        fuzz = generate(seed)
        program = fuzz.program()
        assert "".join(program.unparse().values()) == fuzz.source_text()


def test_feature_gating():
    opts = GeneratorOptions(calls=False, functions=False,
                            non_affine=False, induction=False)
    for seed in SAMPLE[:6]:
        fuzz = generate(seed, opts)
        for feature in fuzz.features:
            assert not feature.startswith("call")
            assert feature not in ("function", "funcref", "non-affine",
                                   "induction")


def test_annotations_derive_for_leaf_callees():
    """Across a modest sample at least one program must carry derived
    annotations (otherwise the annotation configuration never differs
    from no-inline and the oracle's third pipeline is untested)."""
    assert any(generate(seed).annotations for seed in SAMPLE)


def test_array_bounds_are_respected():
    """No generated subscript may leave the declared extent — the
    interpreter would raise, so a clean run is the witness; here we also
    check the declared geometry is the shared one."""
    fuzz = generate(SAMPLE[0])
    text = fuzz.source_text()
    for array in ARRAYS:
        assert f"{array}({ARRAY_EXTENT})" in text


def test_core_dialect_never_emits_extended_features():
    for seed in SAMPLE:
        fuzz = generate(seed)
        assert "computed-goto" not in fuzz.features
        assert "data" not in fuzz.features


def test_extended_dialect_emits_and_executes():
    opts = GeneratorOptions(dialect="extended")
    seen = set()
    for seed in SAMPLE:
        fuzz = generate(seed, opts)
        seen.update(f for f in fuzz.features
                    if f in ("computed-goto", "data"))
        program = fuzz.program()
        result = Interpreter(program, machine=None,
                             honor_directives=False).run()
        assert result.output
        # the shipped text stays the reparse fixpoint with the new
        # productions in play
        assert "".join(program.unparse().values()) == fuzz.source_text()
    assert seen == {"computed-goto", "data"}
