"""Execution semantics of the dialect control-flow constructs, checked
bit-for-bit across the tree-walking and compiled backends."""

import pytest

from repro.errors import InterpreterError
from repro.program import Program
from repro.runtime import CompiledInterpreter, Interpreter
from repro.runtime.difftest import backend_equivalence
from repro.runtime.machine import INTEL_MAC


def equivalent(src, inputs=None):
    program = Program.from_source(src)
    divergence = backend_equivalence(program, INTEL_MAC, inputs)
    assert divergence is None, divergence


def run_tree(src):
    return Interpreter(Program.from_source(src)).run()


class TestComputedGoto:
    def test_dispatch_in_range(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ B(3)\n"
               "      K = 2\n"
               "      GO TO (10, 20, 30), K\n"
               "   10 B(1) = 1.0\n"
               "      GO TO 40\n"
               "   20 B(2) = 2.0\n"
               "      GO TO 40\n"
               "   30 B(3) = 3.0\n"
               "   40 CONTINUE\n"
               "      END\n")
        result = run_tree(src)
        assert list(result.commons["R"]) == [0.0, 2.0, 0.0]
        equivalent(src)

    @pytest.mark.parametrize("sel", [0, 4])
    def test_out_of_range_falls_through(self, sel):
        # F77: an index outside 1..len(targets) continues at the next
        # statement
        src = ("      PROGRAM P\n"
               "      COMMON /R/ X\n"
               f"      K = {sel}\n"
               "      GO TO (10, 20), K\n"
               "      X = 9.0\n"
               "      GO TO 30\n"
               "   10 X = 1.0\n"
               "      GO TO 30\n"
               "   20 X = 2.0\n"
               "   30 CONTINUE\n"
               "      END\n")
        result = run_tree(src)
        assert result.commons["R"][0] == 9.0
        equivalent(src)

    def test_cost_parity(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ X\n"
               "      K = 1\n"
               "      GO TO (10), K\n"
               "   10 X = 1.0\n"
               "      END\n")
        prog = Program.from_source(src)
        tree = Interpreter(prog).run()
        compiled = CompiledInterpreter(prog).run()
        assert tree.cost == compiled.cost


class TestAssignedGoto:
    def test_assign_then_jump(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ X\n"
               "      ASSIGN 20 TO IGO\n"
               "      GO TO IGO, (10, 20)\n"
               "   10 X = 1.0\n"
               "      GO TO 30\n"
               "   20 X = 2.0\n"
               "   30 CONTINUE\n"
               "      END\n")
        result = run_tree(src)
        assert result.commons["R"][0] == 2.0
        equivalent(src)

    def test_missing_target_list_errors_in_both_backends(self):
        # an assigned GOTO without a label list is unanalyzable control
        # flow; both backends must refuse identically
        src = ("      PROGRAM P\n"
               "      ASSIGN 10 TO IGO\n"
               "      GO TO IGO\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = Program.from_source(src)
        with pytest.raises(InterpreterError):
            Interpreter(prog).run()
        with pytest.raises(InterpreterError):
            CompiledInterpreter(prog).run()


class TestDataAndEquivalence:
    def test_data_initialization_executes(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ T\n"
               "      REAL W(4)\n"
               "      DATA W /2*1.5, 2*0.5/\n"
               "      T = W(1) + W(2) + W(3) + W(4)\n"
               "      END\n")
        result = run_tree(src)
        assert result.commons["R"][0] == 4.0
        equivalent(src)

    def test_corpus_style_program_equivalence(self):
        # the mixed acceptance shape: DATA + computed GOTO feeding loops
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(8)\n"
               "      REAL W(8)\n"
               "      DATA W /8*0.25/\n"
               "      K = 2\n"
               "      GO TO (10, 20), K\n"
               "   10 CONTINUE\n"
               "   20 CONTINUE\n"
               "      DO 30 I = 1, 8\n"
               "        A(I) = A(I) + W(I)\n"
               "   30 CONTINUE\n"
               "      END\n")
        equivalent(src)
