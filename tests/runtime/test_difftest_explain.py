"""Regression tests for DiffTestResult.explain(): it must never raise
and must agree with ``passed`` on every divergence shape — mismatched
COMMON sets, shape mismatches, element divergence, and tolerance-level
output reordering."""

import numpy as np
import pytest

from repro.runtime.difftest import DiffTestResult
from repro.runtime.interpreter import ExecutionResult


def _result(commons=None, output=()):
    return ExecutionResult(output=list(output), cost=0.0,
                           commons={k: np.asarray(v, dtype=float)
                                    for k, v in (commons or {}).items()})


def _diff(serial, parallel, permuted=None):
    return DiffTestResult(serial, parallel, permuted or parallel)


class TestAgreementWithPassed:
    def test_identical_passes(self):
        a = _result({"D": [1.0, 2.0]}, ["1.0"])
        b = _result({"D": [1.0, 2.0]}, ["1.0"])
        r = _diff(a, b)
        assert r.passed
        assert r.explain() == "parallel execution matches serial execution"

    def test_missing_common_block(self):
        r = _diff(_result({"D": [1.0], "E": [2.0]}),
                  _result({"D": [1.0]}))
        assert not r.passed
        msg = r.explain()
        assert "COMMON /E/" in msg and "missing" in msg

    def test_extra_common_block(self):
        r = _diff(_result({"D": [1.0]}),
                  _result({"D": [1.0], "X": [9.0]}))
        assert not r.passed
        msg = r.explain()
        assert "COMMON /X/" in msg and "unexpected" in msg

    def test_shape_mismatch_does_not_raise(self):
        r = _diff(_result({"D": [1.0, 2.0, 3.0]}),
                  _result({"D": [1.0, 2.0, 3.0, 4.0]}))
        assert not r.passed  # must not raise either
        msg = r.explain()
        assert "shape" in msg and "diverges" in msg

    def test_element_divergence_pinpointed(self):
        r = _diff(_result({"D": [1.0, 2.0, 3.0]}),
                  _result({"D": [1.0, 9.0, 3.0]}))
        assert not r.passed
        msg = r.explain()
        assert "COMMON /D/" in msg and "diverges" in msg
        assert "element 1" in msg

    def test_tolerance_level_output_reordering_passes(self):
        # a parallel reduction may legally reorder a float sum; the
        # printed value differs in the last bits only
        a = _result({"D": [1.0]}, ["SUM =   1234.5678901234567"])
        b = _result({"D": [1.0]}, ["SUM =   1234.5678901234569"])
        r = _diff(a, b)
        assert r.passed
        assert r.explain() == "parallel execution matches serial execution"

    def test_real_output_divergence_reported_with_line(self):
        a = _result({"D": [1.0]}, ["OK", "SUM = 10.0"])
        b = _result({"D": [1.0]}, ["OK", "SUM = 20.0"])
        r = _diff(a, b)
        assert not r.passed
        msg = r.explain()
        assert "output diverges" in msg and "line 1" in msg

    def test_output_line_count_divergence(self):
        r = _diff(_result({}, ["A"]), _result({}, ["A", "B"]))
        assert not r.passed
        assert "output diverges" in r.explain()

    def test_permuted_only_divergence_labeled(self):
        good = _result({"D": [1.0]})
        bad = _result({"D": [2.0]})
        r = DiffTestResult(serial=good, parallel=good, permuted=bad)
        assert not r.passed
        msg = r.explain()
        assert msg.startswith("permuted:") and "in-order" not in msg

    @pytest.mark.parametrize("other", [
        {"D": [1.0, 2.0]},                       # element divergence
        {"D": [1.0]},                            # shape mismatch
        {"E": [1.0, 5.0]},                       # different block set
        {},                                      # all blocks missing
    ])
    def test_explain_never_raises_and_agrees(self, other):
        serial = _result({"D": [1.0, 5.0]})
        r = _diff(serial, _result(other))
        assert r.passed is False
        assert isinstance(r.explain(), str) and r.explain()
