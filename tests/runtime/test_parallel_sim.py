"""Tests of the simulated OpenMP execution: semantics (privatization,
reductions, lastprivate peeling, permuted validation) and the cost model."""

import pytest

from repro.program import Program
from repro.runtime import AMD_OPTERON, INTEL_MAC, Interpreter, diff_test
from repro.runtime.interpreter import ORDER_PERMUTED
from repro.runtime.machine import MachineModel
from repro.polaris import Polaris, PolarisOptions


def parallelize(src, **opts):
    prog = Program.from_source(src)
    Polaris(PolarisOptions(**opts)).run(prog)
    return prog


BIG_LOOP = ("      PROGRAM P\n"
            "      COMMON /R/ A(10000)\n"
            "      DO 10 I = 1, 10000\n"
            "        A(I) = I*2.0 + 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")


class TestMachineModel:
    def test_parallel_time_scales(self):
        m = MachineModel("m", threads=4, fork_join_overhead=0.0,
                         per_thread_overhead=0.0)
        costs = [10.0] * 100
        assert m.parallel_time(costs) == pytest.approx(250.0)

    def test_overhead_dominates_small_loops(self):
        m = MachineModel("m", threads=4, fork_join_overhead=1000.0)
        assert m.parallel_time([1.0, 1.0]) > 1000.0

    def test_nested_runs_serial(self):
        m = MachineModel("m", threads=4, fork_join_overhead=100.0)
        costs = [10.0] * 8
        assert m.parallel_time(costs, nested=True) >= sum(costs)

    def test_machines_defined(self):
        assert INTEL_MAC.threads == 8
        assert AMD_OPTERON.threads == 4


class TestParallelSemantics:
    def test_simple_loop_matches_serial(self):
        prog = parallelize(BIG_LOOP)
        result = diff_test(prog, INTEL_MAC)
        assert result.passed, result.explain()

    def test_speedup_on_big_loop(self):
        prog = parallelize(BIG_LOOP)
        serial = Interpreter(prog, honor_directives=False).run()
        par = Interpreter(prog, machine=INTEL_MAC).run()
        assert par.cost < serial.cost
        speedup = serial.cost / par.cost
        assert speedup > 2.0

    def test_overhead_hurts_small_loop(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(8)\n"
               "      DO 10 K = 1, 200\n"
               "        DO 20 I = 1, 8\n"
               "          A(I) = A(I) + 1.0\n"
               "   20   CONTINUE\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = parallelize(src)
        serial = Interpreter(prog, honor_directives=False).run()
        par = Interpreter(prog, machine=INTEL_MAC).run()
        # the inner loop is tiny: fork/join overhead slows the program
        assert par.cost > serial.cost

    def test_private_scalar(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(1000), B(1000)\n"
               "      DO 10 I = 1, 1000\n"
               "        T = I*2.0\n"
               "        A(I) = T\n"
               "        B(I) = T + 1.0\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = parallelize(src)
        result = diff_test(prog, INTEL_MAC)
        assert result.passed, result.explain()

    def test_private_array_with_peeling(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(100,16), T(16)\n"
               "      DO 10 I = 1, 100\n"
               "        DO 20 J = 1, 16\n"
               "          T(J) = I*1.0 + J\n"
               "   20   CONTINUE\n"
               "        DO 30 J = 1, 16\n"
               "          A(I,J) = T(17-J)\n"
               "   30   CONTINUE\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = parallelize(src)
        # T must be in a PRIVATE clause and survive diff testing,
        # including the lastprivate contract (T keeps iteration-100 values)
        result = diff_test(prog, INTEL_MAC)
        assert result.passed, result.explain()

    def test_reduction(self):
        src = ("      PROGRAM P\n"
               "      COMMON /R/ S, A(5000)\n"
               "      DO 5 I = 1, 5000\n"
               "        A(I) = I*1.0\n"
               "    5 CONTINUE\n"
               "      S = 0.0\n"
               "      DO 10 I = 1, 5000\n"
               "        S = S + A(I)\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = parallelize(src)
        result = diff_test(prog, INTEL_MAC)
        assert result.passed, result.explain()
        assert result.parallel.commons["R"][0] == 5000 * 5001 / 2

    def test_unsound_directive_caught(self):
        # hand-written WRONG directive: the loop carries a dependence
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(100)\n"
               "      A(1) = 1.0\n"
               "!$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(T)\n"
               "      DO 10 I = 2, 100\n"
               "        T = A(I-1)\n"
               "        A(I) = T + 1.0\n"
               "   10 CONTINUE\n"
               "!$OMP END PARALLEL DO\n"
               "      END\n")
        prog = Program.from_source(src)
        result = diff_test(prog, INTEL_MAC)
        assert not result.passed
        assert "diverges" in result.explain()

    def test_unsound_privatization_caught(self):
        # PRIVATE on a variable that carries values across iterations
        src = ("      PROGRAM P\n"
               "      COMMON /R/ A(100)\n"
               "      T = 5.0\n"
               "!$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(T)\n"
               "      DO 10 I = 1, 100\n"
               "        A(I) = T\n"
               "        T = T + 1.0\n"
               "   10 CONTINUE\n"
               "!$OMP END PARALLEL DO\n"
               "      END\n")
        prog = Program.from_source(src)
        result = diff_test(prog, INTEL_MAC)
        assert not result.passed

    def test_permuted_order_still_correct(self):
        prog = parallelize(BIG_LOOP)
        from repro.runtime.interpreter import Interpreter as I
        permuted = I(prog, machine=INTEL_MAC,
                     iteration_order=ORDER_PERMUTED).run()
        serial = I(prog, honor_directives=False).run()
        assert serial.memory_equal(permuted)

    def test_fewer_threads_less_speedup(self):
        prog = parallelize(BIG_LOOP)
        serial = Interpreter(prog, honor_directives=False).run()
        par8 = Interpreter(prog, machine=INTEL_MAC).run()
        par4 = Interpreter(prog, machine=AMD_OPTERON).run()
        assert serial.cost / par8.cost > serial.cost / par4.cost
