"""Interpreter unit tests: semantics of the Fortran 77 subset."""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.program import Program
from repro.runtime import Interpreter
from repro.runtime.values import ArrayView, ScalarRef


def run(src, inputs=None):
    prog = Program.from_source(src)
    return Interpreter(prog, inputs=inputs).run()


def common(result, block):
    return result.commons[block.upper()]


class TestValues:
    def test_scalar_ref_integer_truncates(self):
        buf = np.zeros(4)
        r = ScalarRef(buf, 1, "INTEGER")
        r.set(3.7)
        assert r.get() == 3.0

    def test_column_major_layout(self):
        buf = np.arange(12, dtype=np.float64)
        v = ArrayView(buf, 0, [1, 1], [3, 4], "REAL", "A")
        # A(2,3) -> offset (2-1) + (3-1)*3 = 7
        assert v.get([2, 3]) == 7.0

    def test_lower_bounds(self):
        buf = np.arange(10, dtype=np.float64)
        v = ArrayView(buf, 0, [0], [10], "REAL", "A")
        assert v.get([0]) == 0.0
        assert v.get([9]) == 9.0

    def test_bounds_check(self):
        buf = np.zeros(6)
        v = ArrayView(buf, 0, [1], [6], "REAL", "A")
        with pytest.raises(InterpreterError):
            v.get([7])

    def test_subview_offsets(self):
        buf = np.arange(20, dtype=np.float64)
        v = ArrayView(buf, 0, [1], [20], "REAL", "A")
        sub = v.subview([5], [1], [4], "REAL", "B")
        assert sub.get([1]) == 4.0  # element A(5)


class TestBasics:
    def test_assignment_and_arithmetic(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X, Y\n"
                "      X = 3.0\n"
                "      Y = X*2.0 + 1.0\n"
                "      END\n")
        assert common(r, "R")[1] == 7.0

    def test_integer_division_truncates(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ I, J\n"
                "      I = 7/2\n"
                "      J = (-7)/2\n"
                "      END\n")
        assert common(r, "R")[0] == 3.0
        assert common(r, "R")[1] == -3.0

    def test_power(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      X = 2.0**10\n"
                "      END\n")
        assert common(r, "R")[0] == 1024.0

    def test_do_loop_trip_semantics(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N, I\n"
                "      N = 0\n"
                "      DO 10 I = 1, 10, 3\n"
                "        N = N + 1\n"
                "   10 CONTINUE\n"
                "      END\n")
        assert common(r, "R")[0] == 4.0   # trips
        assert common(r, "R")[1] == 13.0  # final DO variable value

    def test_zero_trip_loop(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N\n"
                "      N = 0\n"
                "      DO 10 I = 5, 1\n"
                "        N = N + 1\n"
                "   10 CONTINUE\n"
                "      END\n")
        assert common(r, "R")[0] == 0.0

    def test_if_elseif_else(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      I = 5\n"
                "      IF (I.LT.0) THEN\n"
                "        X = 1.0\n"
                "      ELSE IF (I.EQ.5) THEN\n"
                "        X = 2.0\n"
                "      ELSE\n"
                "        X = 3.0\n"
                "      END IF\n"
                "      END\n")
        assert common(r, "R")[0] == 2.0

    def test_goto_forward_and_back(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N\n"
                "      N = 0\n"
                "   20 N = N + 1\n"
                "      IF (N.LT.3) GO TO 20\n"
                "      END\n")
        assert common(r, "R")[0] == 3.0

    def test_stop_message(self):
        r = run("      PROGRAM P\n"
                "      STOP 'DONE'\n"
                "      END\n")
        assert r.stop_message == "DONE"

    def test_write_output(self):
        r = run("      PROGRAM P\n"
                "      X = 1.5\n"
                "      WRITE(6,*) X, 2.5\n"
                "      END\n")
        assert r.output == ["1.5 2.5"]

    def test_read_inputs(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X, N\n"
                "      READ(5,*) X, N\n"
                "      END\n", inputs=[2.5, 7])
        assert common(r, "R")[0] == 2.5
        assert common(r, "R")[1] == 7.0

    def test_parameter_and_data(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ A(5)\n"
                "      PARAMETER (N=5)\n"
                "      DIMENSION B(3)\n"
                "      DATA B /1.0, 2.0, 3.0/\n"
                "      DO 10 I = 1, N\n"
                "        A(I) = B(1) + B(3)\n"
                "   10 CONTINUE\n"
                "      END\n")
        assert list(common(r, "R")) == [4.0] * 5

    def test_intrinsics(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ A, B, C, D\n"
                "      A = SQRT(16.0)\n"
                "      B = ABS(-3.5)\n"
                "      C = MAX(1.0, 7.0, 3.0)\n"
                "      D = MOD(7, 3)\n"
                "      END\n")
        assert list(common(r, "R")) == [4.0, 3.5, 7.0, 1.0]

    def test_division_by_zero(self):
        with pytest.raises(InterpreterError):
            run("      PROGRAM P\n"
                "      X = 1.0/0.0\n"
                "      END\n")


class TestProcedures:
    def test_by_reference_scalar(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      X = 1.0\n"
                "      CALL BUMP(X)\n"
                "      END\n"
                "      SUBROUTINE BUMP(V)\n"
                "      V = V + 1.0\n"
                "      END\n")
        assert common(r, "R")[0] == 2.0

    def test_array_element_view_binding(self):
        # the Figure 2/3 mechanism: T(IX+1) passed as an array formal
        r = run("      PROGRAM P\n"
                "      COMMON /R/ T(20)\n"
                "      CALL FILL(T(6), 3)\n"
                "      END\n"
                "      SUBROUTINE FILL(X2, N)\n"
                "      DIMENSION X2(*)\n"
                "      DO 10 I = 1, N\n"
                "        X2(I) = I*1.0\n"
                "   10 CONTINUE\n"
                "      END\n")
        t = common(r, "R")
        assert list(t[5:8]) == [1.0, 2.0, 3.0]
        assert t[0] == 0.0

    def test_adjustable_dims(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ A(12)\n"
                "      CALL INIT(A, 3, 4)\n"
                "      END\n"
                "      SUBROUTINE INIT(M, L, N)\n"
                "      DIMENSION M(L, N)\n"
                "      DO 10 J = 1, N\n"
                "        DO 10 I = 1, L\n"
                "          M(I, J) = I + 10*J\n"
                "   10 CONTINUE\n"
                "      END\n")
        a = common(r, "R")
        assert a[0] == 11.0   # M(1,1)
        assert a[3] == 21.0   # M(1,2) column-major: 1 + 10*2
        assert a[11] == 43.0  # M(3,4)

    def test_sequence_association_common(self):
        # two units view the same common with different shapes
        r = run("      PROGRAM P\n"
                "      COMMON /C/ A(2,3)\n"
                "      A(2,1) = 9.0\n"
                "      CALL PEEK\n"
                "      END\n"
                "      SUBROUTINE PEEK\n"
                "      COMMON /C/ B(6)\n"
                "      COMMON /R/ OUT\n"
                "      OUT = B(2)\n"
                "      END\n")
        assert common(r, "R")[0] == 9.0

    def test_function_call(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      X = SQ(3.0) + SQ(4.0)\n"
                "      END\n"
                "      REAL FUNCTION SQ(V)\n"
                "      SQ = V*V\n"
                "      END\n")
        assert common(r, "R")[0] == 25.0

    def test_early_return(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      X = 0.0\n"
                "      CALL MAYBE(X, 1)\n"
                "      END\n"
                "      SUBROUTINE MAYBE(V, FLAG)\n"
                "      INTEGER FLAG\n"
                "      IF (FLAG.EQ.1) RETURN\n"
                "      V = 99.0\n"
                "      END\n")
        assert common(r, "R")[0] == 0.0

    def test_expression_actual_copy_in(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      CALL TAKE(2.0+3.0, X)\n"
                "      END\n"
                "      SUBROUTINE TAKE(A, OUT)\n"
                "      OUT = A\n"
                "      END\n")
        assert common(r, "R")[0] == 5.0

    def test_missing_procedure(self):
        with pytest.raises(InterpreterError):
            run("      PROGRAM P\n"
                "      CALL NOWHERE(1)\n"
                "      END\n")

    def test_recursion_works(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N\n"
                "      N = 5\n"
                "      CALL FACT(N)\n"
                "      END\n"
                "      SUBROUTINE FACT(N)\n"
                "      INTEGER N\n"
                "      IF (N.LE.1) THEN\n"
                "        N = 1\n"
                "      ELSE\n"
                "        M = N - 1\n"
                "        CALL FACT(M)\n"
                "        N = N*M\n"
                "      END IF\n"
                "      END\n")
        assert common(r, "R")[0] == 120.0

    def test_cost_accumulates(self):
        r1 = run("      PROGRAM P\n"
                 "      DO 10 I = 1, 10\n"
                 "        X = X + 1.0\n"
                 "   10 CONTINUE\n"
                 "      END\n")
        r2 = run("      PROGRAM P\n"
                 "      DO 10 I = 1, 1000\n"
                 "        X = X + 1.0\n"
                 "   10 CONTINUE\n"
                 "      END\n")
        assert r2.cost > r1.cost * 20
