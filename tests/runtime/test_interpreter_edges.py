"""Edge-case tests for the interpreter's semantics and fault handling."""

import pytest

from repro.errors import InterpreterError
from repro.program import Program
from repro.runtime import Interpreter
from repro.runtime.interpreter import outputs_equal


def run(src, **kw):
    return Interpreter(Program.from_source(src), **kw).run()


class TestFaults:
    def test_out_of_bounds_read(self):
        with pytest.raises(InterpreterError, match="out of bounds"):
            run("      PROGRAM P\n"
                "      DIMENSION A(5)\n"
                "      X = A(9)\n"
                "      END\n")

    def test_out_of_bounds_write(self):
        with pytest.raises(InterpreterError, match="out of bounds"):
            run("      PROGRAM P\n"
                "      DIMENSION A(5)\n"
                "      A(0) = 1.0\n"
                "      END\n")

    def test_rank_mismatch(self):
        with pytest.raises(InterpreterError, match="subscripts"):
            run("      PROGRAM P\n"
                "      DIMENSION A(5,5)\n"
                "      A(2) = 1.0\n"
                "      END\n")

    def test_goto_without_target(self):
        with pytest.raises(InterpreterError, match="GOTO"):
            run("      PROGRAM P\n"
                "      GO TO 99\n"
                "      END\n")

    def test_zero_step_do(self):
        with pytest.raises(InterpreterError, match="step"):
            run("      PROGRAM P\n"
                "      DO 10 I = 1, 5, 0\n"
                "   10 CONTINUE\n"
                "      END\n")

    def test_read_beyond_input(self):
        with pytest.raises(InterpreterError, match="READ"):
            run("      PROGRAM P\n"
                "      READ(5,*) X\n"
                "      END\n", inputs=[])

    def test_step_limit(self):
        with pytest.raises(InterpreterError, match="step limit"):
            run("      PROGRAM P\n"
                "      N = 0\n"
                "   10 N = N + 1\n"
                "      IF (N.GT.0) GO TO 10\n"
                "      END\n", max_steps=10_000)

    def test_assumed_size_view_is_bounded_by_storage(self):
        with pytest.raises(InterpreterError):
            run("      PROGRAM P\n"
                "      COMMON /C/ A(10)\n"
                "      CALL W(A)\n"
                "      END\n"
                "      SUBROUTINE W(V)\n"
                "      DIMENSION V(*)\n"
                "      V(50) = 1.0\n"
                "      END\n")


class TestSemantics:
    def test_negative_step_loop(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N\n"
                "      N = 0\n"
                "      DO 10 I = 10, 1, -2\n"
                "        N = N + 1\n"
                "   10 CONTINUE\n"
                "      END\n")
        assert r.commons["R"][0] == 5.0

    def test_do_variable_after_zero_trip(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ IV\n"
                "      DO 10 I = 5, 1\n"
                "   10 CONTINUE\n"
                "      IV = I\n"
                "      END\n")
        assert r.commons["R"][0] == 5.0  # start value, no trips

    def test_expression_bounds_frozen_at_entry(self):
        # Fortran computes the trip count once; changing N inside the
        # loop must not change the iteration count
        r = run("      PROGRAM P\n"
                "      COMMON /R/ N, CNT\n"
                "      N = 5\n"
                "      CNT = 0.0\n"
                "      DO 10 I = 1, N\n"
                "        N = 1\n"
                "        CNT = CNT + 1.0\n"
                "   10 CONTINUE\n"
                "      END\n")
        assert r.commons["R"][1] == 5.0

    def test_integer_truncation_on_store(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ I\n"
                "      I = 7.9\n"
                "      END\n")
        assert r.commons["R"][0] == 7.0

    def test_logical_ops(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      LOGICAL L1, L2\n"
                "      L1 = .TRUE.\n"
                "      L2 = .NOT. L1\n"
                "      IF (L1 .AND. .NOT. L2) X = 1.0\n"
                "      END\n")
        assert r.commons["R"][0] == 1.0

    def test_exponent_integer_vs_real(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ A, B\n"
                "      A = 2.0**3\n"
                "      B = (-2.0)**2\n"
                "      END\n")
        assert list(r.commons["R"]) == [8.0, 4.0]

    def test_nested_function_calls(self):
        r = run("      PROGRAM P\n"
                "      COMMON /R/ X\n"
                "      X = ADD1(ADD1(ADD1(0.0)))\n"
                "      END\n"
                "      REAL FUNCTION ADD1(V)\n"
                "      ADD1 = V + 1.0\n"
                "      END\n")
        assert r.commons["R"][0] == 3.0

    def test_common_scalar_then_array_layout(self):
        r = run("      PROGRAM P\n"
                "      COMMON /M/ N, A(3), Q\n"
                "      N = 7\n"
                "      A(1) = 1.0\n"
                "      A(3) = 3.0\n"
                "      Q = 9.0\n"
                "      CALL PEEK\n"
                "      END\n"
                "      SUBROUTINE PEEK\n"
                "      COMMON /M/ FLAT(5)\n"
                "      COMMON /R/ OUT1, OUT2\n"
                "      OUT1 = FLAT(1)\n"
                "      OUT2 = FLAT(5)\n"
                "      END\n")
        assert list(r.commons["R"]) == [7.0, 9.0]


class TestOutputsEqual:
    def test_numeric_tolerance(self):
        assert outputs_equal(["1.0000000001 X"], ["1.0 X"], rtol=1e-6)

    def test_text_mismatch(self):
        assert not outputs_equal(["A"], ["B"])

    def test_length_mismatch(self):
        assert not outputs_equal(["1.0"], ["1.0", "2.0"])

    def test_numeric_divergence(self):
        assert not outputs_equal(["1.0"], ["1.5"])
