"""Compiled-backend tests: the closure compiler must be a bit-exact
stand-in for the tree-walker.

The heavy guarantees ride on :func:`backend_equivalence`, which runs a
program under both backends in all three execution modes and compares
output, cost, steps, stop/error messages, and COMMON contents
bit-for-bit.  This file applies it to every PERFECT benchmark under
every pipeline configuration, to the persisted fuzz corpus, and to
hand-written programs targeting the vectorizer's edge cases.
"""

import os

import numpy as np
import pytest

from repro.perfect import all_benchmarks, get_benchmark
from repro.program import Program
from repro.runtime import CompiledInterpreter, Interpreter
from repro.runtime.backend import (BACKEND_ENV, BACKENDS, default_backend,
                                   make_interpreter)
from repro.runtime.compiler import (clear_compile_cache, collect_omp_sites,
                                    compile_cache_info)
from repro.runtime.difftest import backend_equivalence
from repro.runtime.interpreter import outputs_equal
from repro.runtime.machine import INTEL_MAC

CONFIGS = ("none", "conventional", "annotation")


def _pipeline(benchmark, config):
    """The oracle's exact pipeline on a fresh clone of ``benchmark``."""
    from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                                   ReverseInliner)
    from repro.inlining import ConventionalInliner
    from repro.polaris import Polaris
    program = benchmark.program()
    registry = (AnnotationRegistry.from_text(benchmark.annotations)
                if benchmark.annotations.strip() else AnnotationRegistry())
    if config == "conventional":
        ConventionalInliner().run(program)
    elif config == "annotation":
        AnnotationInliner(registry).run(program)
    Polaris().run(program)
    if config == "annotation":
        ReverseInliner(registry).run(program)
    return program


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("bench", all_benchmarks(),
                         ids=[b.name for b in all_benchmarks()])
def test_benchmark_equivalence(bench, config):
    """12 benchmarks x 3 configs: both backends agree exactly in every
    execution mode (serial / parallel / permuted)."""
    program = _pipeline(bench, config)
    divergence = backend_equivalence(program, INTEL_MAC, bench.inputs)
    assert divergence is None, divergence


def test_figure20_cells_identical(monkeypatch):
    """Figure 20 cells (tuning costs and verdicts) are byte-identical
    across backends — the compiled backend only changes wall-clock."""
    from repro.experiments.figure20 import figure20_cells

    def cells_under(backend):
        monkeypatch.setenv(BACKEND_ENV, backend)
        bench = get_benchmark("TRFD")
        return [(c.benchmark, c.machine, c.config,
                 c.tuning.initial_cost, c.tuning.tuned_cost,
                 c.tuning.serial_cost, tuple(c.tuning.disabled),
                 tuple(c.tuning.kept))
                for c in figure20_cells(bench, machines=[INTEL_MAC])]

    assert cells_under("tree") == cells_under("compiled")


class TestBackendSwitch:
    def test_default_backend_is_compiled(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend() == "compiled"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "tree")
        assert default_backend() == "tree"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "jit")
        with pytest.raises(ValueError, match="jit"):
            default_backend()

    def test_make_interpreter_classes(self, monkeypatch):
        prog = Program.from_source("      PROGRAM P\n      END\n")
        tree = make_interpreter(prog, "tree")
        assert type(tree) is Interpreter
        comp = make_interpreter(prog, "compiled")
        assert type(comp) is CompiledInterpreter
        monkeypatch.setenv(BACKEND_ENV, "tree")
        assert type(make_interpreter(prog)) is Interpreter

    def test_backends_tuple(self):
        assert BACKENDS == ("tree", "compiled")


class TestCompileCache:
    def test_templates_shared_across_interpreters(self):
        src = ("      PROGRAM P\n"
               "      COMMON /C/ A(10)\n"
               "      DO 10 I = 1, 10\n"
               "      A(I) = I\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog = Program.from_source(src)
        clear_compile_cache()
        CompiledInterpreter(prog).run()
        after_first = compile_cache_info()
        assert after_first["misses"] >= 1
        CompiledInterpreter(prog).run()
        after_second = compile_cache_info()
        assert after_second["hits"] > after_first["hits"]
        assert after_second["misses"] == after_first["misses"]

    def test_omp_sites_preorder(self):
        bench = get_benchmark("TRFD")
        program = bench.program()
        for unit in program.units:
            sites = collect_omp_sites(unit.body)
            assert len(set(map(id, sites))) == len(sites)


class TestOutputsEqualSymmetry:
    """Regression: the tolerance used to scale by only one side's
    magnitude, so outputs_equal(a, b) could disagree with
    outputs_equal(b, a) near the threshold."""

    def test_symmetric_near_threshold(self):
        # |fa - fb| = 1e-4; old asymmetric form accepted exactly one
        # direction for rtol that brackets the two magnitudes
        a, b = ["100000.0"], ["99999.9999"]
        rtol = 1.0000000000000002e-09 * 1000  # between 1/fa and 1/fb scales
        assert outputs_equal(a, b, 1e-9) == outputs_equal(b, a, 1e-9)
        assert outputs_equal(a, b, rtol) == outputs_equal(b, a, rtol)

    def test_exhaustive_symmetry(self):
        values = ["0.0", "-0.0", "1.0", "1.000000001", "-1.0",
                  "1e308", "1e-308", "12345.6789", "12345.67891"]
        for x in values:
            for y in values:
                assert outputs_equal([x], [y]) == outputs_equal([y], [x]), \
                    (x, y)

    def test_text_tokens_still_exact(self):
        assert not outputs_equal(["abc"], ["abd"])
        assert outputs_equal(["abc 1.0"], ["abc 1.0000000001"])


def _equiv(src, inputs=None):
    prog = Program.from_sources({"main.f": src}, "test")
    divergence = backend_equivalence(prog, INTEL_MAC, inputs or [])
    assert divergence is None, divergence


class TestVectorizerSemantics:
    """Programs aimed at the vectorizer's hazard analysis; every one
    must be bit-identical to the tree-walker whether the kernel fires,
    bails at runtime, or was rejected at compile time."""

    def test_simple_reduction(self):
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ S\n"
               "      S = 0.1\n"
               "      DO 10 I = 1, 50\n"
               "      S = S + I * 0.3\n"
               "   10 CONTINUE\n"
               "      WRITE(*,*) S\n"
               "      END\n")

    def test_two_reductions_same_scalar(self):
        # the regression hypothesis found: a second write to a reduced
        # scalar invalidates the first accumulate's carry chain
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ S\n"
               "      S = 0.0\n"
               "      DO 10 I = 1, 8\n"
               "      S = S + (I + I)\n"
               "      S = S + (I * I)\n"
               "   10 CONTINUE\n"
               "      WRITE(*,*) S\n"
               "      END\n")

    def test_integer_reduction_not_vectorized(self):
        # per-iteration INTEGER truncation feeds back into the carry
        _equiv("      PROGRAM P\n"
               "      INTEGER K\n"
               "      COMMON /OUT/ K\n"
               "      K = 0\n"
               "      DO 10 I = 1, 20\n"
               "      K = K + I / 3\n"
               "   10 CONTINUE\n"
               "      WRITE(*,*) K\n"
               "      END\n")

    def test_indirect_store_hazard(self):
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ A(10), K(10)\n"
               "      DO 10 I = 1, 10\n"
               "      K(I) = 11 - I\n"
               "   10 CONTINUE\n"
               "      DO 20 I = 1, 10\n"
               "      A(K(I)) = I * 2.5\n"
               "   20 CONTINUE\n"
               "      WRITE(*,*) A(1), A(10)\n"
               "      END\n")

    def test_out_of_bounds_error_identical(self):
        # the kernel must bail and replay so the error message (and the
        # cost charged before it) matches the tree-walker exactly
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ A(5)\n"
               "      DO 10 I = 1, 8\n"
               "      A(I) = I\n"
               "   10 CONTINUE\n"
               "      END\n")

    def test_division_by_zero_bails(self):
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ A(8), B(8)\n"
               "      B(3) = 0.0\n"
               "      DO 10 I = 1, 8\n"
               "      A(I) = I / B(I)\n"
               "   10 CONTINUE\n"
               "      END\n")

    def test_loop_carried_scalar_not_reduction(self):
        # T is read before written with a non-reduction shape
        _equiv("      PROGRAM P\n"
               "      COMMON /OUT/ A(20), T\n"
               "      T = 1.0\n"
               "      DO 10 I = 1, 20\n"
               "      A(I) = T * I\n"
               "      T = A(I) + 0.5\n"
               "   10 CONTINUE\n"
               "      WRITE(*,*) T\n"
               "      END\n")


class TestAccumulateBitwise:
    """The reduction kernel leans on numpy's ufunc.accumulate being
    bitwise-identical to a sequential Python fold — pin that down."""

    VALUES = [1e16, 1.0, -1e16, 1e-3, 3.7, -2.5e7, 1e300, -1e300,
              0.1, -0.0, 7.25, 1e-300]

    @pytest.mark.parametrize("ufunc,op", [
        (np.add, lambda a, b: a + b),
        (np.subtract, lambda a, b: a - b),
        (np.multiply, lambda a, b: a * b),
    ])
    def test_matches_sequential_fold(self, ufunc, op):
        seed = 0.5
        arr = np.empty(len(self.VALUES) + 1, dtype=np.float64)
        arr[0] = seed
        arr[1:] = self.VALUES
        with np.errstate(all="ignore"):  # the kernel runs under errstate
            acc = ufunc.accumulate(arr)
        s = seed
        for i, v in enumerate(self.VALUES):
            s = op(s, v)
            a = float(acc[i + 1])
            assert (a == s and np.signbit(a) == np.signbit(np.float64(s))
                    ) or (np.isnan(a) and np.isnan(s)), (i, v, a, s)


@pytest.mark.parametrize("entry_idx", range(4))
def test_fuzz_corpus_replay_compiled(entry_idx, monkeypatch):
    """Every persisted corpus entry also passes the oracle when the
    process default backend is the compiled one."""
    from repro.fuzz.corpus import load_corpus
    corpus_dir = os.path.join(os.path.dirname(__file__), "..", "fuzz",
                              "corpus")
    entries = load_corpus(corpus_dir)
    if entry_idx >= len(entries):
        pytest.skip("fewer corpus entries than parametrized slots")
    monkeypatch.setenv(BACKEND_ENV, "compiled")
    result = entries[entry_idx].replay()
    assert result.passed, result.describe()
