"""Tracer unit tests: span recording, the disabled fast path, the
export/merge boundary, decision records, and the Chrome validator."""

import json

import pytest

from repro.trace import (NULL_TRACER, LoopDecision, Tracer, count_parallel,
                         read_decisions_jsonl, validate_chrome_trace,
                         write_chrome, write_decisions_jsonl)
from repro.trace.chrome import load_chrome_trace
from repro.trace.tracer import _NULL_SPAN


def _decision(**kwargs):
    base = dict(unit="MAIN", var="I", origin="MAIN:DO-10",
                parallel=True, benchmark="ADM", config="none")
    base.update(kwargs)
    return LoopDecision(**base)


class TestSpans:
    def test_span_records_complete_event(self):
        t = Tracer(label="t", pid=1)
        with t.span("parse", cat="pipeline", files=3):
            pass
        assert len(t.events) == 1
        e = t.events[0]
        assert e["ph"] == "X" and e["name"] == "parse"
        assert e["cat"] == "pipeline"
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["args"] == {"files": 3}

    def test_nested_spans_nest_on_the_timeline(self):
        t = Tracer(pid=1)
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.events  # inner closes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_instant_event(self):
        t = Tracer(pid=1)
        t.instant("marker", cat="executor", n=2)
        (e,) = t.events
        assert e["ph"] == "i" and e["args"] == {"n": 2}


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("x"):
            pass
        t.instant("y")
        t.decision(_decision())
        assert t.events == [] and t.decisions == []

    def test_disabled_span_is_the_shared_noop(self):
        assert NULL_TRACER.span("a") is _NULL_SPAN
        assert NULL_TRACER.span("b") is NULL_TRACER.span("c")

    def test_merge_into_disabled_is_a_noop(self):
        child = Tracer(pid=7)
        with child.span("work"):
            pass
        NULL_TRACER.merge(child.export())
        assert NULL_TRACER.events == []


class TestExportMerge:
    def test_roundtrip_preserves_events_and_decisions(self):
        child = Tracer(label="worker", pid=42)
        with child.span("work"):
            pass
        child.decision(_decision())
        exported = json.loads(json.dumps(child.export()))  # wire-safe

        parent = Tracer(label="parent", pid=1)
        parent.merge(exported)
        work = [e for e in parent.events if e["name"] == "work"]
        assert len(work) == 1 and work[0]["pid"] == 42
        assert len(parent.decisions) == 1
        assert parent.decisions[0].origin == "MAIN:DO-10"

    def test_merge_rebases_child_timestamps(self):
        parent = Tracer(pid=1)
        child = Tracer(pid=2)
        child._wall0 = parent._wall0 + 1.5  # child started 1.5s later
        with child.span("late"):
            pass
        parent.merge(child.export())
        (e,) = [e for e in parent.events if e["name"] == "late"]
        assert e["ts"] >= 1.5e6  # rebased into the parent's timeline

    def test_merge_none_is_a_noop(self):
        parent = Tracer(pid=1)
        parent.merge(None)
        assert parent.events == []


class TestDecisions:
    def test_decision_dict_roundtrip(self):
        d = _decision(parallel=False, reason="dependence", detail="A",
                      private=("T",), reductions=(("SUM", "+"),),
                      profitability="not-evaluated",
                      dep_tests={"assumed_dependent": 1}, reachable=False)
        back = LoopDecision.from_dict(json.loads(json.dumps(d.to_dict())))
        assert back == d

    def test_count_parallel_protocol(self):
        decisions = [
            _decision(origin="L1"),
            _decision(origin="L1", unit="MAIN_CLONE"),  # same origin: once
            _decision(origin="L2"),
            _decision(origin="L3", reachable=False),    # unreachable
            _decision(origin=None),                     # generated loop
            _decision(origin="L4", parallel=False),     # serial
            _decision(origin="L1", config="annotation"),
        ]
        assert count_parallel(decisions) == {
            ("ADM", "none"): 2, ("ADM", "annotation"): 1}

    def test_jsonl_roundtrip(self, tmp_path):
        decisions = [_decision(), _decision(origin="L2", parallel=False,
                                            reason="dependence")]
        path = str(tmp_path / "d.jsonl")
        write_decisions_jsonl(decisions, path)
        assert read_decisions_jsonl(path) == decisions


class TestChrome:
    def test_valid_trace_passes_validator(self, tmp_path):
        t = Tracer(label="t", pid=1)
        with t.span("parse"):
            pass
        t.instant("mark")
        t.decision(_decision())
        assert validate_chrome_trace(t.to_chrome()) == []
        path = str(tmp_path / "out.json")
        write_chrome(t, path)
        loaded = load_chrome_trace(path)
        assert validate_chrome_trace(loaded) == []
        assert loaded["loopDecisions"][0]["origin"] == "MAIN:DO-10"

    def test_process_name_metadata_per_pid_lane(self):
        parent = Tracer(label="main", pid=1)
        child = Tracer(pid=2)
        with child.span("w"):
            pass
        parent.merge(child.export())
        meta = [e for e in parent.to_chrome()["traceEvents"]
                if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {1, 2}

    @pytest.mark.parametrize("broken, fragment", [
        ({"traceEvents": {}}, "array"),
        ({"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 0,
                           "ts": 0}]}, "phase"),
        ({"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "ts": 0,
                           "dur": 1}]}, "name"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                           "ts": -5, "dur": 1}]}, "ts"),
        ({"traceEvents": [], "loopDecisions": [{"var": "I"}]}, "unit"),
    ])
    def test_validator_flags_malformed_traces(self, broken, fragment):
        errors = validate_chrome_trace(broken)
        assert errors and any(fragment in e for e in errors)
