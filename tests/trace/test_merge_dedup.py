"""Exactly-once decision records when a crash-retried job's trace
exports are merged: a worker that exported partially, was SIGKILLed,
and re-ran contributes each :class:`LoopDecision` / :class:`SiteDecision`
once, while the span events of both attempts stay on the timeline."""

import json
import os
import signal

import pytest

from repro.experiments.executor import (WorkerCrashError, WorkerPool,
                                        in_worker)
from repro.trace.decisions import LoopDecision, SiteDecision
from repro.trace.tracer import Tracer


def _loop(unit, var, origin=None, parallel=True):
    return LoopDecision(unit=unit, var=var, origin=origin,
                        parallel=parallel, benchmark="bench",
                        config="annotation")


def _site(unit, callee, site_id, action="body"):
    return SiteDecision(unit=unit, callee=callee, site_id=site_id,
                        action=action, benchmark="bench",
                        config="annotation")


def _export(decisions=(), sites=(), job="digest-1", label="child"):
    tracer = Tracer(label=label)
    for d in decisions:
        tracer.decision(d)
    for s in sites:
        tracer.site(s)
    return tracer.export(job=job)


class TestMergeDedup:
    def test_same_export_merged_twice_counts_once(self):
        parent = Tracer(label="parent")
        exported = _export([_loop("MAIN", "I")], [_site("MAIN", "F", 1)])
        parent.merge(exported)
        parent.merge(exported)
        assert len(parent.decisions) == 1
        assert len(parent.site_decisions) == 1
        # the decision *instant* events are not deduplicated: both
        # attempts really happened and belong on the timeline
        assert len([e for e in parent.events
                    if e["cat"] == "decision"]) == 2

    def test_partial_first_attempt_then_full_retry(self):
        parent = Tracer(label="parent")
        partial = _export([_loop("MAIN", "I")])
        full = _export([_loop("MAIN", "I"), _loop("MAIN", "J"),
                        _loop("SOLVE", "K")])
        parent.merge(partial)
        parent.merge(full)
        assert sorted((d.unit, d.var) for d in parent.decisions) \
            == [("MAIN", "I"), ("MAIN", "J"), ("SOLVE", "K")]

    def test_key_covers_benchmark_and_config(self):
        parent = Tracer(label="parent")
        a = _loop("MAIN", "I")
        b = _loop("MAIN", "I")
        b.config = "conventional"
        parent.merge(_export([a]))
        parent.merge(_export([b]))
        assert len(parent.decisions) == 2

    def test_loop_identity_includes_origin(self):
        # two reachable copies of an inlined loop are distinct records
        parent = Tracer(label="parent")
        parent.merge(_export([_loop("MAIN", "I", origin="SUB:DO-3")]))
        parent.merge(_export([_loop("MAIN", "I", origin="SUB2:DO-3")]))
        assert len(parent.decisions) == 2

    def test_different_jobs_never_dedup(self):
        parent = Tracer(label="parent")
        parent.merge(_export([_loop("MAIN", "I")], job="digest-1"))
        parent.merge(_export([_loop("MAIN", "I")], job="digest-2"))
        assert len(parent.decisions) == 2

    def test_untagged_exports_merge_verbatim(self):
        # legacy in-process merges (run_tasks fan-in) carry no job tag
        # and never crash-retry; they keep the fast path
        parent = Tracer(label="parent")
        exported = _export([_loop("MAIN", "I")], job=None)
        exported.pop("job", None)
        parent.merge(exported)
        parent.merge(exported)
        assert len(parent.decisions) == 2

    def test_job_parameter_overrides_export_tag(self):
        parent = Tracer(label="parent")
        exported = _export([_loop("MAIN", "I")], job="digest-1")
        parent.merge(exported, job="attempt-a")
        parent.merge(exported, job="attempt-b")
        assert len(parent.decisions) == 2
        parent.merge(exported, job="attempt-a")
        assert len(parent.decisions) == 2

    def test_site_identity_is_callee_and_site_id(self):
        parent = Tracer(label="parent")
        parent.merge(_export(sites=[_site("MAIN", "F", 1)]))
        parent.merge(_export(sites=[_site("MAIN", "F", 1),
                                    _site("MAIN", "F", 2),
                                    _site("MAIN", "G", 1)]))
        assert sorted((s.callee, s.site_id)
                      for s in parent.site_decisions) \
            == [("F", 1), ("F", 2), ("G", 1)]

    def test_disabled_tracer_ignores_merge(self):
        parent = Tracer(enabled=False)
        parent.merge(_export([_loop("MAIN", "I")]))
        assert parent.decisions == []


# -- the SIGKILLed-worker regression ---------------------------------------

def _traced_attempt(spec):
    """One job attempt inside a pool worker.

    Records this attempt's decisions, persists the trace export the way
    a worker ships partial telemetry, and on the first attempt dies the
    way a real crash does (SIGKILL in a pool worker, WorkerCrashError
    inline).  The retry sees the marker, finds one more loop, and
    returns the full export.
    """
    first = not os.path.exists(spec["marker"])
    tracer = Tracer(label="attempt")
    tracer.decision(_loop("MAIN", "I"))
    tracer.decision(_loop("MAIN", "J"))
    if not first:
        tracer.decision(_loop("SOLVE", "K"))
    exported = tracer.export(job=spec["job"])
    suffix = ".1" if first else ".2"
    with open(spec["export"] + suffix, "w", encoding="utf-8") as fh:
        json.dump(exported, fh)
    if first:
        with open(spec["marker"], "w") as fh:
            fh.write("crashed\n")
        if in_worker():
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrashError("simulated worker crash")
    return exported


class TestSigkilledWorkerRegression:
    def test_decisions_counted_once_across_kill_and_retry(self, tmp_path):
        pool = WorkerPool(workers=1, inline=False)
        if pool.inline:
            pytest.skip("process pool unavailable in this sandbox")
        spec = {"marker": str(tmp_path / "kill.marker"),
                "export": str(tmp_path / "export.json"),
                "job": "digest-sigkill"}
        parent = Tracer(label="parent")
        try:
            with pytest.raises(WorkerCrashError):
                pool.run(_traced_attempt, spec, timeout=30)
            # the first attempt got far enough to ship a partial export
            with open(spec["export"] + ".1", encoding="utf-8") as fh:
                parent.merge(json.load(fh))
            assert len(parent.decisions) == 2
            retry = pool.run(_traced_attempt, spec, timeout=30)
        finally:
            pool.shutdown()
        parent.merge(retry)
        assert sorted((d.unit, d.var) for d in parent.decisions) \
            == [("MAIN", "I"), ("MAIN", "J"), ("SOLVE", "K")]
        # both attempts' instants remain on the timeline: I and J twice,
        # K once
        instants = [e for e in parent.events if e["cat"] == "decision"]
        assert len(instants) == 5
