"""End-to-end trace guarantees: the decision records a traced pipeline
run emits must reproduce Table II's parallel-loop counts exactly, for
any worker count, and the exported trace must be loadable Chrome JSON.
"""

import pytest

from repro.experiments import figure20, pipeline
from repro.experiments.table2 import table2_rows
from repro.perfect import get_benchmark, suite
from repro.trace import Tracer, count_parallel, validate_chrome_trace

BENCHES = ("adm", "qcd")
CONFIG_KINDS = ("none", "conventional", "annotation")


def _clear_caches():
    suite.clear_program_cache()
    pipeline.clear_base_cache()
    figure20.clear_pipeline_cache()


@pytest.mark.parametrize("jobs", [1, 2])
def test_decision_counts_match_table2(jobs):
    _clear_caches()
    benchmarks = [get_benchmark(n) for n in BENCHES]
    tracer = Tracer(label="test", pid=1)
    rows = table2_rows(benchmarks=benchmarks, jobs=jobs, tracer=tracer)
    counts = count_parallel(tracer.decisions)
    for row in rows:
        for kind in CONFIG_KINDS:
            assert counts.get((row.benchmark, kind), 0) \
                == row.configs[kind].par_loops, \
                f"{row.benchmark}/{kind} (jobs={jobs})"
    assert validate_chrome_trace(tracer.to_chrome()) == []


def test_phase_spans_cover_the_pipeline():
    _clear_caches()
    tracer = Tracer(label="test", pid=1)
    table2_rows(benchmarks=[get_benchmark("adm")], jobs=1, tracer=tracer)
    names = {e["name"] for e in tracer.events if e["ph"] == "X"}
    for phase in ("pipeline", "parse", "normalize", "summaries",
                  "dependence", "inline", "reverse"):
        assert any(n == phase or n.startswith(phase) for n in names), phase


def test_untraced_run_records_nothing():
    _clear_caches()
    rows = table2_rows(benchmarks=[get_benchmark("adm")], jobs=1)
    assert rows[0].configs["annotation"].par_loops > 0
