"""DYFESM: the paper's flagship scenario end-to-end."""

import pytest

from repro.perfect import get_benchmark
from tests.perfect.helpers import executes, parallel_output_correct, table2_row


@pytest.fixture(scope="module")
def bench():
    return get_benchmark("dyfesm")


@pytest.fixture(scope="module")
def row(bench):
    return table2_row(bench)


def test_executes(bench):
    result = executes(bench)
    assert len(result.output) == 1  # the checksum write


def test_annotation_gains_element_loops(row):
    ann = row["annotation"]
    assert ann.par_extra >= 2   # the FSMP and ASSEM element loops
    assert ann.par_loss == 0


def test_conventional_gains_nothing_here(row):
    conv = row["conventional"]
    assert conv.par_extra < row["annotation"].par_extra


def test_fsmp_loop_serial_without_annotations(row):
    report = row["results"]["none"].report
    k = [v for v in report.verdicts
         if v.unit == "DYFESM" and v.var == "K"]
    assert k and all(not v.parallelized for v in k)
    assert all(v.reason == "call" for v in k)


def test_fsmp_excluded_by_conventional_policy(row):
    conv = row["results"]["conventional"].conventional_result
    fsmp_sites = [s for s in conv.sites if s.callee == "FSMP"]
    assert fsmp_sites and not fsmp_sites[0].inlined
    assert fsmp_sites[0].reason == "makes-calls"


def test_annotation_code_size_flat(row):
    # reverse inlining restores the source; only OMP lines remain
    lines = row["lines"]
    assert lines["annotation"] <= lines["none"] * 1.15


def test_annotation_output_correct(bench, row):
    parallel_output_correct(bench, row["results"]["annotation"])


def test_none_config_output_correct(bench, row):
    parallel_output_correct(bench, row["results"]["none"])


def test_conventional_output_correct(bench, row):
    parallel_output_correct(bench, row["results"]["conventional"])
