"""Shared checks every benchmark must satisfy."""

from repro.experiments import run_all_configs
from repro.polaris.report import ConfigComparison
from repro.runtime import INTEL_MAC, Interpreter, diff_test


def executes(benchmark):
    """The benchmark runs to completion under the interpreter."""
    result = Interpreter(benchmark.program(),
                         inputs=list(benchmark.inputs)).run()
    assert result.stop_message is None or result.stop_message == ""
    return result


def table2_row(benchmark):
    """Run the three configurations and compute the Table II fragments."""
    results = run_all_configs(benchmark)
    baseline = results["none"].parallel_origins()
    row = {}
    for kind in ("none", "conventional", "annotation"):
        row[kind] = ConfigComparison.against_baseline(
            baseline, results[kind].parallel_origins())
    row["lines"] = {k: r.code_lines for k, r in results.items()}
    row["results"] = results
    return row


def parallel_output_correct(benchmark, config_result):
    """Differential test of a configuration's final program."""
    result = diff_test(config_result.program, INTEL_MAC,
                       inputs=list(benchmark.inputs))
    assert result.passed, (benchmark.name, config_result.config,
                           result.explain())
    return result
