"""Suite-wide checks for all 12 PERFECT substitutes.

Each benchmark must execute, each configuration's final program must pass
the three-way differential test, and the per-benchmark Table II fragment
must have the shape the paper reports (documented per benchmark in its
module docstring).
"""

import pytest

from repro.perfect import all_benchmarks, benchmark_names, get_benchmark
from tests.perfect.helpers import executes, parallel_output_correct, table2_row

#: expected Table II shape per benchmark:
#: (annotation helps?, conventional suffers losses?)
EXPECTED = {
    "ADM": (True, False),
    "ARC2D": (True, True),
    "FLO52Q": (False, False),
    "OCEAN": (True, True),
    "BDNA": (True, True),
    "MDG": (False, False),
    "QCD": (False, False),
    "TRFD": (True, True),
    "DYFESM": (True, False),
    "MG3D": (True, False),
    "TRACK": (False, False),
    "SPEC77": (False, False),
}

_rows = {}


def row_for(name):
    if name not in _rows:
        _rows[name] = table2_row(get_benchmark(name))
    return _rows[name]


def test_registry_complete():
    assert benchmark_names() == list(EXPECTED)
    assert len(all_benchmarks()) == 12


@pytest.mark.parametrize("name", list(EXPECTED))
def test_executes(name):
    executes(get_benchmark(name))


@pytest.mark.parametrize("name", list(EXPECTED))
def test_annotation_never_loses(name):
    # the headline claim: annotation-based inlining has zero #par-loss
    assert row_for(name)["annotation"].par_loss == 0


@pytest.mark.parametrize("name", list(EXPECTED))
def test_expected_shape(name):
    helped, conv_loses = EXPECTED[name]
    row = row_for(name)
    if helped:
        assert row["annotation"].par_extra >= 1, row
    else:
        assert row["annotation"].par_extra == 0, row
    if conv_loses:
        assert row["conventional"].par_loss >= 1, row
    else:
        assert row["conventional"].par_loss == 0, row


@pytest.mark.parametrize("name", list(EXPECTED))
def test_annotation_dominates_conventional(name):
    # annotation-based inlining parallelizes at least as many loops
    row = row_for(name)
    assert row["annotation"].par_loops >= row["conventional"].par_loops


@pytest.mark.parametrize("name", list(EXPECTED))
def test_annotation_code_size_flat(name):
    lines = row_for(name)["lines"]
    # reverse inlining restores the source (remaining growth = OMP lines)
    assert lines["annotation"] <= lines["none"] * 1.2


@pytest.mark.parametrize("name", list(EXPECTED))
@pytest.mark.parametrize("config", ["none", "conventional", "annotation"])
def test_configs_execute_correctly(name, config):
    bench = get_benchmark(name)
    parallel_output_correct(bench, row_for(name)["results"][config])


def test_suite_aggregates():
    """Suite-wide shape: annotation extras exceed conventional extras,
    conventional losses are substantial, a majority-but-not-all of the
    applications benefit (the paper: 37 vs 12 extras, 90 losses, 6/12)."""
    ann_extra = conv_extra = conv_loss = helped = 0
    for name in EXPECTED:
        row = row_for(name)
        ann_extra += row["annotation"].par_extra
        conv_extra += row["conventional"].par_extra
        conv_loss += row["conventional"].par_loss
        if row["annotation"].par_extra > 0:
            helped += 1
    assert ann_extra > conv_extra
    assert conv_loss >= 4
    assert 4 <= helped < 12
