"""Annotations-axis ablation: row math, soundness invariants, and the
rendered table."""

from repro.experiments.ablation import (AblationRow, ablation_rows,
                                        render_ablation)
from repro.perfect import get_benchmark
from repro.perfect.suite import Benchmark
from repro.trace import Tracer

TOY = """\
      SUBROUTINE SCALE(N, A, X)
      INTEGER N, I
      REAL A, X(N)
      DO 10 I = 1, N
         X(I) = A * X(I)
 10   CONTINUE
      END

      PROGRAM MAIN
      INTEGER J
      REAL A(16, 16)
      DO 20 J = 1, 16
         CALL SCALE(16, 2.0, A(1, J))
 20   CONTINUE
      WRITE(6,*) A(3, 3)
      END
"""


class TestAblationRowMath:
    def _row(self):
        row = AblationRow("toy")
        row.origins["hand"] = frozenset({"a", "b", "c"})
        row.origins["inferred"] = frozenset({"a", "b"})
        row.origins["demand"] = frozenset({"a", "b", "c", "d"})
        return row

    def test_par_counts(self):
        row = self._row()
        assert (row.par("hand"), row.par("inferred"),
                row.par("demand")) == (3, 2, 4)

    def test_flips_counts_inferred_minus_hand(self):
        row = self._row()
        assert row.flips() == 0
        row.origins["inferred"] = frozenset({"a", "z"})
        assert row.flips() == 1

    def test_recovery(self):
        row = self._row()
        assert row.recovery() == 2 / 3
        row.origins["hand"] = frozenset()
        assert row.recovery() is None

    def test_demand_extra(self):
        assert self._row().demand_extra() == 1


class TestAblationRows:
    def test_toy_benchmark_all_modes_sound(self):
        bench = Benchmark(name="abltoy", description="ablation toy",
                          sources={"t.f": TOY})
        rows = ablation_rows(jobs=1, benchmarks=[bench])
        assert len(rows) == 1
        row = rows[0]
        assert set(row.origins) == {"hand", "inferred", "demand"}
        # the toy ships no hand annotations, so "hand" finds only loops
        # visible without inlining; inference and demand may only add
        assert row.origins["hand"] <= row.origins["inferred"]
        assert row.origins["hand"] <= row.origins["demand"]
        assert "MAIN:0" in row.origins["demand"]

    def test_real_benchmark_inferred_subset_of_hand(self):
        rows = ablation_rows(jobs=1,
                             benchmarks=[get_benchmark("trfd")])
        row = rows[0]
        assert row.flips() == 0
        assert row.origins["inferred"] <= row.origins["hand"]

    def test_tracer_collects_site_decisions(self):
        bench = Benchmark(name="abltoy2", description="ablation toy",
                          sources={"t.f": TOY})
        tracer = Tracer(label="ablation-test")
        ablation_rows(jobs=1, benchmarks=[bench], tracer=tracer)
        modes = {d.source for d in tracer.site_decisions}
        assert "inferred" in modes


class TestRenderAblation:
    def test_table_has_totals_and_headers(self):
        bench = Benchmark(name="abltoy3", description="ablation toy",
                          sources={"t.f": TOY})
        rows = ablation_rows(jobs=1, benchmarks=[bench])
        text = render_ablation(rows)
        assert "ANNOTATIONS ABLATION" in text
        assert "TOTAL" in text
        assert "inf:flips" in text
        assert "abltoy3" in text
