"""Tests for the parallel experiment executor, the parse/program caches,
the dependence-query memo table, and the per-phase profiling timers.

The load-bearing guarantees: rendered artifacts are byte-identical
between serial and parallel runs and between cold and warm caches, and
the executor degrades gracefully to serial execution.
"""

import os

import pytest

from repro.analysis.affine import extract
from repro.analysis.dependence import DependenceTester, LoopCtx
from repro.experiments import figure20, pipeline
from repro.experiments.executor import (JOBS_ENV, _IN_WORKER_ENV,
                                        JobsError, WorkerCrashError,
                                        WorkerPool, WorkerTimeout,
                                        resolve_jobs, run_tasks)
from repro.experiments.figure20 import figure20_all, render_figure20
from repro.experiments.table2 import render_table2, table2_rows
from repro.fortran.parser import parse_expression
from repro.perfect import get_benchmark
from repro.perfect import suite
from repro.polaris import Polaris
from repro.program import Program


def _square(x):
    return x * x


def _clear_caches(disk: bool = False) -> None:
    suite.clear_program_cache(disk=disk)
    pipeline.clear_base_cache()
    figure20.clear_pipeline_cache()


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        tasks = list(range(20))
        assert run_tasks(_square, tasks, jobs=2) == [x * x for x in tasks]

    def test_unpicklable_fn_falls_back_to_serial(self):
        # a lambda cannot cross a process boundary; the executor must
        # still produce the right answers
        assert run_tasks(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]

    def test_empty_tasks(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(5) == 5

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(JobsError, match="not an integer"):
            resolve_jobs(None)

    def test_negative_env_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-2")
        with pytest.raises(JobsError, match=">= 0"):
            resolve_jobs(None)

    def test_negative_argument_is_a_clear_error(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        with pytest.raises(JobsError, match=">= 0"):
            resolve_jobs(-3)

    def test_no_nested_pools_inside_workers(self, monkeypatch):
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert resolve_jobs(8) == 1


def _sleep(seconds):
    import time
    time.sleep(seconds)
    return seconds


def _kill_self(_):
    import os
    import signal
    os.kill(os.getpid(), signal.SIGKILL)


def _crash_inline(_):
    raise WorkerCrashError("simulated")


class TestWorkerPool:
    def test_inline_mode_runs_in_process(self):
        pool = WorkerPool(workers=2, inline=True)
        assert pool.run(_square, 7) == 49
        pool.shutdown()

    def test_inline_crash_propagates(self):
        pool = WorkerPool(workers=1, inline=True)
        with pytest.raises(WorkerCrashError):
            pool.run(_crash_inline, None)
        pool.shutdown()

    @pytest.fixture()
    def process_pool(self):
        pool = WorkerPool(workers=2, inline=False)
        try:
            pool.run(_square, 1)
        except Exception:
            pool.shutdown()
            pytest.skip("process pool unavailable in this sandbox")
        if pool.inline:
            pool.shutdown()
            pytest.skip("process pool unavailable in this sandbox")
        yield pool
        pool.shutdown()

    def test_process_mode_runs_in_worker(self, process_pool):
        assert process_pool.run(_square, 6) == 36

    def test_killed_worker_raises_and_pool_recovers(self, process_pool):
        with pytest.raises(WorkerCrashError):
            process_pool.run(_kill_self, None)
        # the broken pool was recycled: the next task succeeds
        assert process_pool.run(_square, 5) == 25

    def test_timeout_raises_and_pool_recovers(self, process_pool):
        with pytest.raises(WorkerTimeout):
            process_pool.run(_sleep, 1.2, timeout=0.2)
        assert process_pool.run(_square, 4) == 16

    def test_task_exception_propagates_unwrapped(self, process_pool):
        with pytest.raises(ZeroDivisionError):
            process_pool.run(_divzero, 1)


def _divzero(x):
    return x / 0


BENCHES = ("adm", "qcd")


class TestTable2Equivalence:
    def _render(self, **kwargs):
        bs = [get_benchmark(n) for n in BENCHES]
        return render_table2(table2_rows(benchmarks=bs, **kwargs))

    def test_parallel_matches_serial(self):
        assert self._render(jobs=1) == self._render(jobs=2)

    def test_cold_cache_matches_warm_cache(self):
        _clear_caches()
        cold = self._render()
        warm = self._render()
        assert cold == warm

    def test_rows_carry_phase_timings(self):
        _clear_caches()
        rows = table2_rows(benchmarks=[get_benchmark("adm")])
        assert rows[0].timings
        for phase in ("parse", "normalize", "summaries", "dependence",
                      "inline", "reverse"):
            assert rows[0].timings.get(phase, 0.0) >= 0.0
        assert "dependence" in rows[0].timings

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_row_timings_equal_merge_of_worker_outcomes(self, jobs):
        # aggregation audit: every phase second a worker reported must
        # appear in its row exactly once — nothing dropped, nothing
        # double-counted — regardless of worker count
        from repro.experiments.pipeline import CONFIGS
        from repro.experiments.table2 import table2_outcomes
        from repro.polaris.report import merge_timings
        _clear_caches()
        benchmarks = [get_benchmark(n) for n in BENCHES]
        rows, outcomes = table2_outcomes(benchmarks=benchmarks, jobs=jobs)
        assert len(outcomes) == len(benchmarks) * len(CONFIGS)
        for i, row in enumerate(rows):
            expected = {}
            for outcome in outcomes[i * len(CONFIGS):(i + 1) * len(CONFIGS)]:
                merge_timings(expected, outcome.timings)
            assert set(row.timings) == set(expected)
            for phase, seconds in expected.items():
                assert row.timings[phase] == pytest.approx(seconds,
                                                           abs=1e-9), \
                    f"{row.benchmark}/{phase} (jobs={jobs})"


class TestFigure20Equivalence:
    def _render(self, **kwargs):
        bs = [get_benchmark(n) for n in BENCHES]
        return render_figure20(figure20_all(benchmarks=bs, **kwargs))

    def test_parallel_matches_serial(self):
        serial = self._render(jobs=1)
        figure20.clear_pipeline_cache()
        parallel = self._render(jobs=2)
        assert serial == parallel

    def test_cold_cache_matches_warm_cache(self):
        _clear_caches()
        cold = self._render()
        warm = self._render()
        assert cold == warm


class TestProgramCache:
    def test_cached_parse_is_cloned_not_shared(self):
        bench = get_benchmark("adm")
        p1 = bench.program()
        p2 = bench.program()
        assert p1 is not p2
        assert p1.units[0] is not p2.units[0]
        # mutating one copy must not leak into the next
        p1.units[0].body.clear()
        p3 = bench.program()
        assert p3.units[0].body

    def test_matches_uncached_parse(self):
        bench = get_benchmark("qcd")
        cached = bench.program().unparse()
        fresh = Program.from_sources(dict(bench.sources),
                                     bench.name).unparse()
        assert cached == fresh

    def test_digest_tracks_content(self):
        bench = get_benchmark("qcd")
        other = get_benchmark("adm")
        assert bench.digest() != other.digest()
        assert bench.digest() == get_benchmark("qcd").digest()


class TestDiskCache:
    @pytest.fixture()
    def disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(suite.DISK_CACHE_ENV, "1")
        monkeypatch.setenv(suite.CACHE_DIR_ENV, str(tmp_path))
        _clear_caches()
        yield tmp_path
        _clear_caches()

    def test_roundtrip(self, disk_cache):
        bench = get_benchmark("adm")
        fresh = bench.program().unparse()
        entries = list(disk_cache.glob("*.pkl"))
        assert entries, "parse should have been written to disk"
        suite.clear_program_cache()  # force the disk path
        assert bench.program().unparse() == fresh

    def test_corrupt_entry_falls_back_to_parse(self, disk_cache):
        bench = get_benchmark("adm")
        fresh = bench.program().unparse()
        corrupted = list(disk_cache.glob("*.pkl"))
        for entry in corrupted:
            entry.write_bytes(b"not a pickle")
        suite.clear_program_cache()
        assert bench.program().unparse() == fresh
        # the corrupt entries were evicted (and rewritten by the reparse),
        # so a concurrent-writer casualty cannot re-trip every later run
        for entry in corrupted:
            assert entry.read_bytes() != b"not a pickle"

    def test_truncated_entry_falls_back_to_parse(self, disk_cache):
        bench = get_benchmark("adm")
        fresh = bench.program().unparse()
        for entry in disk_cache.glob("*.pkl"):
            # simulate a writer that died mid-write
            entry.write_bytes(entry.read_bytes()[:64])
        suite.clear_program_cache()
        assert bench.program().unparse() == fresh

    def test_clear_disk(self, disk_cache):
        get_benchmark("adm").program()
        suite.clear_program_cache(disk=True)
        assert not disk_cache.exists()

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(suite.DISK_CACHE_ENV, raising=False)
        monkeypatch.setenv(suite.CACHE_DIR_ENV, str(tmp_path / "cc"))
        suite.clear_program_cache()
        get_benchmark("adm").program()
        assert not (tmp_path / "cc").exists()


class TestDependenceMemo:
    def _query(self):
        loops = [LoopCtx("I", 1, 10)]
        a = [extract(parse_expression("I"), ["I"])]
        return a, loops, {"I": "<"}

    def test_repeat_query_hits_memo(self):
        a, loops, dirs = self._query()
        t = DependenceTester()
        first = t.may_depend(a, a, loops, dirs)
        second = t.may_depend(a, a, loops, dirs)
        assert first == second is False
        assert t.stats.cache_hits == 1
        # the unique query was counted exactly once
        assert t.stats.unique_queries() == 1

    def test_distinct_queries_not_conflated(self):
        a, loops, dirs = self._query()
        t = DependenceTester()
        assert not t.may_depend(a, a, loops, dirs)
        # same subscripts, '=' direction: same element, dependent
        assert t.may_depend(a, a, loops, {"I": "="})
        assert t.stats.cache_hits == 0
        assert t.stats.unique_queries() == 2

    def test_memo_is_per_tester(self):
        a, loops, dirs = self._query()
        t1 = DependenceTester()
        t2 = DependenceTester(use_banerjee=False)
        assert not t1.may_depend(a, a, loops, dirs)
        # the GCD-only tester cannot disprove this strong-SIV query
        assert t2.may_depend(a, a, loops, dirs)


class TestPolarisTimings:
    SRC = ("      PROGRAM P\n"
           "      COMMON /D/ A(100)\n"
           "      DO 10 I = 1, 100\n"
           "        A(I) = I*2.0\n"
           "   10 CONTINUE\n"
           "      END\n")

    def test_driver_records_phase_timings(self):
        report = Polaris().run(Program.from_source(self.SRC))
        for phase in ("normalize", "summaries", "dependence"):
            assert report.timings[phase] >= 0.0
