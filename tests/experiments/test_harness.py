"""Unit tests for the evaluation harness itself: reporting, the
three-configuration pipeline, reachability-based counting, and tuning."""

import pytest

from repro.experiments.pipeline import (Config, prepare_base, run_all_configs,
                                        run_config, _reachable_units)
from repro.experiments.reporting import bar_chart, text_table
from repro.experiments.table1 import render_table1, table1_rows
from repro.experiments.tuning import tune
from repro.perfect import get_benchmark
from repro.perfect.suite import Benchmark
from repro.polaris.report import ConfigComparison
from repro.program import Program
from repro.runtime.machine import MachineModel


class TestReporting:
    def test_text_table_alignment(self):
        out = text_table(["a", "long-header"], [[1, 2], [333, 4]],
                         title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        # all rows share the separator width
        assert len(lines[3]) <= len(lines[2]) + 2

    def test_bar_chart_scales_to_max(self):
        out = bar_chart(["x", "y"], [1.0, 2.0], width=10)
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[1] == 10
        assert bars[0] == 5

    def test_bar_chart_empty(self):
        assert bar_chart([], []) == ""


class TestTable1:
    def test_rows_match_registry(self):
        rows = table1_rows()
        assert len(rows) == 12
        assert ("DYFESM",
                "Structural dynamics benchmark (finite element)") in rows

    def test_render_contains_all(self):
        text = render_table1()
        for name, _ in table1_rows():
            assert name in text


class TestConfigComparison:
    def test_against_baseline(self):
        cmp_ = ConfigComparison.against_baseline(
            baseline={"a", "b", "c"}, config={"b", "c", "d", "e"})
        assert cmp_.par_loops == 4
        assert cmp_.par_loss == 1
        assert cmp_.par_extra == 2


class TestReachability:
    def test_dead_procedure_excluded(self):
        prog = Program.from_source(
            "      PROGRAM P\n"
            "      CALL USED\n"
            "      END\n"
            "      SUBROUTINE USED\n"
            "      X = 1\n"
            "      END\n"
            "      SUBROUTINE DEAD\n"
            "      X = 2\n"
            "      END\n")
        reachable = _reachable_units(prog)
        assert reachable == {"P", "USED"}

    def test_loss_requires_dead_original(self):
        # BDNA: PCINIT's loop counts as lost under conventional inlining
        # precisely because the original unit becomes unreachable
        bench = get_benchmark("bdna")
        results = run_all_configs(bench)
        conv = results["conventional"]
        assert "PCINIT" not in _reachable_units(conv.program)
        baseline = results["none"].parallel_origins()
        assert any(o.startswith("PCINIT") for o in baseline)
        assert not any(o.startswith("PCINIT")
                       for o in conv.parallel_origins())


class TestPipeline:
    def test_base_program_not_mutated(self):
        bench = get_benchmark("adm")
        base = prepare_base(bench)
        before = base.total_lines()
        run_config(bench, Config("annotation"), base)
        run_config(bench, Config("conventional"), base)
        assert base.total_lines() == before
        # the baseline config works on a clone too; its line count may
        # exceed the pristine source by the inserted OMP directive lines
        none = run_config(bench, Config("none"), base)
        assert none.code_lines >= before
        assert base.total_lines() == before

    def test_config_records_attached(self):
        bench = get_benchmark("adm")
        results = run_all_configs(bench)
        assert results["conventional"].conventional_result is not None
        assert results["annotation"].annotation_result is not None
        assert results["annotation"].reverse_result is not None
        assert results["none"].conventional_result is None

    def test_library_units_not_inlined(self):
        bench = get_benchmark("mg3d")
        results = run_all_configs(bench)
        conv = results["conventional"].conventional_result
        assert all(s.reason == "no-source" for s in conv.sites
                   if s.callee == "CFFTZ")


class TestTuning:
    SRC = ("      PROGRAM P\n"
           "      COMMON /D/ A(2000), B(8)\n"
           "      DO 10 I = 1, 2000\n"
           "        A(I) = I*0.5\n"
           "   10 CONTINUE\n"
           "      DO 30 K = 1, 100\n"
           "        DO 20 J = 1, 8\n"
           "          B(J) = B(J) + 0.01\n"
           "   20   CONTINUE\n"
           "   30 CONTINUE\n"
           "      END\n")

    def fixture(self):
        from repro.polaris import Polaris
        prog = Program.from_source(self.SRC)
        Polaris().run(prog)
        return prog

    def test_tuning_disables_tiny_loop_keeps_big_one(self):
        machine = MachineModel("m", threads=8, fork_join_overhead=1500.0)
        result = tune(self.fixture(), machine)
        assert result.tuned_cost <= result.initial_cost
        assert result.tuned_cost <= result.serial_cost
        assert any(label.startswith("J@") for label in result.disabled)
        assert any(label.startswith("I@") for label in result.kept)

    def test_huge_overhead_disables_everything(self):
        machine = MachineModel("m", threads=8,
                               fork_join_overhead=10_000_000.0)
        result = tune(self.fixture(), machine)
        assert result.kept == []
        assert result.speedup == pytest.approx(1.0, rel=1e-6)

    def test_zero_overhead_keeps_everything_useful(self):
        machine = MachineModel("m", threads=8, fork_join_overhead=0.0,
                               per_thread_overhead=0.0)
        result = tune(self.fixture(), machine)
        assert result.speedup > 1.5
