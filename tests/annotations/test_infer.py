"""Annotation-inference tests: the ``repro.annotations.infer``
subsystem (hand precedence, the whole-program alias-hazard check) and
the conservative-fallback corpus — callees inference must *refuse*,
with the reason on record all the way into the pipeline trace."""

import pytest

from repro.annotations.infer import (ANNOTATION_MODES, infer_annotations,
                                     render_fallbacks)
from repro.experiments.pipeline import Config, run_config
from repro.perfect.suite import Benchmark
from repro.program import Program
from repro.trace import Tracer

LEAF = """\
      SUBROUTINE SCALE(N, A, X)
      INTEGER N, I
      REAL A, X(N)
      DO 10 I = 1, N
         X(I) = A * X(I)
 10   CONTINUE
      END
"""

CALLER = """\
      PROGRAM MAIN
      INTEGER J
      REAL V(16)
      DO 20 J = 1, 16
         V(J) = J
 20   CONTINUE
      CALL SCALE(16, 2.0, V)
      END
"""

RECURSIVE = """\
      SUBROUTINE RECUR(N, X)
      INTEGER N
      REAL X(16)
      IF (N .GT. 0) THEN
         X(N) = 0.0
         CALL RECUR(N - 1, X)
      END IF
      END
"""

NON_AFFINE = """\
      SUBROUTINE SQIDX(N, X)
      INTEGER N, I
      REAL X(N)
      DO 10 I = 1, N
         X(I * I) = 0.0
 10   CONTINUE
      END
"""

IO_IN_BODY = """\
      SUBROUTINE NOISY(N, X)
      INTEGER N, I
      REAL X(N)
      DO 10 I = 1, N
         X(I) = 0.0
         WRITE(6,*) I
 10   CONTINUE
      END
"""

ALIASED_COMMON = """\
      SUBROUTINE BUMP(N, Y)
      INTEGER N, I
      REAL Y(N)
      REAL BUF(8)
      COMMON /WS/ BUF
      DO 10 I = 1, N
         Y(I) = Y(I) + BUF(1)
 10   CONTINUE
      END

      PROGRAM MAIN
      REAL BUF(8)
      COMMON /WS/ BUF
      INTEGER I
      DO 20 I = 1, 8
         BUF(I) = I
 20   CONTINUE
      CALL BUMP(8, BUF)
      END
"""


def _program(*chunks: str) -> Program:
    return Program.from_sources({"t.f": "".join(chunks)}, "test")


class TestInferAnnotations:
    def test_modes_tuple(self):
        assert ANNOTATION_MODES == ("hand", "inferred", "demand")

    def test_leaf_callee_inferred(self):
        report = infer_annotations(_program(LEAF, CALLER))
        outcome = report.outcomes["SCALE"]
        assert outcome.source == "inferred" and outcome.ok
        assert "SCALE" in report.registry()
        assert report.counts()["inferred"] == 1
        assert report.fallbacks() == {}

    def test_hand_annotation_takes_precedence(self):
        program = _program(LEAF, CALLER)
        hand = infer_annotations(program).registry()  # stand-in "hand"
        report = infer_annotations(program, hand=hand)
        assert report.outcomes["SCALE"].source == "hand"
        assert report.outcomes["SCALE"].annotation is hand.get("SCALE")

    def test_hand_annotations_for_library_units_carried_through(self):
        program = _program(LEAF, CALLER)
        hand = infer_annotations(program).registry()
        # pretend SCALE's source was not available: a program without it
        # must still see the hand annotation in the merged report
        report = infer_annotations(_program(CALLER), hand=hand)
        assert report.outcomes["SCALE"].source == "hand"
        assert "SCALE" in report.registry()

    def test_program_not_modified(self):
        program = _program(LEAF, CALLER)
        before = "".join(program.unparse().values())
        infer_annotations(program)
        assert "".join(program.unparse().values()) == before


class TestConservativeFallbacks:
    """The satellite corpus: every callee here must fall back, with a
    reason naming the obstacle."""

    def test_recursion_falls_back(self):
        report = infer_annotations(_program(RECURSIVE))
        outcome = report.outcomes["RECUR"]
        assert outcome.source == "fallback" and not outcome.ok
        assert outcome.reason == "calls other procedures"

    def test_non_affine_subscript_falls_back(self):
        report = infer_annotations(_program(NON_AFFINE))
        outcome = report.outcomes["SQIDX"]
        assert outcome.source == "fallback"
        assert "X" in outcome.reason
        assert "region" in outcome.reason

    def test_io_falls_back(self):
        report = infer_annotations(_program(IO_IN_BODY))
        outcome = report.outcomes["NOISY"]
        assert outcome.source == "fallback"
        assert "I/O" in outcome.reason

    def test_aliased_common_falls_back(self):
        report = infer_annotations(_program(ALIASED_COMMON))
        outcome = report.outcomes["BUMP"]
        assert outcome.source == "fallback"
        assert "aliases COMMON /WS/" in outcome.reason
        assert "BUF" in outcome.reason

    def test_fallback_names_excluded_from_registry(self):
        report = infer_annotations(_program(ALIASED_COMMON))
        assert "BUMP" not in report.registry()

    def test_render_fallbacks(self):
        report = infer_annotations(_program(RECURSIVE))
        lines = list(render_fallbacks(report))
        assert lines == ["RECUR: conservative fallback "
                         "(calls other procedures)"]

    @pytest.mark.parametrize("source,callee,needle", [
        (ALIASED_COMMON, "BUMP", "aliases COMMON"),
        (RECURSIVE + CALLER.replace("CALL SCALE(16, 2.0, V)",
                                    "CALL RECUR(16, V)"),
         "RECUR", "calls other procedures"),
    ])
    def test_pipeline_traces_fallback_reason(self, source, callee,
                                             needle):
        bench = Benchmark(name="corpus", description="fallback corpus",
                          sources={"t.f": source})
        tracer = Tracer(label="test")
        run_config(bench, Config("annotation", annotations="inferred"),
                   tracer=tracer)
        falls = [d for d in tracer.site_decisions
                 if d.action == "fallback" and d.callee == callee]
        assert falls, tracer.site_decisions
        assert needle in falls[0].reason
        assert falls[0].source == "inferred"
        assert falls[0].config == "annotation"


class TestInferredSoundnessOnBenchmark:
    def test_inferred_is_subset_of_hand_on_trfd(self):
        from repro.perfect import get_benchmark
        bench = get_benchmark("trfd")
        hand = run_config(bench, Config("annotation"))
        inferred = run_config(bench,
                              Config("annotation", annotations="inferred"))
        assert inferred.annotations == "inferred"
        # inference may only lose parallel loops, never invent them
        assert set(inferred.parallel_origins()) \
            <= set(hand.parallel_origins())
