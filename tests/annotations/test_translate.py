"""Tests for annotation -> Fortran translation."""

import pytest

from repro.annotations.parser import parse_annotations
from repro.annotations.translate import (TranslateOptions, is_capture_array,
                                         is_generated_name, translate_call)
from repro.errors import AnnotationError
from repro.fortran import ast
from repro.fortran.parser import parse_expression as pe
from repro.fortran.parser import parse_source
from repro.fortran.symbols import build_symbol_table
from repro.fortran.unparser import unparse


def table_for(src):
    return build_symbol_table(parse_source(src).units[0])


CALLER = ("      SUBROUTINE C\n"
          "      COMMON /G/ FE(8,100), IDEDON(100), XY(2,64), RHSB(99999)\n"
          "      COMMON /G2/ PP(4,4,15), PHIT(4,4), TM1(4,4)\n"
          "      END\n")


def translate(ann_text, actual_texts, site_id=1, **opts):
    ann = parse_annotations(ann_text)[0]
    actuals = tuple(pe(t) for t in actual_texts)
    return translate_call(ann, actuals, table_for(CALLER), site_id,
                          TranslateOptions(**opts))


class TestScalarsAndUnknown:
    def test_scalar_binding(self):
        tr = translate("subroutine S(ID) { IRECT = IEGEOM[ID]; }", ["K+1"])
        stmt = tr.stmts[0]
        assert stmt == ast.Assign(ast.Var("IRECT"),
                                  ast.ArrayRef("IEGEOM", (pe("K+1"),)))

    def test_unknown_capture(self):
        tr = translate("subroutine S(ID) { X = unknown(A[ID], NSYMM); }",
                       ["K"])
        text = unparse(tr.stmts)
        assert "GU1$A1(1) = A(K)" in text
        assert "GU1$A1(2) = NSYMM" in text
        assert "X = GU1$A1(1)" in text
        assert tr.capture_arrays == ["GU1$A1"]
        assert is_capture_array("GU1$A1")

    def test_multi_target_unknown(self):
        tr = translate(
            "subroutine S(ID) { (NDX, NDY, WT) = unknown(ID, Q); }", ["K"])
        text = unparse(tr.stmts)
        assert "NDX = GU1$A1(1)" in text
        assert "NDY = GU1$A1(2)" in text
        assert "WT = GU1$A1(1)" in text  # wraps modulo capture size

    def test_unknown_without_args(self):
        tr = translate("subroutine S(ID) { X = unknown(); }", ["K"])
        text = unparse(tr.stmts)
        assert "X = GU1$A1(1)" in text

    def test_unique_linear_form(self):
        tr = translate(
            "subroutine S(ID) { RHSB[unique(ID, I)] = 0.0; }", ["IB"],
            unique_base=64)
        target = tr.stmts[0].target
        assert target == ast.ArrayRef("RHSB", (pe("64*IB + I"),))

    def test_unique_base_option(self):
        tr = translate(
            "subroutine S(ID) { RHSB[unique(ID, I)] = 0.0; }", ["IB"],
            unique_base=1024)
        assert tr.stmts[0].target.subs[0] == pe("1024*IB + I")

    def test_site_id_in_names(self):
        tr = translate("subroutine S(ID) { X = unknown(ID); }", ["K"],
                       site_id=7)
        assert tr.capture_arrays == ["GU1$A7"]
        assert is_generated_name("GU1$A7")


class TestArrayBinding:
    def test_whole_array_actual(self):
        tr = translate(
            "subroutine S(M) { dimension M[4,4]; M[2,3] = 1.0; }",
            ["PHIT"])
        assert tr.stmts[0].target == ast.ArrayRef(
            "PHIT", (ast.IntLit(2), ast.IntLit(3)))

    def test_element_actual_offsets(self):
        # PP(1,1,KS-1) bound to a 2-D formal: trailing sub pinned
        tr = translate(
            "subroutine S(M) { dimension M[4,4]; M[I,J] = 1.0; }",
            ["PP(1,1,KS-1)"])
        assert tr.stmts[0].target == ast.ArrayRef(
            "PP", (ast.Var("I"), ast.Var("J"), pe("KS-1")))

    def test_element_actual_nonunit_base(self):
        tr = translate(
            "subroutine S(M) { dimension M[4]; M[I] = 1.0; }",
            ["FE(3,ID)"])
        assert tr.stmts[0].target == ast.ArrayRef(
            "FE", (pe("I + (3-1)"), ast.Var("ID")))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(AnnotationError):
            translate("subroutine S(M) { dimension M[4,4,4]; M[1,1,1]=0.0; }",
                      ["PHIT"])

    def test_expression_actual_rejected(self):
        with pytest.raises(AnnotationError):
            translate("subroutine S(M) { dimension M[4]; M[1] = 0.0; }",
                      ["X+1"])


class TestRegionLowering:
    def test_whole_array_assign_generates_loops(self):
        # Figure 16/18: M3 = 0.0 becomes a loop nest
        tr = translate(
            "subroutine S(M3, L, N) { dimension M3[L,N]; M3 = 0.0; }",
            ["TM1", "4", "4"])
        outer = tr.stmts[0]
        assert isinstance(outer, ast.DoLoop)
        inner = outer.body[0]
        assert isinstance(inner, ast.DoLoop)
        assign = inner.body[0]
        assert assign.target.name == "TM1"
        # bounds instantiated with the actuals
        assert outer.stop == ast.IntLit(4)

    def test_region_column_assign(self):
        tr = translate(
            "subroutine S(IDE) { FE[*, IDE] = unknown(W); }", ["K"])
        text = unparse(tr.stmts)
        assert "GU1$A1(1) = W" in text
        loop = [s for s in tr.stmts if isinstance(s, ast.DoLoop)][0]
        assign = loop.body[0]
        assert assign.target == ast.ArrayRef(
            "FE", (ast.Var(loop.var), ast.Var("K")))
        # extent comes from the caller's declaration of FE(8,100)
        assert loop.stop == ast.IntLit(8)

    def test_matmlt_region_rhs(self):
        tr = translate(
            "subroutine S(M1, M3, L, M) {"
            "  dimension M1[L,M], M3[L,1];"
            "  do (JM = 1:M) M3[*,1] = M3[*,1] + M1[*,JM];"
            "}",
            ["PHIT", "TM1", "4", "4"])
        do_jm = tr.stmts[0]
        assert isinstance(do_jm, ast.DoLoop)
        region_loop = do_jm.body[0]
        assert isinstance(region_loop, ast.DoLoop)
        assign = region_loop.body[0]
        z = region_loop.var
        assert assign.target == ast.ArrayRef("TM1",
                                             (ast.Var(z), ast.IntLit(1)))
        assert ast.ArrayRef("PHIT", (ast.Var(z), ast.Var(do_jm.var))) in \
            list(ast.walk_expr(assign.value))

    def test_region_count_mismatch_rejected(self):
        with pytest.raises(AnnotationError):
            translate(
                "subroutine S(M1, M3) {"
                "  dimension M1[4,4], M3[4];"
                "  M3[*] = M1[*, *];"
                "}",
                ["PHIT", "TM1"])

    def test_unknown_region_extent_rejected(self):
        with pytest.raises(AnnotationError):
            translate("subroutine S(I) { ZZQ[*] = 0.0; }", ["K"])

    def test_deterministic_names(self):
        a = translate("subroutine S(I) { FE[*,I] = unknown(W); }", ["K"],
                      site_id=3)
        b = translate("subroutine S(I) { FE[*,I] = unknown(W); }", ["K"],
                      site_id=3)
        assert unparse(a.stmts) == unparse(b.stmts)


class TestControlFlow:
    def test_if_lowering(self):
        tr = translate(
            "subroutine S(IDE) {"
            "  if (IDEDON[IDE] == 0) { IDEDON[IDE] = 1; } else { Q = 2; }"
            "}", ["K"])
        s = tr.stmts[0]
        assert isinstance(s, ast.IfBlock)
        assert len(s.arms) == 2
        assert s.arms[0][0] == ast.BinOp("==",
                                         ast.ArrayRef("IDEDON",
                                                      (ast.Var("K"),)),
                                         ast.IntLit(0))

    def test_do_lowering_renames_var(self):
        tr = translate(
            "subroutine S(N) { do (I = 1:N) QQ = I; }", ["M"])
        loop = tr.stmts[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.var == "I$A1"
        assert loop.stop == ast.Var("M")
        assert loop.body[0].value == ast.Var("I$A1")

    def test_local_decl_renamed(self):
        tr = translate(
            "subroutine S(N) { integer T; T = N + 1; }", ["M"])
        assert any(isinstance(d, ast.TypeDecl)
                   and d.entities[0].name == "T$A1" for d in tr.decls)
        assert tr.stmts[0].target == ast.Var("T$A1")

    def test_return_rejected(self):
        with pytest.raises(AnnotationError):
            translate("subroutine S(N) { return N; }", ["M"])
