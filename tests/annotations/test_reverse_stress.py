"""Stress tests for the reverse inliner's pattern matcher.

Hypothesis drives random *legal* perturbations of tagged blocks — the
transformations our Polaris is allowed to apply — and the matcher must
recover the call every time; random *illegal* corruptions must be
rejected every time.  Also: the round trip survives for every annotated
subroutine of every benchmark, under random statement shuffling.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                               ReverseInliner)
from repro.errors import ReverseInlineError
from repro.fortran import ast
from repro.perfect import get_benchmark
from repro.polaris import Polaris
from repro.program import Program


def shuffle_blocks(program: Program, seed: int) -> int:
    """Shuffle the statement order inside every tagged block."""
    rng = random.Random(seed)
    count = 0
    for unit in program.units:
        for s in ast.walk_stmts(unit.body):
            if isinstance(s, ast.TaggedBlock):
                rng.shuffle(s.body)
                count += 1
    return count


BENCH_WITH_ANNOTATIONS = ["dyfesm", "bdna", "arc2d", "adm", "ocean",
                          "trfd", "mg3d"]


@pytest.mark.parametrize("name", BENCH_WITH_ANNOTATIONS)
def test_benchmark_roundtrip_after_parallelization(name):
    bench = get_benchmark(name)
    registry = bench.registry()
    prog = bench.program()
    inl = AnnotationInliner(registry).run(prog)
    Polaris().run(prog)
    rev = ReverseInliner(registry).run(prog)
    assert rev.reversed_count == inl.inlined_count
    assert not any(isinstance(s, ast.TaggedBlock)
                   for u in prog.units for s in ast.walk_stmts(u.body))


@given(st.integers(0, 10_000), st.sampled_from(BENCH_WITH_ANNOTATIONS))
@settings(max_examples=25, deadline=None)
def test_roundtrip_survives_shuffling(seed, name):
    bench = get_benchmark(name)
    registry = bench.registry()
    prog = bench.program()
    inl = AnnotationInliner(registry).run(prog)
    shuffled = shuffle_blocks(prog, seed)
    assert shuffled == inl.inlined_count
    rev = ReverseInliner(registry).run(prog)
    assert rev.reversed_count == inl.inlined_count


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_corruption_always_rejected(seed):
    bench = get_benchmark("dyfesm")
    registry = bench.registry()
    prog = bench.program()
    AnnotationInliner(registry).run(prog)
    rng = random.Random(seed)
    blocks = [s for u in prog.units for s in ast.walk_stmts(u.body)
              if isinstance(s, ast.TaggedBlock)]
    victim = rng.choice(blocks)
    mode = rng.randrange(3)
    if mode == 0:
        victim.body.append(ast.Assign(ast.Var("EVIL"), ast.IntLit(1)))
    elif mode == 1 and victim.body:
        victim.body.pop(rng.randrange(len(victim.body)))
    else:
        victim.body.insert(0, ast.Assign(ast.Var("EVIL"),
                                         ast.IntLit(seed % 97)))
    with pytest.raises(ReverseInlineError):
        ReverseInliner(registry).run(prog)


def test_roundtrip_survives_serialization_between_every_phase():
    """unparse/reparse between inline, parallelize, and reverse."""
    bench = get_benchmark("dyfesm")
    registry = bench.registry()
    prog = bench.program()
    AnnotationInliner(registry).run(prog)
    prog = Program.from_sources(prog.unparse(), "stage1")
    Polaris().run(prog)
    prog = Program.from_sources(prog.unparse(), "stage2")
    rev = ReverseInliner(registry).run(prog)
    assert rev.reversed_count == 2
