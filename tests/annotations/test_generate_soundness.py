"""Tests for the future-work extensions: automatic annotation generation
and annotation soundness checking."""

import pytest

from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                               ReverseInliner)
from repro.annotations.generate import (generate_all, generate_annotation,
                                        render_annotation)
from repro.annotations.parser import parse_annotations
from repro.annotations.soundness import check_registry, check_soundness
from repro.perfect import get_benchmark
from repro.polaris import Polaris
from repro.program import Program
from repro.runtime import INTEL_MAC, diff_test


class TestGeneration:
    def test_pcinit_generated(self):
        prog = get_benchmark("bdna").program()
        res = generate_annotation(prog, "PCINIT")
        assert res.ok, res.reason
        text = render_annotation(res.annotation)
        # the derived annotation matches the hand-written one's structure
        assert "dimension X2[NSP]" in text
        assert "X2[1:NSP] = unknown(" in text
        assert "TSTEP" in text

    def test_generated_annotation_reparses(self):
        prog = get_benchmark("bdna").program()
        res = generate_annotation(prog, "PCINIT")
        anns = parse_annotations(render_annotation(res.annotation))
        assert anns[0].name == "PCINIT"
        assert anns[0].declared_dims().keys() == {"X2", "Y2", "Z2"}

    def test_generated_annotation_drives_pipeline(self):
        # the full future-work loop: generate -> inline -> parallelize ->
        # reverse -> verify, with no human in the loop
        bench = get_benchmark("bdna")
        prog = bench.program()
        res = generate_annotation(prog, "PCINIT")
        registry = AnnotationRegistry()
        registry.add(res.annotation)
        AnnotationInliner(registry).run(prog)
        report = Polaris().run(prog)
        ReverseInliner(registry).run(prog)
        ks = [v for v in report.verdicts
              if v.unit == "BDNA" and v.var == "KS"]
        assert ks and ks[0].parallelized
        assert diff_test(prog, INTEL_MAC).passed

    def test_compositional_rejected(self):
        prog = get_benchmark("dyfesm").program()
        res = generate_annotation(prog, "FSMP")
        assert not res.ok
        assert "calls" in res.reason

    def test_error_check_omitted_and_counted(self):
        prog = get_benchmark("adm").program()
        res = generate_annotation(prog, "ADVCHK")
        assert res.ok, res.reason
        assert res.omitted_error_checks == 1
        text = render_annotation(res.annotation)
        assert "C[" in text

    def test_indirect_write_weaker_than_unique(self):
        # TRAPUT writes XIJ(IA(MI)+J): the generator derives the sound
        # but weak region XIJ[IA(MI)+1 : IA(MI)+40] — it cannot invent
        # the one-to-one claim, so the orbital loop still needs the
        # human unique() annotation to parallelize
        bench = get_benchmark("trfd")
        prog = bench.program()
        res = generate_annotation(prog, "TRAPUT")
        assert res.ok, res.reason
        assert "IA[MI]" in render_annotation(res.annotation)
        registry = AnnotationRegistry()
        registry.add(res.annotation)
        AnnotationInliner(registry).run(prog)
        report = Polaris().run(prog)
        mi = [v for v in report.verdicts
              if v.unit == "TRFD" and v.var == "MI"]
        assert mi and not mi[0].parallelized

    def test_generate_all_reports_reasons(self):
        prog = get_benchmark("dyfesm").program()
        results = generate_all(prog)
        assert results["FSMP"].ok is False
        assert results["SHAPE1"].ok  # a plain leaf
        assert all(r.ok or r.reason for r in results.values())

    def test_missing_source(self):
        prog = Program.from_source(
            "      PROGRAM P\n      CALL GONE(1)\n      END\n")
        assert not generate_annotation(prog, "GONE").ok


class TestSoundness:
    def test_hand_annotations_pass(self):
        for name in ("dyfesm", "bdna", "arc2d", "adm", "ocean", "trfd",
                     "mg3d"):
            bench = get_benchmark(name)
            prog = bench.program()
            reports = check_registry(prog, bench.registry())
            for rep in reports.values():
                assert rep.sound, (name, rep.subroutine, rep.violations)

    def test_missing_write_detected(self):
        bench = get_benchmark("bdna")
        prog = bench.program()
        bad = parse_annotations("""
subroutine PCINIT(X2, Y2, Z2, NSP) {
  dimension X2[NSP];
  X2[*] = unknown(FX[1], TSTEP);
}
""")[0]
        rep = check_soundness(prog, bad)
        assert not rep.sound
        assert any("Y2" in v for v in rep.violations)

    def test_missing_read_warned(self):
        # the paper's Figure 14 precedent: omitted reads are a warning
        # (sound only when the arrays are initialized-once), not an error
        bench = get_benchmark("bdna")
        prog = bench.program()
        bad = parse_annotations("""
subroutine PCINIT(X2, Y2, Z2, NSP) {
  dimension X2[NSP], Y2[NSP], Z2[NSP];
  X2[*] = unknown(NSP);
  Y2[*] = unknown(NSP);
  Z2[*] = unknown(NSP);
}
""")[0]
        rep = check_soundness(prog, bad)
        assert rep.sound
        assert any("FX" in w for w in rep.warnings)

    def test_unique_flagged_for_review(self):
        bench = get_benchmark("dyfesm")
        prog = bench.program()
        reports = check_registry(prog, bench.registry())
        assem = reports["ASSEM"]
        assert assem.sound
        assert any("one-to-one" in w for w in assem.warnings)

    def test_relaxed_io_flagged(self):
        bench = get_benchmark("adm")
        prog = bench.program()
        rep = check_registry(prog, bench.registry())["ADVCHK"]
        assert rep.sound
        assert any("I/O" in w for w in rep.warnings)

    def test_library_annotation_warns_only(self):
        bench = get_benchmark("mg3d")
        prog = Program.from_sources(
            {"main.f": bench.sources["mg3d_main.f"]}, "mg3d-no-lib")
        rep = check_registry(prog, bench.registry())["CFFTZ"]
        assert rep.sound
        assert any("no source" in w for w in rep.warnings)

    def test_unsound_annotation_caught_at_runtime(self):
        # the dynamic side: an annotation hiding a read lets Polaris
        # parallelize a genuinely sequential loop; diff_test catches it
        src = ("      PROGRAM P\n"
               "      COMMON /D/ A(100)\n"
               "      A(1) = 1.0\n"
               "      DO 10 I = 2, 100\n"
               "        CALL STEP1(I)\n"
               "   10 CONTINUE\n"
               "      WRITE(6,*) A(100)\n"
               "      END\n"
               "      SUBROUTINE STEP1(I)\n"
               "      COMMON /D/ A(100)\n"
               "      A(I) = A(I-1) + 1.0\n"
               "      END\n")
        lying = AnnotationRegistry.from_text(
            "subroutine STEP1(I) { A[I] = unknown(I); }\n")
        prog = Program.from_source(src)
        # the static checker warns about the hidden read of A...
        rep = check_soundness(prog, list(lying)[0])
        assert any("reads A" in w for w in rep.warnings)
        # ...and the runtime tester catches the unsoundness outright
        AnnotationInliner(lying).run(prog)
        report = Polaris().run(prog)
        ReverseInliner(lying).run(prog)
        assert any(v.parallelized and v.var == "I" and v.unit == "P"
                   for v in report.verdicts)
        assert not diff_test(prog, INTEL_MAC).passed
