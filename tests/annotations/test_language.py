"""Tests for the annotation language parser and validator (Figure 12)."""

import pytest

from repro.annotations import ast as aast
from repro.annotations.parser import (parse_annotation_expr,
                                      parse_annotations)
from repro.annotations.validate import validate_annotation
from repro.errors import AnnotationError
from repro.fortran import ast as fast
from repro.program import Program


class TestExpressions:
    def test_bracket_array_ref(self):
        e = parse_annotation_expr("IEGEOM[ID]")
        assert e == fast.ArrayRef("IEGEOM", (fast.Var("ID"),))

    def test_region_star(self):
        e = parse_annotation_expr("FE[*, IDE]")
        assert isinstance(e.subs[0], fast.RangeExpr)
        assert e.subs[0].lo is None
        assert e.subs[1] == fast.Var("IDE")

    def test_region_bounds(self):
        e = parse_annotation_expr("XY[1:2, J]")
        r = e.subs[0]
        assert r.lo == fast.IntLit(1) and r.hi == fast.IntLit(2)

    def test_unknown(self):
        e = parse_annotation_expr("unknown(A, B[1], 3)")
        assert isinstance(e, aast.Unknown)
        assert len(e.args) == 3

    def test_unique(self):
        e = parse_annotation_expr("unique(ID, IN, I)")
        assert isinstance(e, aast.Unique)

    def test_intrinsic_call_parens(self):
        e = parse_annotation_expr("ABS(ICOND[1, ID])")
        assert isinstance(e, fast.FuncRef)
        assert e.name == "ABS"

    def test_comparison(self):
        e = parse_annotation_expr("IDEDON[IDE] == 0")
        assert isinstance(e, fast.BinOp) and e.op == "=="

    def test_not_equal(self):
        e = parse_annotation_expr("I != 0")
        assert e.op == "/="

    def test_arith_precedence(self):
        e = parse_annotation_expr("A + B*C")
        assert e.op == "+" and e.right.op == "*"

    def test_bad_character(self):
        with pytest.raises(AnnotationError):
            parse_annotation_expr("A ? B")


FSMP_ANN = """
# annotations for the paper's Figure 13 (slightly reduced)
subroutine FSMP(ID, IDE) {
  XY = unknown(XYG[1, ICOND[1, ID]], NSYMM);
  IRECT = IEGEOM[ID];
  K1 = AK1[IECURV[ID]];
  ISTRES = 0;
  (NDX, NDY, WTDET) = unknown(IRECT, XY, NNPED);
  if (IDEDON[IDE] == 0) {
    IDEDON[IDE] = 1;
    FE[*, IDE] = unknown(WTDET, NQD, NSFE);
    ME[*, IDE] = unknown(WTDET, NQD, NNPED);
  }
  P = unknown(PXY[1, ABS(ICOND[1, ID])], NNPED);
  PE[*, ID] = unknown(P, WTDET, NQD, NNPED);
}
"""

MATMLT_ANN = """
subroutine MATMLT(M1, M2, M3, L, M, N) {
  dimension M1[L, M], M2[M, N], M3[L, N];
  M3 = 0.0;
  do (JN = 1:N)
    do (JM = 1:M)
      M3[*, JN] = M3[*, JN] + M1[*, JM] * M2[JM, JN];
}
"""

ASSEM_ANN = """
subroutine ASSEM(ID, IN) {
  do (I = 1:NDOF) {
    RHSB[unique(ID, I)] = unknown(RHSB[unique(ID, I)], XE[I]);
    RHSI[unique(IN, I)] = unknown(RHSI[unique(IN, I)], XE[I]);
  }
}
"""


class TestSubroutineParsing:
    def test_fsmp(self):
        anns = parse_annotations(FSMP_ANN)
        assert len(anns) == 1
        fsmp = anns[0]
        assert fsmp.name == "FSMP"
        assert fsmp.params == ["ID", "IDE"]
        multi = fsmp.body[4]
        assert isinstance(multi, aast.AAssign)
        assert len(multi.targets) == 3
        cond = fsmp.body[5]
        assert isinstance(cond, aast.AIf)
        assert isinstance(cond.then[1], aast.AAssign)

    def test_matmlt_dimensions(self):
        ann = parse_annotations(MATMLT_ANN)[0]
        dims = ann.declared_dims()
        assert set(dims) == {"M1", "M2", "M3"}
        assert dims["M3"][1].upper == fast.Var("N")

    def test_do_loop(self):
        ann = parse_annotations(MATMLT_ANN)[0]
        do = ann.body[2]
        assert isinstance(do, aast.ADo)
        assert do.var == "JN"
        inner = do.body[0]
        assert isinstance(inner, aast.ADo)

    def test_assem_unique(self):
        ann = parse_annotations(ASSEM_ANN)[0]
        do = ann.body[0]
        assign = do.body[0]
        assert isinstance(assign.targets[0].subs[0], aast.Unique)

    def test_multiple_annotations(self):
        anns = parse_annotations(FSMP_ANN + MATMLT_ANN)
        assert [a.name for a in anns] == ["FSMP", "MATMLT"]

    def test_comments_ignored(self):
        anns = parse_annotations("# leading comment\n" + MATMLT_ANN)
        assert anns[0].name == "MATMLT"


class TestValidation:
    def test_clean(self):
        ann = parse_annotations(MATMLT_ANN)[0]
        assert validate_annotation(ann) == []

    def test_subscripted_formal_needs_dims(self):
        ann = parse_annotations(
            "subroutine S(V) { V[3] = 1.0; }")[0]
        problems = validate_annotation(ann)
        assert any("dimension" in p for p in problems)

    def test_rank_mismatch(self):
        ann = parse_annotations(
            "subroutine S(V) { dimension V[10, 10]; V[3] = 1.0; }")[0]
        problems = validate_annotation(ann)
        assert any("subscripts" in p for p in problems)

    def test_return_rejected(self):
        ann = parse_annotations("subroutine S(V) { return V; }")[0]
        problems = validate_annotation(ann)
        assert any("return" in p for p in problems)

    def test_formal_mismatch_against_source(self):
        prog = Program.from_source(
            "      SUBROUTINE S(A, B)\n"
            "      A = B\n"
            "      END\n")
        ann = parse_annotations("subroutine S(A) { A = unknown(); }")[0]
        problems = validate_annotation(ann, prog)
        assert any("do not match" in p for p in problems)
