"""Integration tests: annotation inlining -> parallelization -> reverse
inlining (the paper's Figure 15 pipeline on its running examples)."""

import pytest

from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                               ReverseInliner)
from repro.annotations.translate import TranslateOptions
from repro.errors import ReverseInlineError
from repro.fortran import ast
from repro.fortran.parser import parse_expression as pe
from repro.fortran.unparser import unparse
from repro.polaris import Polaris, PolarisOptions
from repro.polaris.openmp import parallel_loops
from repro.program import Program

# --------------------------------------------------------------------------
# Figure 7 scenario: opaque compositional subroutine FSMP
# --------------------------------------------------------------------------

FSMP_PROGRAM = """
      PROGRAM DRV
      COMMON /ELEM/ FE(8,100), SE(8,100), IDEDON(100)
      COMMON /TMP/ XY(2,64), WTDET(64)
      COMMON /MAP/ IDBEGS(50), NEPSS(50)
      DO 35 ISS = 1, NSS
        DO 30 K = 1, NEPSS(ISS)
          ID = IDBEGS(ISS) + 1 + K
          IDE = K
          CALL FSMP(ID, IDE)
   30   CONTINUE
   35 CONTINUE
      END
      SUBROUTINE FSMP(ID, IDE)
      COMMON /ELEM/ FE(8,100), SE(8,100), IDEDON(100)
      COMMON /TMP/ XY(2,64), WTDET(64)
      CALL GETCR(ID)
      CALL SHAPE1
      IF (IDEDON(IDE).EQ.0) THEN
        IDEDON(IDE) = 1
        CALL FORMS(SE(1,IDE))
      END IF
      CALL FORMF(FE(1,ID))
      END
"""

FSMP_ANN = """
subroutine FSMP(ID, IDE) {
  XY = unknown(ID);
  WTDET = unknown(XY);
  if (IDEDON[IDE] == 0) {
    IDEDON[IDE] = 1;
    SE[*, IDE] = unknown(WTDET);
  }
  FE[*, ID] = unknown(WTDET);
}
"""


def pipeline(src, ann_text, **polaris_opts):
    registry = AnnotationRegistry.from_text(ann_text)
    prog = Program.from_source(src)
    original_text = unparse(prog.files[0])
    from repro.analysis.loops import assign_origins
    for u in prog.units:
        assign_origins(u)
    inl = AnnotationInliner(registry).run(prog)
    report = Polaris(PolarisOptions(**polaris_opts)).run(prog)
    rev = ReverseInliner(registry).run(prog)
    return prog, original_text, inl, report, rev


class TestFsmpScenario:
    def test_inlining_replaces_call(self):
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        result = AnnotationInliner(registry).run(prog)
        assert result.inlined_count == 1
        blocks = [s for s in ast.walk_stmts(prog.unit("DRV").body)
                  if isinstance(s, ast.TaggedBlock)]
        assert len(blocks) == 1
        assert blocks[0].callee == "FSMP"
        assert blocks[0].actuals == (ast.Var("ID"), ast.Var("IDE"))

    def test_k_loop_parallelized(self):
        # the headline result of Section II-B1: with annotations the K
        # loop parallelizes despite the opaque compositional callee
        prog, _, inl, report, _ = pipeline(FSMP_PROGRAM, FSMP_ANN)
        k_verdicts = [v for v in report.verdicts
                      if v.unit == "DRV" and v.var == "K"]
        assert k_verdicts and k_verdicts[0].parallelized
        assert "XY" in k_verdicts[0].private

    def test_without_annotations_serial(self):
        prog = Program.from_source(FSMP_PROGRAM)
        report = Polaris().run(prog)
        k_verdicts = [v for v in report.verdicts
                      if v.unit == "DRV" and v.var == "K"]
        assert k_verdicts and not k_verdicts[0].parallelized
        assert k_verdicts[0].reason == "call"

    def test_reverse_restores_call(self):
        prog, original, _, _, rev = pipeline(FSMP_PROGRAM, FSMP_ANN)
        assert rev.reversed_count == 1
        drv = prog.unit("DRV")
        calls = [s for s in ast.walk_stmts(drv.body)
                 if isinstance(s, ast.CallStmt) and s.name == "FSMP"]
        assert len(calls) == 1
        assert calls[0].args == (ast.Var("ID"), ast.Var("IDE"))
        blocks = [s for s in ast.walk_stmts(drv.body)
                  if isinstance(s, ast.TaggedBlock)]
        assert blocks == []

    def test_no_capture_decls_leak(self):
        prog, _, _, _, _ = pipeline(FSMP_PROGRAM, FSMP_ANN)
        text = unparse(prog.files[0])
        assert "GU" not in text
        assert "$A" not in text

    def test_final_output_is_original_plus_omp(self):
        prog, original, _, _, _ = pipeline(FSMP_PROGRAM, FSMP_ANN)
        final = unparse(prog.files[0])
        stripped = "\n".join(l for l in final.splitlines()
                             if not l.startswith("!$OMP"))
        # code size: identical modulo the directives (the Table II claim)
        assert "CALLFSMP(ID,IDE)" in stripped.replace(" ", "")
        assert "!$OMP PARALLEL DO" in final


# --------------------------------------------------------------------------
# Figures 5/16-19 scenario: MATMLT
# --------------------------------------------------------------------------

MATMLT_PROGRAM = """
      PROGRAM STEP
      COMMON /M/ PP(4,4,15), PHIT(4,4), TM1(4,4)
      DO 15 KS = 1, 15
        IF (KS.GT.1) THEN
          CALL MATMLT(PP(1,1,KS-1), PHIT(1,1), TM1(1,1), 4, 4, 4)
        END IF
   15 CONTINUE
      END
      SUBROUTINE MATMLT(M1, M2, M3, L, M, N)
      DIMENSION M1(1), M2(1), M3(1)
      DO 22 JN = 1, N
        DO 22 JL = 1, L
          M3(JL+(JN-1)*L) = 0.0
   22 CONTINUE
      DO 26 JN = 1, N
        DO 26 JM = 1, M
          DO 26 JL = 1, L
            M3(JL+(JN-1)*L) = M3(JL+(JN-1)*L)
     &          + M1(JL+(JM-1)*L)*M2(JM+(JN-1)*M)
   26 CONTINUE
      END
"""

MATMLT_ANN = """
subroutine MATMLT(M1, M2, M3, L, M, N) {
  dimension M1[L, M], M2[M, N], M3[L, N];
  M3 = 0.0;
  do (JN = 1:N)
    do (JM = 1:M)
      M3[*, JN] = M3[*, JN] + M1[*, JM] * M2[JM, JN];
}
"""


class TestMatmltScenario:
    def test_generated_loops_parallelized(self):
        # Figure 17: the zeroing loops inside the annotation parallelize
        prog, _, inl, report, rev = pipeline(MATMLT_PROGRAM, MATMLT_ANN)
        assert inl.inlined_count == 1
        assert rev.reversed_count == 1
        # directives on generated loops are dropped at reverse time
        assert rev.dropped_inner_directives >= 1

    def test_reverse_restores_exact_actuals(self):
        prog, _, _, _, rev = pipeline(MATMLT_PROGRAM, MATMLT_ANN)
        call = [s for s in ast.walk_stmts(prog.unit("STEP").body)
                if isinstance(s, ast.CallStmt) and s.name == "MATMLT"]
        assert len(call) == 1
        assert call[0].args == (pe("PP(1,1,KS-1)"), pe("PHIT(1,1)"),
                                pe("TM1(1,1)"), pe("4"), pe("4"), pe("4"))

    def test_no_linearization_of_caller(self):
        prog, _, _, _, _ = pipeline(MATMLT_PROGRAM, MATMLT_ANN)
        table = prog.symtab(prog.unit("STEP"))
        assert len(table.info("PP").dims) == 3
        assert len(table.info("TM1").dims) == 2


# --------------------------------------------------------------------------
# Figures 10/11/14 scenario: indirect subscripts via unique
# --------------------------------------------------------------------------

ASSEM_PROGRAM = """
      PROGRAM DRV2
      COMMON /R/ RHSB(99999), RHSI(99999), XE(16)
      COMMON /MAP2/ IDBEGS(50)
      DO 30 K = 1, NEP
        ID = IDBEGS(ISS) + 1 + K
        IN = ID + 1
        CALL ASSEM(ID, IN)
   30 CONTINUE
      END
      SUBROUTINE ASSEM(ID, IN)
      COMMON /R/ RHSB(99999), RHSI(99999), XE(16)
      COMMON /C/ ICOND(16,500), IWHERD(16,500)
      DO 10 I = 1, 16
        RHSB(ICOND(I,ID)) = RHSB(ICOND(I,ID)) + XE(I)
        RHSI(IWHERD(I,IN)) = RHSI(IWHERD(I,IN)) + XE(I)
   10 CONTINUE
      END
"""

ASSEM_ANN = """
subroutine ASSEM(ID, IN) {
  do (I = 1:16) {
    RHSB[unique(ID, I)] = unknown(RHSB[unique(ID, I)], XE[I]);
    RHSI[unique(IN, I)] = unknown(RHSI[unique(IN, I)], XE[I]);
  }
}
"""


class TestAssemScenario:
    def test_k_loop_parallel_with_unique(self):
        prog, _, inl, report, rev = pipeline(ASSEM_PROGRAM, ASSEM_ANN)
        assert inl.inlined_count == 1
        k = [v for v in report.verdicts
             if v.unit == "DRV2" and v.var == "K"]
        assert k and k[0].parallelized

    def test_small_unique_base_defeats_analysis(self):
        # ablation: unique() must be injective over the loop ranges; a
        # base smaller than the inner extent cannot prove independence
        registry = AnnotationRegistry.from_text(ASSEM_ANN)
        prog = Program.from_source(ASSEM_PROGRAM)
        AnnotationInliner(registry,
                          TranslateOptions(unique_base=4)).run(prog)
        report = Polaris().run(prog)
        k = [v for v in report.verdicts
             if v.unit == "DRV2" and v.var == "K"]
        assert k and not k[0].parallelized

    def test_serial_without_annotations(self):
        prog = Program.from_source(ASSEM_PROGRAM)
        report = Polaris().run(prog)
        k = [v for v in report.verdicts
             if v.unit == "DRV2" and v.var == "K"]
        assert k and not k[0].parallelized

    def test_reverse_roundtrip(self):
        prog, _, _, _, rev = pipeline(ASSEM_PROGRAM, ASSEM_ANN)
        assert rev.reversed_count == 1
        calls = [s for s in ast.walk_stmts(prog.unit("DRV2").body)
                 if isinstance(s, ast.CallStmt) and s.name == "ASSEM"]
        assert len(calls) == 1


# --------------------------------------------------------------------------
# matcher tolerance
# --------------------------------------------------------------------------

class TestMatcherTolerance:
    def test_statement_reordering(self):
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        AnnotationInliner(registry).run(prog)
        # manually permute the tagged block's statements
        for s in ast.walk_stmts(prog.unit("DRV").body):
            if isinstance(s, ast.TaggedBlock):
                s.body.reverse()
        rev = ReverseInliner(registry).run(prog)
        assert rev.reversed_count == 1

    def test_corrupted_block_rejected(self):
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        AnnotationInliner(registry).run(prog)
        for s in ast.walk_stmts(prog.unit("DRV").body):
            if isinstance(s, ast.TaggedBlock):
                s.body.append(ast.Assign(ast.Var("HACK"), ast.IntLit(1)))
        with pytest.raises(ReverseInlineError):
            ReverseInliner(registry).run(prog)

    def test_tampered_statement_rejected(self):
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        AnnotationInliner(registry).run(prog)
        for s in ast.walk_stmts(prog.unit("DRV").body):
            if isinstance(s, ast.TaggedBlock):
                s.body[0] = ast.Assign(ast.Var("HACK"), ast.IntLit(1))
        with pytest.raises(ReverseInlineError):
            ReverseInliner(registry).run(prog)

    def test_missing_annotation_rejected(self):
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        AnnotationInliner(registry).run(prog)
        empty = AnnotationRegistry()
        with pytest.raises(ReverseInlineError):
            ReverseInliner(empty).run(prog)

    def test_unparse_reparse_between_phases(self):
        # the pipeline survives serialization between inline and reverse
        registry = AnnotationRegistry.from_text(FSMP_ANN)
        prog = Program.from_source(FSMP_PROGRAM)
        AnnotationInliner(registry).run(prog)
        Polaris().run(prog)
        text = unparse(prog.files[0])
        prog2 = Program.from_source(text)
        rev = ReverseInliner(registry).run(prog2)
        assert rev.reversed_count == 1
