"""CLI tests: every subcommand exercised end-to-end through main()."""

import pytest

from repro.cli import main

SOURCE = """      PROGRAM P
      COMMON /D/ A(300,8), ROW(8)
      DO 10 I = 1, 300
        CALL FILLR(I, 8)
   10 CONTINUE
      T = 0.0
      DO 20 I = 1, 300
        T = T + A(I,3)
   20 CONTINUE
      WRITE(6,*) T
      END
      SUBROUTINE FILLR(I, N)
      COMMON /D/ A(300,8), ROW(8)
      DO 5 J = 1, N
        ROW(J) = I + J*0.5
    5 CONTINUE
      DO 6 J = 1, N
        A(I,J) = ROW(J)
    6 CONTINUE
      END
"""

ANNOTATIONS = """subroutine FILLR(I, N) {
  ROW = unknown(I, N);
  do (J = 1:N)  A[I, J] = unknown(ROW, J);
}
"""


@pytest.fixture()
def files(tmp_path):
    src = tmp_path / "prog.f"
    src.write_text(SOURCE)
    ann = tmp_path / "prog.ann"
    ann.write_text(ANNOTATIONS)
    return str(src), str(ann)


class TestParallelize:
    def test_to_stdout(self, files, capsys):
        src, ann = files
        assert main(["parallelize", src, "--annotations", ann]) == 0
        out = capsys.readouterr().out
        assert "!$OMP PARALLEL DO" in out
        assert "CALL FILLR(I,8)" in out.replace(" FILLR(I, 8", " FILLR(I,8")

    def test_to_file(self, files, tmp_path, capsys):
        src, ann = files
        out_path = tmp_path / "out.f"
        assert main(["parallelize", src, "--annotations", ann,
                     "-o", str(out_path)]) == 0
        assert "!$OMP" in out_path.read_text()
        assert "loops parallelized" in capsys.readouterr().out

    def test_none_config(self, files, capsys):
        src, _ = files
        assert main(["parallelize", src, "--config", "none"]) == 0
        out = capsys.readouterr().out
        # the I loop stays serial (opaque call); reductions still found
        assert "REDUCTION(+:T)" in out

    def test_report_flag(self, files, capsys):
        src, ann = files
        assert main(["parallelize", src, "--annotations", ann,
                     "--report"]) == 0
        err = capsys.readouterr().err
        assert "PARALLEL" in err


class TestReportRunVerify:
    def test_report(self, files, capsys):
        src, ann = files
        assert main(["report", src, "--annotations", ann]) == 0
        out = capsys.readouterr().out
        assert "loops parallelized" in out

    def test_run_serial(self, files, capsys):
        src, _ = files
        assert main(["run", src]) == 0
        out, err = capsys.readouterr()
        assert out.strip()  # the WRITE output
        assert "serial" in err

    def test_run_on_machine(self, files, capsys):
        src, ann = files
        assert main(["verify", src, "--annotations", ann]) == 0
        assert "matches" in capsys.readouterr().out

    def test_verify_catches_bad_annotation(self, tmp_path, capsys):
        src = tmp_path / "seq.f"
        src.write_text(
            "      PROGRAM P\n"
            "      COMMON /D/ A(100)\n"
            "      A(1) = 1.0\n"
            "      DO 10 I = 2, 100\n"
            "        CALL NEXT(I)\n"
            "   10 CONTINUE\n"
            "      WRITE(6,*) A(100)\n"
            "      END\n"
            "      SUBROUTINE NEXT(I)\n"
            "      COMMON /D/ A(100)\n"
            "      A(I) = A(I-1) + 1.0\n"
            "      END\n")
        ann = tmp_path / "bad.ann"
        ann.write_text("subroutine NEXT(I) { A[I] = unknown(I); }\n")
        assert main(["verify", str(src), "--annotations", str(ann)]) == 1
        assert "diverges" in capsys.readouterr().out


class TestGenerateCheck:
    def test_generate(self, files, capsys):
        src, _ = files
        assert main(["generate", src]) == 0
        out = capsys.readouterr().out
        assert "subroutine FILLR(I, N)" in out
        assert "A[I, 1:N]" in out or "A[I, 1:8]" in out

    def test_check_sound(self, files, capsys):
        src, ann = files
        assert main(["check", src, "--annotations", ann]) == 0
        assert "FILLR: SOUND" in capsys.readouterr().out

    def test_check_unsound(self, files, tmp_path, capsys):
        src, _ = files
        bad = tmp_path / "bad.ann"
        bad.write_text("subroutine FILLR(I, N) { QQQ = unknown(I); }\n")
        assert main(["check", src, "--annotations", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "UNSOUND" in out


class TestArtifacts:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "DYFESM" in capsys.readouterr().out

    def test_bench(self, capsys):
        assert main(["bench", "adm"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "FIGURE 20" in out


class TestDiagnose:
    def test_diagnose_lists_obstacles(self, files, capsys):
        src, _ = files
        assert main(["diagnose", src]) == 0
        out = capsys.readouterr().out
        assert "opaque call to FILLR" in out
        assert "annotation candidates: FILLR" in out

    def test_diagnose_all_includes_parallel(self, files, capsys):
        src, _ = files
        assert main(["diagnose", src, "--all"]) == 0
        assert "parallelizable" in capsys.readouterr().out
