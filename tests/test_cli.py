"""CLI tests: every subcommand exercised end-to-end through main()."""

import pytest

from repro.cli import main

SOURCE = """      PROGRAM P
      COMMON /D/ A(300,8), ROW(8)
      DO 10 I = 1, 300
        CALL FILLR(I, 8)
   10 CONTINUE
      T = 0.0
      DO 20 I = 1, 300
        T = T + A(I,3)
   20 CONTINUE
      WRITE(6,*) T
      END
      SUBROUTINE FILLR(I, N)
      COMMON /D/ A(300,8), ROW(8)
      DO 5 J = 1, N
        ROW(J) = I + J*0.5
    5 CONTINUE
      DO 6 J = 1, N
        A(I,J) = ROW(J)
    6 CONTINUE
      END
"""

ANNOTATIONS = """subroutine FILLR(I, N) {
  ROW = unknown(I, N);
  do (J = 1:N)  A[I, J] = unknown(ROW, J);
}
"""


@pytest.fixture()
def files(tmp_path):
    src = tmp_path / "prog.f"
    src.write_text(SOURCE)
    ann = tmp_path / "prog.ann"
    ann.write_text(ANNOTATIONS)
    return str(src), str(ann)


class TestParallelize:
    def test_to_stdout(self, files, capsys):
        src, ann = files
        assert main(["parallelize", src, "--annotations", ann]) == 0
        out = capsys.readouterr().out
        assert "!$OMP PARALLEL DO" in out
        assert "CALL FILLR(I,8)" in out.replace(" FILLR(I, 8", " FILLR(I,8")

    def test_to_file(self, files, tmp_path, capsys):
        src, ann = files
        out_path = tmp_path / "out.f"
        assert main(["parallelize", src, "--annotations", ann,
                     "-o", str(out_path)]) == 0
        assert "!$OMP" in out_path.read_text()
        assert "loops parallelized" in capsys.readouterr().out

    def test_none_config(self, files, capsys):
        src, _ = files
        assert main(["parallelize", src, "--config", "none"]) == 0
        out = capsys.readouterr().out
        # the I loop stays serial (opaque call); reductions still found
        assert "REDUCTION(+:T)" in out

    def test_report_flag(self, files, capsys):
        src, ann = files
        assert main(["parallelize", src, "--annotations", ann,
                     "--report"]) == 0
        err = capsys.readouterr().err
        assert "PARALLEL" in err


DIALECT_SOURCE = """      PROGRAM MIX
      COMMON /R/ A(8)
      REAL W(8)
      EQUIVALENCE (W(1), V)
      DATA W /8*0.25/
      X = = 1.0
      DO 10 I = 1, 8
        A(I) = A(I) + W(I)
   10 CONTINUE
      END
"""


@pytest.fixture()
def dialect_file(tmp_path):
    src = tmp_path / "mix.f"
    src.write_text(DIALECT_SOURCE)
    return str(src)


class TestParallelizeTolerant:
    def test_tolerant_recovers_and_annotates(self, dialect_file, capsys):
        assert main(["parallelize", "--tolerant", dialect_file]) == 0
        captured = capsys.readouterr()
        # the W loop reads equivalenced storage and stays serial; the
        # malformed card is reported on stderr, not fatal
        assert "PROGRAM MIX" in captured.out
        assert "parse-error" in captured.err

    def test_json_result_schema(self, dialect_file, capsys):
        import json as json_mod
        assert main(["parallelize", "--tolerant", "--json",
                     dialect_file]) == 0
        result = json_mod.loads(capsys.readouterr().out)
        assert set(result) >= {"output", "diagnostics", "loops",
                               "parallel_count", "units", "config"}
        assert result["units"] == ["MIX"]
        assert [d["code"] for d in result["diagnostics"]] == ["parse-error"]

    def test_explain_prints_per_loop_decisions(self, dialect_file, capsys):
        assert main(["parallelize", "--tolerant", "--explain",
                     dialect_file]) == 0
        err = capsys.readouterr().err
        assert "DO I" in err
        assert "equivalence" in err

    def test_strict_mode_still_fails_fast(self, dialect_file):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            main(["parallelize", dialect_file])

    def test_output_file(self, dialect_file, tmp_path, capsys):
        out = tmp_path / "mix_omp.f"
        assert main(["parallelize", "--tolerant", dialect_file,
                     "-o", str(out)]) == 0
        assert "PROGRAM MIX" in out.read_text()
        assert "1 diagnostics" in capsys.readouterr().out


class TestFuzzDialect:
    def test_unknown_dialect_env_rejected(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FUZZ_DIALECT", "bogus")
        assert main(["fuzz", "--count", "1"]) == 2
        assert "unknown dialect" in capsys.readouterr().err


class TestReportRunVerify:
    def test_report(self, files, capsys):
        src, ann = files
        assert main(["report", src, "--annotations", ann]) == 0
        out = capsys.readouterr().out
        assert "loops parallelized" in out

    def test_run_serial(self, files, capsys):
        src, _ = files
        assert main(["run", src]) == 0
        out, err = capsys.readouterr()
        assert out.strip()  # the WRITE output
        assert "serial" in err

    def test_run_on_machine(self, files, capsys):
        src, ann = files
        assert main(["verify", src, "--annotations", ann]) == 0
        assert "matches" in capsys.readouterr().out

    def test_verify_catches_bad_annotation(self, tmp_path, capsys):
        src = tmp_path / "seq.f"
        src.write_text(
            "      PROGRAM P\n"
            "      COMMON /D/ A(100)\n"
            "      A(1) = 1.0\n"
            "      DO 10 I = 2, 100\n"
            "        CALL NEXT(I)\n"
            "   10 CONTINUE\n"
            "      WRITE(6,*) A(100)\n"
            "      END\n"
            "      SUBROUTINE NEXT(I)\n"
            "      COMMON /D/ A(100)\n"
            "      A(I) = A(I-1) + 1.0\n"
            "      END\n")
        ann = tmp_path / "bad.ann"
        ann.write_text("subroutine NEXT(I) { A[I] = unknown(I); }\n")
        assert main(["verify", str(src), "--annotations", str(ann)]) == 1
        assert "diverges" in capsys.readouterr().out


class TestGenerateCheck:
    def test_generate(self, files, capsys):
        src, _ = files
        assert main(["generate", src]) == 0
        out = capsys.readouterr().out
        assert "subroutine FILLR(I, N)" in out
        assert "A[I, 1:N]" in out or "A[I, 1:8]" in out

    def test_check_sound(self, files, capsys):
        src, ann = files
        assert main(["check", src, "--annotations", ann]) == 0
        assert "FILLR: SOUND" in capsys.readouterr().out

    def test_check_unsound(self, files, tmp_path, capsys):
        src, _ = files
        bad = tmp_path / "bad.ann"
        bad.write_text("subroutine FILLR(I, N) { QQQ = unknown(I); }\n")
        assert main(["check", src, "--annotations", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "UNSOUND" in out


class TestArtifacts:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "DYFESM" in capsys.readouterr().out

    def test_bench(self, capsys):
        assert main(["bench", "adm"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "FIGURE 20" in out


class TestCheck:
    """`check` is a service entry point: exercise its exit codes and
    output shapes beyond the happy path."""

    def test_no_annotations_is_trivially_sound(self, files, capsys):
        src, _ = files
        assert main(["check", src]) == 0
        assert capsys.readouterr().out == ""  # empty registry: no rows

    def test_unsound_annotation_exits_one_with_violations(self, files,
                                                          tmp_path,
                                                          capsys):
        src, _ = files
        bad = tmp_path / "bad.ann"
        bad.write_text(
            "subroutine FILLR(I, N) { QQQ = unknown(I); }\n")
        assert main(["check", src, "--annotations", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FILLR: UNSOUND" in out
        assert "violation:" in out

    def test_sound_and_unsound_mix_still_fails(self, files, tmp_path,
                                               capsys):
        src, _ = files
        mixed = tmp_path / "mixed.ann"
        mixed.write_text(ANNOTATIONS +
                         "\nsubroutine FILLR2(I) { ZZZ = unknown(I); }\n")
        src2 = tmp_path / "two.f"
        src2.write_text(SOURCE.replace("FILLR", "FILLR2"))
        assert main(["check", str(src2), "--annotations",
                     str(mixed)]) == 1
        out = capsys.readouterr().out
        assert "FILLR2: UNSOUND" in out


class TestDiagnose:
    def test_diagnose_lists_obstacles(self, files, capsys):
        src, _ = files
        assert main(["diagnose", src]) == 0
        out = capsys.readouterr().out
        assert "opaque call to FILLR" in out
        assert "annotation candidates: FILLR" in out

    def test_diagnose_all_includes_parallel(self, files, capsys):
        src, _ = files
        assert main(["diagnose", src, "--all"]) == 0
        assert "parallelizable" in capsys.readouterr().out

    def test_diagnose_quiet_on_fully_parallel_code(self, tmp_path,
                                                   capsys):
        src = tmp_path / "par.f"
        src.write_text(
            "      PROGRAM P\n"
            "      COMMON /D/ A(100)\n"
            "      DO 10 I = 1, 100\n"
            "        A(I) = I*2.0\n"
            "   10 CONTINUE\n"
            "      WRITE(6,*) A(1)\n"
            "      END\n")
        assert main(["diagnose", str(src)]) == 0
        out = capsys.readouterr().out
        assert "obstacle" not in out.lower() or out == ""
        # with --all the parallel loop is listed
        assert main(["diagnose", str(src), "--all"]) == 0
        assert "parallelizable" in capsys.readouterr().out


class TestJobsErrors:
    """Bad worker counts exit with a clear message, not a traceback
    (both the REPRO_JOBS env path and the -j argument path)."""

    def test_garbage_env_var(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert main(["table1"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "REPRO_JOBS='lots' is not an integer" in err

    def test_negative_env_var(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "-4")
        assert main(["table1"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and ">= 0" in err

    def test_negative_jobs_flag(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["table1", "-j", "-4"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and ">= 0" in err

    def test_non_integer_jobs_flag_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "-j", "lots"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err


@pytest.fixture()
def service(tmp_path):
    from repro.service.server import ParallelizationServer
    server = ParallelizationServer(port=0, jobs=2, inline=True)
    host, port = server.start()
    yield server, host, port
    server.stop()


class TestServiceCLI:
    def test_submit_sources_and_write_output(self, files, tmp_path,
                                             service, capsys):
        _, host, port = service
        src, ann = files
        out_path = tmp_path / "opt.f"
        assert main(["submit", src, "--annotations", ann,
                     "--host", host, "--port", str(port),
                     "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "done" in out and "fresh run" in out
        assert "!$OMP" in out_path.read_text()

    def test_submit_benchmark_twice_hits_cache(self, service, capsys):
        _, host, port = service
        args = ["submit", "adm", "--host", host, "--port", str(port)]
        assert main(args) == 0
        assert "fresh run" in capsys.readouterr().out
        assert main(args) == 0
        assert "(cache)" in capsys.readouterr().out

    def test_submit_json_response(self, service, capsys):
        import json
        _, host, port = service
        assert main(["submit", "adm", "--config", "none", "--json",
                     "--host", host, "--port", str(port)]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["state"] == "done"
        assert response["result"]["parallel_count"] > 0

    def test_submit_missing_file(self, service, capsys):
        _, host, port = service
        assert main(["submit", "/no/such/file.f",
                     "--host", host, "--port", str(port)]) == 2
        assert "cannot read input" in capsys.readouterr().err

    def test_submit_unreachable_server(self, files, capsys):
        src, _ = files
        assert main(["submit", src, "--port", "1"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_svc_status_health_and_metrics(self, service, capsys):
        import json
        _, host, port = service
        assert main(["svc-status", "--host", host,
                     "--port", str(port), "--metrics"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["ok"] and health["workers"] == 2
        assert "repro_jobs_submitted_total" in health["metrics"]

    def test_svc_status_prometheus(self, service, capsys):
        _, host, port = service
        assert main(["svc-status", "--prometheus", "--host", host,
                     "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_jobs_submitted_total counter" in out

    def test_svc_status_unreachable(self, capsys):
        assert main(["svc-status", "--port", "1"]) == 2
        assert "unreachable" in capsys.readouterr().err
