"""Shard cache tests: routing, per-shard metrics, graceful degradation
when a shard is down, and the shard-node server end to end."""

import pytest

from repro.cluster.shardcache import (CacheShardServer, LocalShard,
                                      RemoteShard, ShardedCache,
                                      parse_shard_spec)
from repro.obs.metrics import MetricsRegistry


def _result(i=0):
    return {"echo": f"value-{i}"}


class TestParseSpec:
    def test_host_and_port(self):
        assert parse_shard_spec("10.0.0.5:7500") == ("10.0.0.5", 7500)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_shard_spec(":7500") == ("127.0.0.1", 7500)

    @pytest.mark.parametrize("bad", ["", "host", "host:", "host:abc"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError, match="shard spec"):
            parse_shard_spec(bad)


class TestLocalShard:
    def test_roundtrip_and_stats(self):
        shard = LocalShard(capacity=4)
        assert shard.get("d0") is None
        shard.put("d0", _result())
        assert shard.get("d0") == _result()
        stats = shard.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestShardedCache:
    def _cache(self, registry=None):
        return ShardedCache({"a": LocalShard(capacity=64),
                             "b": LocalShard(capacity=64)},
                            registry=registry or MetricsRegistry())

    def test_routing_is_deterministic_and_partitioned(self):
        cache = self._cache()
        digests = [f"digest-{i:04d}" for i in range(50)]
        for i, digest in enumerate(digests):
            cache.put(digest, _result(i))
        for i, digest in enumerate(digests):
            assert cache.get(digest) == _result(i)
        per_shard = cache.shard_stats()
        entries = {name: s["entries"] for name, s in per_shard.items()}
        assert sum(entries.values()) == len(digests)
        # 96 virtual nodes per shard spread 50 keys across both
        assert all(n > 0 for n in entries.values())

    def test_stats_aggregates_across_shards(self):
        cache = self._cache()
        cache.put("d0", _result())
        cache.get("d0")
        cache.get("never-stored")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_per_shard_request_metrics(self):
        registry = MetricsRegistry()
        cache = self._cache(registry=registry)
        cache.put("d0", _result())
        cache.get("d0")
        cache.get("absent")
        counter = registry.counter("repro_cluster_shard_requests_total")
        by_outcome = {}
        for outcome in ("put", "hit", "miss"):
            by_outcome[outcome] = sum(
                counter.value(shard=name, outcome=outcome)
                for name in cache.shard_names)
        assert by_outcome == {"put": 1, "hit": 1, "miss": 1}

    def test_dead_shard_degrades_to_miss_not_error(self):
        registry = MetricsRegistry()
        # port 1 is never listening: every request fails fast
        cache = ShardedCache(
            {"dead": RemoteShard("127.0.0.1", 1, timeout=0.5)},
            registry=registry)
        assert cache.get("d0") is None          # miss, not an exception
        cache.put("d0", _result())              # no-op, not an exception
        counter = registry.counter("repro_cluster_shard_requests_total")
        assert counter.value(shard="dead", outcome="error") == 2
        stats = cache.shard_stats()
        assert stats["dead"]["alive"] is False
        assert "unreachable" in stats["dead"]["error"]

    def test_membership_changes(self):
        cache = self._cache()
        assert cache.shard_names == ["a", "b"]
        cache.add_shard("c", LocalShard())
        assert cache.shard_names == ["a", "b", "c"]
        cache.remove_shard("b")
        assert cache.shard_names == ["a", "c"]
        info = cache.ring_info()
        assert info["shards"] == ["a", "c"]
        assert info["replicas"] == cache.replicas


class TestCacheShardServer:
    @pytest.fixture()
    def make_server(self):
        servers = []

        def factory(**kwargs):
            server = CacheShardServer(port=0, **kwargs)
            server.start()
            servers.append(server)
            return server

        yield factory
        for server in servers:
            server.stop()

    def test_remote_roundtrip(self, make_server):
        server = make_server(capacity=16)
        shard = RemoteShard(*server.address)
        assert shard.get("d0") is None
        shard.put("d0", _result())
        assert shard.get("d0") == _result()
        stats = shard.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        shard.close()

    def test_disk_tier_survives_restart(self, make_server, tmp_path):
        first = make_server(capacity=16, directory=str(tmp_path))
        shard = RemoteShard(*first.address)
        shard.put("d0", _result())
        shard.close()
        first.stop()
        second = make_server(capacity=16, directory=str(tmp_path))
        shard = RemoteShard(*second.address)
        assert shard.get("d0") == _result()
        shard.close()

    def test_protocol_errors(self, make_server):
        server = make_server()
        bad = server.handle_request({"op": "cache-get"})
        assert bad["ok"] is False and bad["code"] == "bad-request"
        bad = server.handle_request({"op": "cache-put", "digest": "d"})
        assert bad["ok"] is False and bad["code"] == "bad-request"
        bad = server.handle_request({"op": "frobnicate"})
        assert bad["ok"] is False and bad["code"] == "bad-op"

    def test_shutdown_op_stops_server(self, make_server):
        server = make_server()
        shard = RemoteShard(*server.address)
        response = shard.request({"op": "shutdown"})
        assert response["ok"] and response["stopping"]
        assert "_shutdown" not in response  # internal marker never leaks
        assert server.wait(timeout=5)
        shard.close()
