"""Loadtest harness tests: payload/reference construction, the report
math, a real concurrent run against an in-process gateway, and the
bench-history record the dashboard plots."""

import json

import pytest

from repro.cluster.gateway import ClusterGateway
from repro.cluster.loadtest import (HISTORY_SUITE, append_history,
                                    build_payloads, reference_results,
                                    run_loadtest, _percentile)
from repro.service.jobs import payload_digest


class TestBuildPayloads:
    def test_probe_payloads_are_distinct_and_deterministic(self):
        payloads = build_payloads(8)
        assert len(payloads) == 8
        assert len({payload_digest(p) for p in payloads}) == 8
        assert payloads == build_payloads(8)

    def test_benchmark_payloads_cycle_configs(self):
        payloads = build_payloads(6, kind="benchmark", benchmark="tref")
        assert len(payloads) == 6
        assert {p["config"] for p in payloads} \
            == {"none", "conventional", "annotation"}
        assert len({payload_digest(p) for p in payloads}) == 6

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="payload kind"):
            build_payloads(4, kind="nonsense")


class TestReferenceResults:
    def test_probe_references(self):
        payloads = build_payloads(3)
        expected = reference_results(payloads)
        assert len(expected) == 3
        for payload in payloads:
            assert expected[payload_digest(payload)] \
                == {"echo": payload["value"]}


class TestPercentile:
    def test_edges(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.99) == 7.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 100.0
        assert 49.0 <= _percentile(values, 0.5) <= 52.0

    @pytest.mark.parametrize("q", [0.0, 0.5, 0.99, 1.0])
    def test_single_sample_is_that_sample(self, q):
        assert _percentile([3.25], q) == 3.25

    @pytest.mark.parametrize("q,expected", [
        (0.0, 1.0), (0.5, 1.5), (0.99, 1.99), (1.0, 2.0)])
    def test_two_samples_interpolate(self, q, expected):
        # the old round()-based rank banker's-rounded the p50 of two
        # samples down to the smaller one (round(0.5) == 0)
        assert _percentile([1.0, 2.0], q) == pytest.approx(expected)

    @pytest.mark.parametrize("q,expected", [
        (0.0, 1.0), (0.5, 2.0), (0.99, 3.96), (1.0, 4.0)])
    def test_three_samples_interpolate(self, q, expected):
        assert _percentile([1.0, 2.0, 4.0], q) == pytest.approx(expected)

    def test_q_clamped_to_unit_interval(self):
        assert _percentile([1.0, 2.0], -0.5) == 1.0
        assert _percentile([1.0, 2.0], 1.5) == 2.0


class TestRunLoadtest:
    @pytest.fixture()
    def gateway(self):
        gw = ClusterGateway(port=0, local_workers=2, inline=True,
                            queue_capacity=1024, retry_backoff=0.01)
        gw.start_background()
        yield gw
        gw.stop()
        gw.wait(timeout=10)

    def test_concurrent_sessions_zero_lost_zero_incorrect(self, gateway):
        host, port = gateway.address
        report = run_loadtest(host, port, sessions=80, distinct=8,
                              wait_timeout=30)
        assert report["ok"], report
        assert report["lost"] == 0 and report["mismatches"] == 0
        assert report["outcomes"] == {"done": 80}
        assert report["jobs"] == 80
        # distinct << sessions: the dedup/cache paths carried the load
        assert report["deduped"] + report["cached"] >= 80 - 8
        assert report["latency"]["p50"] <= report["latency"]["p99"]
        assert report["throughput_jobs_per_sec"] > 0
        assert report["service"]["health"]["tier"] == "cluster"

    def test_unreachable_service_counts_lost_sessions(self):
        report = run_loadtest("127.0.0.1", 1, sessions=3, distinct=3,
                              wait_timeout=2, verify=False)
        assert report["ok"] is False
        assert report["lost"] == 3
        assert "connect" in report["outcomes"]


class TestHistoryRecord:
    def test_append_history_record_shape(self, tmp_path):
        report = {
            "sessions": 10, "jobs": 10, "lost": 0, "mismatches": 0,
            "ok": True, "throughput_jobs_per_sec": 123.4,
            "latency": {"p50": 0.01, "p90": 0.02, "p99": 0.03},
        }
        path = tmp_path / "history.jsonl"
        append_history(report, path=str(path))
        append_history(report, path=str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["suite"] == HISTORY_SUITE == "loadtest"
        assert record["mode"] == "loadtest"
        assert record["p99_seconds"] == 0.03  # the p99 the chart plots
        # p99 must not alias the bench suites' wall-clock field
        assert "total_seconds" not in record
        assert record["phases"] == {"p50": 0.01, "p90": 0.02,
                                    "p99": 0.03}
        assert record["passed"] is True
        assert record["ts"] > 0
