"""The gateway's observability plane: trace propagation, span ingest,
exactly-once telemetry across node restarts, health enrichment, and the
``telemetry`` / ``trace-export`` ops."""

import asyncio

from repro.cluster.gateway import ClusterGateway
from repro.obs import metrics as obs_metrics
from repro.obs.distributed import TraceContext


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


def _gateway(**kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    return ClusterGateway(**kwargs)


def drive(coro):
    return asyncio.run(coro)


def _trace_ctx():
    root = TraceContext()
    return root, {"traceparent": root.to_traceparent()}


async def _submit_traced(gw, trace_ctx, payload=None):
    return await gw.handle_request({"op": "submit",
                                    "payload": payload or _probe(),
                                    "trace_ctx": trace_ctx})


async def _pull(gw, node, max_jobs=1):
    return await gw.handle_request({"op": "work-pull", "node": node,
                                    "wait": 0.0, "max_jobs": max_jobs})


def _span(node, trace_id, name="execute", span_id="feedbeefcafe0001"):
    return {"name": name, "cat": "worker", "node": node,
            "trace_id": trace_id, "span_id": span_id,
            "parent_id": None, "ts_wall": 1.0, "dur": 0.5}


class TestTracePropagation:
    def test_descriptor_carries_child_context(self):
        async def scenario():
            gw = _gateway()
            root, ctx = _trace_ctx()
            response = await _submit_traced(gw, ctx)
            assert response["ok"], response
            pulled = await _pull(gw, "w0")
            (descriptor,) = pulled["jobs"]
            carried = TraceContext.from_dict(descriptor["trace_ctx"])
            # same trace, but a fresh gateway-side span as the parent
            assert carried.trace_id == root.trace_id
            assert carried.span_id != root.span_id
        drive(scenario())

    def test_untraced_descriptor_has_no_trace_ctx(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "submit", "payload": _probe()})
            pulled = await _pull(gw, "w0")
            assert "trace_ctx" not in pulled["jobs"][0]
        drive(scenario())

    def test_malformed_trace_ctx_rejected(self):
        async def scenario():
            gw = _gateway()
            response = await _submit_traced(
                gw, {"traceparent": "not-a-traceparent"})
            assert response["ok"] is False
            assert response["code"] == "bad-request"
        drive(scenario())

    def test_finished_job_records_gateway_spans(self):
        async def scenario():
            gw = _gateway()
            root, ctx = _trace_ctx()
            submitted = await _submit_traced(gw, ctx)
            job_id = submitted["job_id"]
            pulled = await _pull(gw, "w0")
            assert pulled["jobs"], pulled
            start = await gw.handle_request({"op": "work-start",
                                             "node": "w0",
                                             "job_id": job_id})
            assert start["granted"]
            await gw.handle_request({"op": "work-done", "node": "w0",
                                     "job_id": job_id,
                                     "result": {"echo": True}})
            export = await gw.handle_request({"op": "trace-export"})
            names = {(s["name"], s["cat"]) for s in export["spans"]}
            assert ("queue-wait", "gateway") in names
            assert ("job", "gateway") in names
            assert {s["trace_id"] for s in export["spans"]} \
                == {root.trace_id}
        drive(scenario())

    def test_cache_hit_still_records_job_span(self):
        async def scenario():
            gw = _gateway()
            root, ctx = _trace_ctx()
            first = await _submit_traced(gw, ctx)
            pulled = await _pull(gw, "w0")
            await gw.handle_request({"op": "work-start", "node": "w0",
                                     "job_id": first["job_id"]})
            await gw.handle_request({"op": "work-done", "node": "w0",
                                     "job_id": first["job_id"],
                                     "result": {"echo": True}})
            # same payload again: answered from the shard tier
            root2, ctx2 = _trace_ctx()
            second = await _submit_traced(gw, ctx2)
            assert second["cached"], second
            export = await gw.handle_request({"op": "trace-export"})
            job_spans = [s for s in export["spans"]
                         if s["name"] == "job"
                         and s["trace_id"] == root2.trace_id]
            assert len(job_spans) == 1
            assert job_spans[0]["args"]["cached"] is True
        drive(scenario())


class TestHeartbeatIngest:
    def test_spans_and_metrics_merge_exactly_once(self):
        async def scenario():
            gw = _gateway()
            message = {"op": "heartbeat", "node": "w0", "boot": "boot-a",
                       "wall": 123.0, "seq": 1,
                       "metrics": {"repro_jobs_completed_total": {
                           "kind": "counter", "help": "",
                           "values": [[[["state", "done"]], 2]]}},
                       "spans": [_span("w0", "t" * 32)]}
            first = await gw.handle_request(dict(message))
            assert first["ok"]
            replay = await gw.handle_request(dict(message))
            assert replay["ok"]
            export = await gw.handle_request({"op": "trace-export"})
            assert len([s for s in export["spans"]
                        if s["node"] == "w0"]) == 1
            counter = obs_metrics.get_registry().counter(
                "repro_jobs_completed_total")
            assert counter.value(state="done") == 2
        drive(scenario())

    def test_node_restart_resets_sequence(self):
        """Satellite: a node that restarts mid-run resets its sequence
        numbers; the new boot id reopens the stream at seq 1 without
        replaying the old incarnation's history."""
        async def scenario():
            gw = _gateway()
            metrics = {"repro_jobs_completed_total": {
                "kind": "counter", "help": "",
                "values": [[[["state", "done"]], 1]]}}
            for seq in (1, 2, 3):
                await gw.handle_request(
                    {"op": "heartbeat", "node": "w0", "boot": "boot-a",
                     "wall": 1.0, "seq": seq, "metrics": metrics,
                     "spans": [_span("w0", "t" * 32,
                                     span_id=f"a{seq:015d}")]})
            # stale replay from the old incarnation: dropped
            await gw.handle_request(
                {"op": "heartbeat", "node": "w0", "boot": "boot-a",
                 "wall": 1.0, "seq": 2, "metrics": metrics,
                 "spans": [_span("w0", "t" * 32, span_id="a" + "2" * 15)]})
            # restart: fresh boot id, sequence starts over at 1
            restarted = await gw.handle_request(
                {"op": "heartbeat", "node": "w0", "boot": "boot-b",
                 "wall": 1.0, "seq": 1, "metrics": metrics,
                 "spans": [_span("w0", "t" * 32, span_id="b" + "1" * 15)]})
            assert restarted["ok"]
            counter = obs_metrics.get_registry().counter(
                "repro_jobs_completed_total")
            # 3 pre-restart ships + 1 post-restart ship, replay dropped
            assert counter.value(state="done") == 4
            export = await gw.handle_request({"op": "trace-export"})
            assert len([s for s in export["spans"]
                        if s["node"] == "w0"]) == 4
            events = gw.telemetry.events_since(0)
            restarts = [e for e in events if e["kind"] == "node-restart"]
            assert len(restarts) == 1
            assert restarts[0]["node"] == "w0"
            assert restarts[0]["boot"] == "boot-b"
        drive(scenario())

    def test_heartbeat_wall_feeds_clock_model(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "heartbeat", "node": "w0",
                                     "boot": "b", "wall": 1.0, "seq": 1,
                                     "metrics": {}})
            export = await gw.handle_request({"op": "trace-export"})
            assert "w0" in export["clock_offsets"]
            assert export["clock_offsets"]["w0"]["samples"] == 1
        drive(scenario())


class TestHealthEnrichment:
    def test_health_has_uptime_heartbeat_and_lease_ages(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "heartbeat", "node": "w0",
                                     "boot": "boot-a", "wall": 1.0,
                                     "seq": 1, "metrics": {}})
            submitted = await gw.handle_request({"op": "submit",
                                                 "payload": _probe()})
            pulled = await _pull(gw, "w0")
            assert pulled["jobs"]
            health = await gw.handle_request({"op": "health"})
            cluster = health["cluster"]
            assert cluster["gateway_uptime"] >= 0.0
            assert cluster["run_id"] == gw.run_id
            worker = cluster["worker_nodes"]["w0"]
            assert worker["boot"] == "boot-a"
            assert worker["last_heartbeat_age"] >= 0.0
            assert submitted["job_id"] in worker["leases"]
            assert worker["oldest_lease_age"] >= 0.0
        drive(scenario())

    def test_unleased_worker_has_no_oldest_lease(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "heartbeat", "node": "w0",
                                     "boot": "b", "wall": 1.0, "seq": 1,
                                     "metrics": {}})
            health = await gw.handle_request({"op": "health"})
            worker = health["cluster"]["worker_nodes"]["w0"]
            assert worker["leases"] == {}
            assert worker["oldest_lease_age"] is None
        drive(scenario())


class TestTelemetryOp:
    def test_snapshot_and_event_stream(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "heartbeat", "node": "w0",
                                     "boot": "b", "wall": 1.0, "seq": 1,
                                     "metrics": {}})
            frame = await gw.handle_request({"op": "telemetry"})
            assert frame["ok"] and frame["tier"] == "cluster"
            snapshot = frame["snapshot"]
            assert "metrics" in snapshot and "health" in snapshot
            assert snapshot["health"]["queue_depth"] == 0
            kinds = [e["kind"] for e in frame["events"]]
            assert "node-join" in kinds
            # a second poll with events_since sees nothing new
            again = await gw.handle_request(
                {"op": "telemetry", "events_since": frame["event_seq"]})
            assert again["events"] == []
        drive(scenario())

    def test_snapshots_persist_when_directory_given(self, tmp_path):
        async def scenario():
            gw = _gateway(telemetry_dir=str(tmp_path), run_id="runA")
            await gw.handle_request({"op": "telemetry"})
            from repro.obs.telemetry import TelemetryStore
            loaded = TelemetryStore.load_run(str(tmp_path), "runA")
            assert loaded.latest() is not None
        drive(scenario())

    def test_trace_export_validates_trace_id(self):
        async def scenario():
            gw = _gateway()
            response = await gw.handle_request({"op": "trace-export",
                                                "trace_id": 7})
            assert response["ok"] is False
            assert response["code"] == "bad-request"
        drive(scenario())
