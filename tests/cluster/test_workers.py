"""Worker-fleet tests: an in-process WorkerNode driving the real wire
protocol against a gateway, and a full subprocess cluster where a
SIGKILLed worker mid-batch still leaves the batch complete (ISSUE
acceptance)."""

import time

import pytest

from repro.cluster.gateway import ClusterGateway
from repro.cluster.topology import LocalCluster
from repro.cluster.workers import GatewayLink, GatewayUnreachable, WorkerNode
from repro.service.client import ServiceClient


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


@pytest.fixture()
def gateway():
    gw = ClusterGateway(port=0, local_workers=0, retry_backoff=0.01,
                        heartbeat_timeout=2.0)
    gw.start_background()
    yield gw
    gw.stop()
    gw.wait(timeout=10)


@pytest.fixture()
def make_node(gateway):
    nodes = []

    def factory(**kwargs):
        kwargs.setdefault("name", f"test-worker-{len(nodes)}")
        kwargs.setdefault("threads", 1)
        kwargs.setdefault("inline", True)
        kwargs.setdefault("pull_wait", 0.2)
        kwargs.setdefault("heartbeat_interval", 0.1)
        node = WorkerNode(*gateway.address, **kwargs)
        node.start()
        nodes.append(node)
        return node

    yield factory
    for node in nodes:
        node.stop()
        node.wait(timeout=10)


class TestGatewayLink:
    def test_unreachable_raises(self):
        link = GatewayLink("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(GatewayUnreachable):
            link.request({"op": "health"})

    def test_request_roundtrip(self, gateway):
        link = GatewayLink(*gateway.address)
        response = link.request({"op": "health"})
        assert response["ok"] and response["tier"] == "cluster"
        link.close()


class TestFleetExecution:
    def test_remote_node_executes_submissions(self, gateway, make_node):
        node = make_node()
        client = ServiceClient(*gateway.address)
        response = client.submit(_probe(value="fleet"), wait=True,
                                 wait_timeout=15)
        assert response["state"] == "done"
        assert response["result"] == {"echo": "fleet"}
        assert node.jobs_done == 1

    def test_node_appears_in_health_with_info(self, gateway, make_node):
        node = make_node()
        client = ServiceClient(*gateway.address)
        deadline = time.monotonic() + 5
        workers = {}
        while time.monotonic() < deadline:
            workers = client.health()["cluster"]["worker_nodes"]
            if node.name in workers and workers[node.name]["info"]:
                break
            time.sleep(0.05)
        assert node.name in workers
        entry = workers[node.name]
        assert entry["alive"] and not entry["local"]
        assert entry["info"]["pool_mode"] == "inline"

    def test_crash_retry_lands_on_the_fleet(self, gateway, make_node,
                                            tmp_path):
        make_node()
        client = ServiceClient(*gateway.address)
        marker = tmp_path / "fleet-crash.marker"
        response = client.submit(_probe("crash-once", marker=str(marker)),
                                 wait=True, wait_timeout=20,
                                 max_retries=2)
        assert response["state"] == "done"
        assert response["result"] == {"recovered": True}
        assert response["attempts"] == 2

    def test_two_nodes_split_a_batch(self, gateway, make_node):
        a = make_node()
        b = make_node()
        client = ServiceClient(*gateway.address)
        submitted = [client.submit(_probe("sleep", seconds=0.1,
                                          tag=f"split-{i}"), wait=False)
                     for i in range(6)]
        for s in submitted:
            response = client.result(s["job_id"], wait=True,
                                     wait_timeout=20)
            assert response["ok"]
        assert a.jobs_done + b.jobs_done == 6
        assert a.jobs_done > 0 and b.jobs_done > 0

    def test_node_stops_when_gateway_announces_shutdown(self, gateway,
                                                        make_node):
        node = make_node()
        ServiceClient(*gateway.address).shutdown()
        assert gateway.wait(timeout=10)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not node.stopping:
            time.sleep(0.05)
        assert node.stopping

    def test_heartbeat_seq_advances(self, gateway, make_node):
        node = make_node()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and node._seq == 0:
            time.sleep(0.05)
        assert node._seq >= 1


class TestSubprocessCluster:
    """The whole topology as real processes (the loadtest --spawn path)."""

    def test_kill_worker_mid_batch_batch_still_completes(self, tmp_path):
        """ISSUE acceptance: SIGKILL one worker mid-batch; the dead-node
        sweep re-queues its leases and the batch completes."""
        with LocalCluster(shards=2, workers=2, worker_threads=1,
                          heartbeat_timeout=1.0, retry_backoff=0.1,
                          cache_dir=str(tmp_path)) as cluster:
            client = ServiceClient(*cluster.gateway_address)
            submitted = [client.submit(_probe("sleep", seconds=0.25,
                                              tag=f"batch-{i}"),
                                       wait=False)
                         for i in range(8)]
            time.sleep(0.3)          # let worker 0 lease and start work
            cluster.kill_worker(0)   # SIGKILL, no goodbye
            for s in submitted:
                response = client.result(s["job_id"], wait=True,
                                         wait_timeout=60)
                assert response["ok"], f"job lost after worker kill: {s}"
            health = client.health()
            assert health["cluster"]["workers_alive"] >= 1
            # repeat submission is answered from the shard tier
            repeat = client.submit(_probe("sleep", seconds=0.25,
                                          tag="batch-0"), wait=True,
                                   wait_timeout=10)
            assert repeat["cached"]
