"""Shared fixtures for the cluster tests.

Every test runs against a fresh process-wide metrics registry: gateways
merge worker metric deltas into the default registry, and the loadtest
harness lands its headline gauges there, so without isolation one test's
numbers would leak into the next's assertions.
"""

import pytest

from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def isolated_registry():
    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    yield obs_metrics.get_registry()
    obs_metrics.set_registry(previous)
