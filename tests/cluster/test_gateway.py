"""Gateway tests.

The unit half drives :meth:`ClusterGateway.handle_request` directly from
a test-owned event loop, playing both the client and a fake worker node
— lease grants, stealing, stale reports, crash retry, heartbeat merge,
and the dead-node sweep are all asserted without sockets.

The end-to-end half runs a background gateway with embedded local
workers and the real synchronous client, including the drain guarantee:
a SIGTERM/`shutdown drain` gateway finishes every accepted job before
exiting (ISSUE satellite: no accepted job is lost).
"""

import asyncio
import time

import pytest

from repro.cluster.gateway import ClusterGateway
from repro.obs import metrics as obs_metrics
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobState, payload_digest


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


def _gateway(**kwargs):
    kwargs.setdefault("retry_backoff", 0.0)  # immediate requeue in tests
    return ClusterGateway(**kwargs)


def drive(coro):
    """Run one async test scenario on a fresh loop."""
    return asyncio.run(coro)


async def _submit(gw, payload, **extra):
    request = {"op": "submit", "payload": payload}
    request.update(extra)
    return await gw.handle_request(request)


async def _pull(gw, node, wait=0.0, max_jobs=1):
    return await gw.handle_request({"op": "work-pull", "node": node,
                                    "wait": wait, "max_jobs": max_jobs})


class TestSubmitValidation:
    def test_missing_payload(self):
        async def scenario():
            gw = _gateway()
            response = await gw.handle_request({"op": "submit"})
            assert response["ok"] is False
            assert response["code"] == "bad-request"
        drive(scenario())

    def test_unknown_kind(self):
        async def scenario():
            gw = _gateway()
            response = await _submit(gw, {"kind": "nonsense"})
            assert response["code"] == "bad-request"
        drive(scenario())

    def test_unknown_op(self):
        async def scenario():
            gw = _gateway()
            response = await gw.handle_request({"op": "frobnicate"})
            assert response["code"] == "bad-op"
        drive(scenario())

    def test_unknown_job(self):
        async def scenario():
            gw = _gateway()
            response = await gw.handle_request({"op": "status",
                                                "job_id": "job-999999"})
            assert response["code"] == "not-found"
        drive(scenario())


class TestLeaseLifecycle:
    def test_pull_start_done_roundtrip(self):
        async def scenario():
            gw = _gateway()
            submitted = await _submit(gw, _probe(value=7))
            assert submitted["ok"] and submitted["state"] == "queued"
            job_id = submitted["job_id"]

            pulled = await _pull(gw, "node-a")
            assert [j["job_id"] for j in pulled["jobs"]] == [job_id]
            start = await gw.handle_request(
                {"op": "work-start", "node": "node-a", "job_id": job_id})
            assert start["granted"] and start["attempts"] == 1
            done = await gw.handle_request(
                {"op": "work-done", "node": "node-a", "job_id": job_id,
                 "result": {"echo": 7}})
            assert done["accepted"]

            result = await gw.handle_request({"op": "result",
                                              "job_id": job_id})
            assert result["ok"] and result["result"] == {"echo": 7}
            # the finished result landed in the shard cache
            digest = payload_digest(_probe(value=7))
            assert gw.cache.get(digest) == {"echo": 7}
        drive(scenario())

    def test_inflight_dedup_and_cache_hit(self):
        async def scenario():
            gw = _gateway()
            first = await _submit(gw, _probe(value=1))
            second = await _submit(gw, _probe(value=1))
            assert second["job_id"] == first["job_id"]
            assert second["deduped"]
            metrics = gw.metrics.to_json()
            assert metrics["repro_jobs_deduped_total"] == 1
            assert metrics["repro_jobs_submitted_total"] == 1

            # finish it; an identical later submit is a shard-cache hit
            pulled = await _pull(gw, "n")
            job_id = pulled["jobs"][0]["job_id"]
            await gw.handle_request({"op": "work-start", "node": "n",
                                     "job_id": job_id})
            await gw.handle_request({"op": "work-done", "node": "n",
                                     "job_id": job_id,
                                     "result": {"echo": 1}})
            third = await _submit(gw, _probe(value=1), wait=True)
            assert third["state"] == "done" and third["cached"]
            assert third["result"] == {"echo": 1}
            assert gw.metrics.to_json()["repro_cache_hits_total"] == 1
        drive(scenario())

    def test_backpressure_when_queue_full(self):
        async def scenario():
            gw = _gateway(queue_capacity=1)
            first = await _submit(gw, _probe(value="a"))
            assert first["ok"]
            second = await _submit(gw, _probe(value="b"))
            assert second["ok"] is False
            assert second["code"] == "backpressure"
            assert gw.metrics.to_json()[
                "repro_jobs_rejected_total"] == 1
        drive(scenario())

    def test_cancel_queued_job_revokes_lease(self):
        async def scenario():
            gw = _gateway()
            submitted = await _submit(gw, _probe(value="x"))
            job_id = submitted["job_id"]
            pulled = await _pull(gw, "n")   # leased but not started
            assert pulled["jobs"]
            canceled = await gw.handle_request({"op": "cancel",
                                                "job_id": job_id})
            assert canceled["canceled"] is True
            start = await gw.handle_request(
                {"op": "work-start", "node": "n", "job_id": job_id})
            assert start["granted"] is False
        drive(scenario())

    def test_deadline_expired_while_queued(self):
        async def scenario():
            gw = _gateway()
            submitted = await _submit(gw, _probe(value="late"),
                                      deadline=0.01)
            await asyncio.sleep(0.05)
            pulled = await _pull(gw, "n")
            assert pulled["jobs"] == []
            status = await gw.handle_request(
                {"op": "status", "job_id": submitted["job_id"]})
            assert status["state"] == "timeout"
        drive(scenario())


class TestWorkStealing:
    def test_idle_node_steals_from_backlogged_node(self):
        async def scenario():
            gw = _gateway()
            ids = []
            for i in range(3):
                response = await _submit(gw, _probe(value=i))
                ids.append(response["job_id"])
            # node-a leases everything, starts none
            pulled = await _pull(gw, "node-a", max_jobs=3)
            assert len(pulled["jobs"]) == 3
            # node-b finds an empty queue and steals one lease
            stolen = await _pull(gw, "node-b")
            assert len(stolen["jobs"]) == 1
            victim_job = stolen["jobs"][0]["job_id"]
            assert gw.metrics.to_json()[
                "repro_cluster_steals_total"] == 1
            assert gw.metrics.to_json()["repro_cluster_pulls_total"] \
                == {'{outcome="jobs"}': 1, '{outcome="steal"}': 1}
            # the victim's work-start for the stolen job is refused —
            # the job can never run twice
            refused = await gw.handle_request(
                {"op": "work-start", "node": "node-a",
                 "job_id": victim_job})
            assert refused["granted"] is False
            assert "lease moved" in refused["reason"]
            granted = await gw.handle_request(
                {"op": "work-start", "node": "node-b",
                 "job_id": victim_job})
            assert granted["granted"] is True
        drive(scenario())

    def test_nothing_to_steal_reports_empty(self):
        async def scenario():
            gw = _gateway()
            pulled = await _pull(gw, "bored")
            assert pulled["jobs"] == []
            assert gw.metrics.to_json()["repro_cluster_pulls_total"] \
                == {'{outcome="empty"}': 1}
        drive(scenario())


class TestFailureReports:
    async def _leased_running(self, gw, node="n", **probe):
        submitted = await _submit(gw, _probe(**probe))
        job_id = submitted["job_id"]
        await _pull(gw, node)
        start = await gw.handle_request({"op": "work-start",
                                         "node": node, "job_id": job_id})
        assert start["granted"]
        return job_id

    def test_crash_is_retried_then_completes(self):
        async def scenario():
            gw = _gateway(max_retries=1)
            job_id = await self._leased_running(gw, value="crashy")
            failed = await gw.handle_request(
                {"op": "work-fail", "node": "n", "job_id": job_id,
                 "kind": "crash", "error": "simulated"})
            assert failed["accepted"]
            # retry_backoff 0 -> requeued immediately, attempts respected
            pulled = await _pull(gw, "n")
            assert [j["job_id"] for j in pulled["jobs"]] == [job_id]
            start = await gw.handle_request(
                {"op": "work-start", "node": "n", "job_id": job_id})
            assert start["granted"] and start["attempts"] == 2
            await gw.handle_request(
                {"op": "work-done", "node": "n", "job_id": job_id,
                 "result": {"recovered": True}})
            status = await gw.handle_request({"op": "status",
                                              "job_id": job_id})
            assert status["state"] == "done"
            assert gw.metrics.to_json()[
                "repro_jobs_retried_total"] == 1
        drive(scenario())

    def test_crash_retries_exhausted_fails(self):
        async def scenario():
            gw = _gateway(max_retries=0)
            job_id = await self._leased_running(gw, value="doomed")
            await gw.handle_request(
                {"op": "work-fail", "node": "n", "job_id": job_id,
                 "kind": "crash", "error": "boom"})
            status = await gw.handle_request({"op": "status",
                                              "job_id": job_id})
            assert status["state"] == "failed"
            assert "retries exhausted" in status["error"]
        drive(scenario())

    def test_error_kind_is_not_retried(self):
        async def scenario():
            gw = _gateway(max_retries=5)
            job_id = await self._leased_running(gw, value="det")
            await gw.handle_request(
                {"op": "work-fail", "node": "n", "job_id": job_id,
                 "kind": "error", "error": "deterministic failure"})
            status = await gw.handle_request({"op": "status",
                                              "job_id": job_id})
            assert status["state"] == "failed"
            assert gw.metrics.to_json()["repro_jobs_retried_total"] == 0
        drive(scenario())

    def test_timeout_kind(self):
        async def scenario():
            gw = _gateway()
            job_id = await self._leased_running(gw, value="slow")
            await gw.handle_request(
                {"op": "work-fail", "node": "n", "job_id": job_id,
                 "kind": "timeout"})
            status = await gw.handle_request({"op": "status",
                                              "job_id": job_id})
            assert status["state"] == "timeout"
        drive(scenario())

    def test_stale_report_is_ignored(self):
        async def scenario():
            gw = _gateway()
            submitted = await _submit(gw, _probe(value="stale"))
            job_id = submitted["job_id"]
            # "other" never pulled or started this job
            done = await gw.handle_request(
                {"op": "work-done", "node": "other", "job_id": job_id,
                 "result": {"forged": True}})
            assert done["accepted"] is False
            status = await gw.handle_request({"op": "status",
                                              "job_id": job_id})
            assert status["state"] == "queued"
        drive(scenario())


class TestHeartbeat:
    def test_metrics_delta_merged_exactly_once(self, isolated_registry):
        async def scenario():
            gw = _gateway()
            delta = {"test_cluster_unique_total": {
                "kind": "counter", "help": "", "values": [[[], 5]]}}
            first = await gw.handle_request(
                {"op": "heartbeat", "node": "w0", "seq": 1,
                 "metrics": delta, "info": {"pid": 123}})
            assert first["merged"] is True and first["seq"] == 1
            # the worker never saw the ack and resends the same pair
            replay = await gw.handle_request(
                {"op": "heartbeat", "node": "w0", "seq": 1,
                 "metrics": delta})
            assert replay["merged"] is False
            counter = isolated_registry.counter(
                "test_cluster_unique_total")
            assert counter.total() == 5
            # a new sequence merges again
            second = await gw.handle_request(
                {"op": "heartbeat", "node": "w0", "seq": 2,
                 "metrics": delta})
            assert second["merged"] is True
            assert counter.total() == 10
        drive(scenario())

    def test_health_reports_cluster_topology(self):
        async def scenario():
            gw = _gateway()
            await gw.handle_request({"op": "heartbeat", "node": "w0",
                                     "seq": 1, "metrics": {},
                                     "info": {"pid": 42}})
            health = await gw.handle_request({"op": "health"})
            assert health["tier"] == "cluster"
            cluster = health["cluster"]
            assert cluster["ring"]["shards"] == ["local"]
            assert cluster["shards"]["local"]["alive"] is True
            w0 = cluster["worker_nodes"]["w0"]
            assert w0["alive"] and w0["info"] == {"pid": 42}
            assert cluster["workers_alive"] == 1
        drive(scenario())


class TestDeadNodeSweep:
    def test_unstarted_leases_requeue_running_jobs_retry(self):
        async def scenario():
            gw = _gateway(heartbeat_timeout=0.1, max_retries=3)
            for i in range(2):
                await _submit(gw, _probe(value=f"sweep-{i}"))
            pulled = await _pull(gw, "doomed", max_jobs=2)
            ids = [j["job_id"] for j in pulled["jobs"]]
            started = await gw.handle_request(
                {"op": "work-start", "node": "doomed", "job_id": ids[0]})
            assert started["granted"]

            gw._nodes["doomed"].last_seen -= 1.0  # silence the node
            gw._sweep_dead_nodes()
            assert "doomed" not in gw._nodes
            assert gw.metrics.to_json()[
                "repro_cluster_dead_nodes_total"] == 1
            # the running job took the crash-retry path, the unstarted
            # one went straight back in the queue: both are claimable
            pulled = await _pull(gw, "successor", max_jobs=2)
            assert sorted(j["job_id"] for j in pulled["jobs"]) \
                == sorted(ids)
            assert gw.metrics.to_json()["repro_jobs_retried_total"] == 1
            # late report from the dead node is a stale lease
            late = await gw.handle_request(
                {"op": "work-done", "node": "doomed", "job_id": ids[0],
                 "result": {"zombie": True}})
            assert late["accepted"] is False
        drive(scenario())

    def test_silent_idle_node_is_forgotten(self):
        async def scenario():
            gw = _gateway(heartbeat_timeout=0.1)
            await gw.handle_request({"op": "heartbeat", "node": "idle",
                                     "seq": 1, "metrics": {}})
            gw._nodes["idle"].last_seen -= 1.0
            gw._sweep_dead_nodes()
            assert "idle" not in gw._nodes
            assert gw.metrics.to_json()[
                "repro_cluster_dead_nodes_total"] == 0
        drive(scenario())


@pytest.fixture()
def make_gateway():
    gateways = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("local_workers", 2)
        kwargs.setdefault("inline", True)
        kwargs.setdefault("retry_backoff", 0.01)
        gateway = ClusterGateway(**kwargs)
        gateway.start_background()
        gateways.append(gateway)
        return gateway

    yield factory
    for gateway in gateways:
        gateway.stop()
        gateway.wait(timeout=10)


class TestEndToEnd:
    """Background gateway + embedded local workers + the sync client."""

    def test_submit_executes_and_caches(self, make_gateway):
        gateway = make_gateway()
        client = ServiceClient(*gateway.address)
        first = client.submit(_probe(value="e2e"), wait=True,
                              wait_timeout=10)
        assert first["state"] == "done"
        assert first["result"] == {"echo": "e2e"}
        assert not first["cached"]
        second = client.submit(_probe(value="e2e"), wait=True,
                               wait_timeout=10)
        assert second["state"] == "done" and second["cached"]

    def test_crash_once_is_retried_by_the_fleet_path(self, make_gateway,
                                                     tmp_path):
        gateway = make_gateway(local_workers=1)
        client = ServiceClient(*gateway.address)
        marker = tmp_path / "crash.marker"
        response = client.submit(_probe("crash-once", marker=str(marker)),
                                 wait=True, wait_timeout=15,
                                 max_retries=2)
        assert response["state"] == "done"
        assert response["result"] == {"recovered": True}
        assert response["attempts"] == 2
        metrics = client.metrics()["metrics"]
        assert metrics["repro_jobs_retried_total"] == 1

    def test_drain_finishes_accepted_jobs(self, make_gateway):
        """ISSUE satellite: `shutdown drain` loses no accepted job."""
        gateway = make_gateway(local_workers=2)
        client = ServiceClient(*gateway.address)
        accepted = [client.submit(_probe("sleep", seconds=0.3,
                                         tag=f"drain-{i}"), wait=False)
                    for i in range(4)]
        response = client.shutdown(drain=True, drain_timeout=10)
        assert response["ok"] and response["draining"]
        assert gateway.wait(timeout=15)
        for submitted in accepted:
            job = gateway._jobs[submitted["job_id"]]
            assert job.state == JobState.DONE, \
                f"job {job.id} lost in drain: {job.state}"

    def test_draining_rejects_new_submits(self, make_gateway):
        gateway = make_gateway(local_workers=1)
        client = ServiceClient(*gateway.address)
        client.submit(_probe("sleep", seconds=0.5, tag="inflight"),
                      wait=False)
        client.shutdown(drain=True, drain_timeout=10)
        deadline = time.monotonic() + 5
        rejected = False
        while time.monotonic() < deadline and not rejected:
            try:
                client.submit(_probe(value="late-arrival"), wait=False)
            except ServiceError as exc:
                assert exc.code in ("backpressure", "unreachable")
                rejected = True
        assert rejected
        assert gateway.wait(timeout=15)

    def test_uptime_and_metrics_export(self, make_gateway):
        gateway = make_gateway()
        client = ServiceClient(*gateway.address)
        client.submit(_probe(value="m"), wait=True, wait_timeout=10)
        metrics = client.metrics()["metrics"]
        assert metrics["repro_jobs_completed_total"] == \
            {'{state="done"}': 1}
        assert metrics["repro_job_latency_seconds"]["count"] == 1
        # uptime is refreshed on every metrics request
        assert metrics["repro_uptime_seconds"] > 0
        # cluster counters are present in the export even when zero
        # (embedded workers lease via _claim_jobs, not the pull op)
        assert "repro_cluster_pulls_total" in metrics
        assert "repro_cluster_steals_total" in metrics


class TestRegistryMergePath:
    def test_local_worker_merges_pipeline_metrics(self, make_gateway,
                                                  isolated_registry):
        # a benchmark job's pipeline observations (made in the worker)
        # surface in the gateway's merged metrics export
        gateway = make_gateway(local_workers=1)
        client = ServiceClient(*gateway.address)
        response = client.submit_benchmark("adm", config="none",
                                           wait=True, wait_timeout=60)
        assert response["state"] == "done"
        metrics = client.metrics()["metrics"]
        assert metrics["repro_loops_parallel_total"] > 0


def test_obs_metrics_module_is_shared():
    # the gateway merges worker deltas into the same default registry
    # the single-node daemon uses; guard the import identity
    from repro.service import metrics as service_metrics
    assert service_metrics.get_registry() is obs_metrics.get_registry()
