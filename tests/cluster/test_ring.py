"""Consistent-hash ring: determinism, balance, and the bounded-remap
property the cluster's cache tier depends on (ISSUE acceptance: adding a
shard remaps about 1/N of the cached keys, never the whole space)."""

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing, _point

KEYS = [f"digest-{i:05d}" for i in range(4000)]


class TestBasics:
    def test_empty_ring_routes_none(self):
        assert HashRing().node_for("anything") is None

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in KEYS[:100])

    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert [a.node_for(k) for k in KEYS[:500]] \
            == [b.node_for(k) for k in KEYS[:500]]

    def test_point_is_stable(self):
        # placement must agree across processes/machines: pure SHA-256,
        # no PYTHONHASHSEED dependence
        assert _point("s0#0") == _point("s0#0")
        assert _point("s0#0") != _point("s0#1")

    def test_membership_helpers(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]
        ring.add_node("a")  # idempotent
        assert len(ring) == 2
        ring.remove_node("missing")  # harmless
        assert len(ring) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)
        with pytest.raises(ValueError, match="non-empty"):
            HashRing().add_node("")


class TestBalance:
    def test_spread_is_roughly_even(self):
        ring = HashRing(["s0", "s1", "s2"], replicas=DEFAULT_REPLICAS)
        counts = ring.spread(KEYS)
        assert sum(counts.values()) == len(KEYS)
        mean = len(KEYS) / 3
        assert max(counts.values()) < mean * 1.6
        assert min(counts.values()) > mean * 0.4


class TestBoundedRemap:
    def test_adding_a_node_remaps_about_one_nth(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add_node("s4")
        moved = [k for k in KEYS if ring.node_for(k) != before[k]]
        # expected ~1/5 of the keys; allow generous slack but stay far
        # below the ~4/5 a naive hash(key) % N would remap
        assert len(moved) > 0
        assert len(moved) <= len(KEYS) * 0.35
        # keys only ever move TO the joining node
        assert all(ring.node_for(k) == "s4" for k in moved)

    def test_removing_a_node_restores_prior_ownership(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add_node("s4")
        ring.remove_node("s4")
        assert {k: ring.node_for(k) for k in KEYS} == before

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove_node("s2")
        for k in KEYS:
            if before[k] != "s2":
                assert ring.node_for(k) == before[k]
            else:
                assert ring.node_for(k) != "s2"
