"""Protocol compatibility (ISSUE satellite): the existing synchronous
``repro.service.client.ServiceClient`` must work unchanged against the
asyncio gateway — framing, dedup, cancel, oversize-error, the works.

Everything here talks to the gateway only through the public wire
surface PR 2 defined for the single-node daemon.
"""

import socket
import struct
import threading

import pytest

from repro.cluster.gateway import ClusterGateway
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


@pytest.fixture()
def gateway():
    gw = ClusterGateway(port=0, local_workers=2, inline=True,
                        retry_backoff=0.01)
    gw.start_background()
    yield gw
    gw.stop()
    gw.wait(timeout=10)


@pytest.fixture()
def client(gateway):
    return ServiceClient(*gateway.address)


class TestClientSurface:
    def test_health_speaks_the_single_node_shape(self, client):
        health = client.health()
        assert health["ok"]
        # every key the single-node daemon's health answer carries
        for key in ("uptime", "draining", "queue_depth",
                    "queue_capacity", "jobs_by_state", "cache_stats"):
            assert key in health, f"missing single-node health key {key}"
        assert health["tier"] == "cluster"

    def test_submit_status_result_flow(self, client):
        submitted = client.submit(_probe(value=7), wait=True,
                                  wait_timeout=10)
        assert submitted["ok"] and submitted["state"] == "done"
        assert submitted["result"] == {"echo": 7}
        job_id = submitted["job_id"]
        assert client.status(job_id)["state"] == "done"
        assert client.result(job_id)["result"] == {"echo": 7}

    def test_result_of_unfinished_job(self, client):
        submitted = client.submit(_probe("sleep", seconds=0.5),
                                  wait=False)
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["job_id"])
        assert excinfo.value.code in ("not-ready",)

    def test_cancel_flow(self, client):
        # saturate both embedded workers so the victim stays queued
        for i in range(2):
            client.submit(_probe("sleep", seconds=0.4, tag=f"busy-{i}"),
                          wait=False)
        victim = client.submit(_probe(value="victim"), wait=False)
        response = client.cancel(victim["job_id"])
        if response["canceled"]:
            assert client.status(victim["job_id"])["state"] == "canceled"
        else:
            # the fleet got to it first — still a valid protocol answer
            assert "not queued" in response["detail"]

    def test_concurrent_identical_submits_dedup(self, gateway, client):
        payload = _probe("sleep", seconds=0.3, tag="concurrent")
        responses = []

        def submit():
            c = ServiceClient(*gateway.address)
            responses.append(c.submit(payload, wait=True,
                                      wait_timeout=10))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert len(responses) == 2
        assert responses[0]["job_id"] == responses[1]["job_id"]
        metrics = client.metrics()["metrics"]
        assert metrics["repro_jobs_deduped_total"] >= 1
        assert metrics["repro_jobs_submitted_total"] == 1

    def test_metrics_formats(self, client):
        json_form = client.metrics()
        assert json_form["ok"]
        assert "repro_jobs_submitted_total" in json_form["metrics"]
        prom = client.metrics(format="prometheus")
        assert "# TYPE repro_jobs_submitted_total counter" in prom["text"]
        with pytest.raises(ServiceError):
            client.metrics(format="xml")

    def test_backpressure_over_the_wire(self):
        gw = ClusterGateway(port=0, local_workers=0, queue_capacity=1)
        gw.start_background()
        try:
            client = ServiceClient(*gw.address)
            client.submit(_probe(value="fills-queue"), wait=False)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(_probe(value="rejected"), wait=False)
            assert excinfo.value.code == "backpressure"
        finally:
            gw.stop()
            gw.wait(timeout=10)

    def test_shutdown_op_stops_gateway(self, gateway, client):
        response = client.shutdown()
        assert response["ok"] and response["stopping"]
        assert "_shutdown" not in response  # internal marker never leaks
        assert "_drain" not in response
        assert gateway.wait(timeout=10)
        assert not gateway.running


class TestFraming:
    def test_raw_frame_roundtrip(self, gateway):
        # bypass the client: hand-built length-prefixed frames
        with socket.create_connection(gateway.address, timeout=5) as sock:
            protocol.send_message(sock, {"op": "health"})
            response = protocol.recv_message(sock)
            assert response["ok"] and response["tier"] == "cluster"
            # multiple requests on one connection
            protocol.send_message(sock, {"op": "metrics"})
            assert protocol.recv_message(sock)["ok"]

    def test_garbage_frame_closes_connection(self, gateway):
        with socket.create_connection(gateway.address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", 12) + b"not-json-at!")
            # gateway drops the session instead of crashing
            assert sock.recv(1024) == b""
        # and keeps serving others
        assert ServiceClient(*gateway.address).health()["ok"]

    def test_oversize_frame_header_closes_connection(self, gateway):
        with socket.create_connection(gateway.address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
            assert sock.recv(1024) == b""
        assert ServiceClient(*gateway.address).health()["ok"]

    def test_oversize_response_answered_with_error(self, gateway,
                                                   client, monkeypatch):
        # a result that fits a frame at submit time but not after the
        # frame limit shrinks: the gateway answers with an oversize
        # error instead of silently dropping the connection
        big = client.submit(_probe(value="x" * 4096), wait=False)
        monkeypatch.setattr(protocol, "MAX_FRAME", 1024)
        with pytest.raises(ServiceError) as excinfo:
            client.result(big["job_id"], wait=True, wait_timeout=10)
        assert excinfo.value.code == "oversize"
        monkeypatch.undo()
        # the session survives: same client keeps working
        assert client.result(big["job_id"], wait=True,
                             wait_timeout=10)["ok"]
