"""Hypothesis properties over *executable* random programs.

These are the strongest guarantees in the suite: for randomly generated
Fortran kernels,

1. the normalization passes preserve semantics (full-memory comparison);
2. conventional inlining preserves semantics;
3. whatever the parallelizer marks parallel survives the three-way
   differential test (in-order and permuted parallel == serial);
4. unparse/reparse at any pipeline stage changes nothing.

The program generator produces a PROGRAM with COMMON arrays, bounded
loops, and subscripts constructed to stay in bounds, so every generated
program executes without faults.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.normalize import normalize_unit
from repro.fortran import ast
from repro.fortran.parser import parse_source
from repro.fortran.unparser import unparse
from repro.inlining import ConventionalInliner
from repro.polaris import Polaris
from repro.program import Program
from repro.runtime import INTEL_MAC, Interpreter, diff_test

ARRAYS = ["A", "B", "C"]  # all declared (64) in COMMON /D/
N = 8  # loop extents; subscripts stay within c1*N + c2 <= 64


@st.composite
def subscripts(draw, var: str):
    """In-bounds subscript over loop variable ``var``: c1*var + c2 with
    c1 in 0..2 (c1=0 -> constant) and c2 in 1..8."""
    c1 = draw(st.integers(0, 2))
    c2 = draw(st.integers(1, 8))
    if c1 == 0:
        return ast.IntLit(c2)
    base: ast.Expr = ast.Var(var) if c1 == 1 else ast.BinOp(
        "*", ast.IntLit(c1), ast.Var(var))
    return ast.BinOp("+", base, ast.IntLit(c2))


@st.composite
def rhs_exprs(draw, var: str, depth: int = 2):
    if depth <= 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return ast.RealLit(float(draw(st.integers(1, 9))) / 2.0)
        if choice == 1:
            return ast.Var(var)
        return ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                            (draw(subscripts(var)),))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return ast.BinOp(op, draw(rhs_exprs(var, depth - 1)),
                     draw(rhs_exprs(var, depth - 1)))


@st.composite
def loop_bodies(draw, var: str):
    body = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            # scalar temporary then use (privatization fodder)
            body.append(ast.Assign(ast.Var("T"),
                                   draw(rhs_exprs(var, 1))))
            body.append(ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                ast.BinOp("+", ast.Var("T"), draw(rhs_exprs(var, 0)))))
        elif kind == 1:
            body.append(ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                draw(rhs_exprs(var, 2))))
        elif kind == 2:
            # reduction fodder
            body.append(ast.Assign(
                ast.Var("S"),
                ast.BinOp("+", ast.Var("S"), draw(rhs_exprs(var, 1)))))
        else:
            cond = ast.BinOp(">", draw(rhs_exprs(var, 1)),
                             ast.RealLit(2.0))
            body.append(ast.IfBlock([(cond, [ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                draw(rhs_exprs(var, 1)))])]))
    return body


@st.composite
def induction_loops(draw):
    """A loop with the I = I + c induction idiom, for the normalize
    property."""
    var = "J"
    amount = draw(st.integers(1, 3))
    writes = [
        ast.Assign(ast.Var("K"), ast.BinOp("+", ast.Var("K"),
                                           ast.IntLit(amount))),
        ast.Assign(ast.ArrayRef("A", (ast.Var("K"),)),
                   draw(rhs_exprs(var, 1))),
    ]
    if draw(st.booleans()):
        writes.reverse()
    loop = ast.DoLoop(var, ast.IntLit(1), ast.IntLit(draw(
        st.integers(2, 6))), None, writes)
    # K starts >= 1: the A(K) write may precede the first increment
    return [ast.Assign(ast.Var("K"), ast.IntLit(draw(st.integers(1, 4)))),
            loop]


@st.composite
def programs(draw, with_induction: bool = False):
    body = [
        # deterministic initialization of the shared state
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(64), None, [
            ast.Assign(ast.ArrayRef("A", (ast.Var("I"),)),
                       ast.BinOp("*", ast.Var("I"), ast.RealLit(0.5))),
            ast.Assign(ast.ArrayRef("B", (ast.Var("I"),)),
                       ast.BinOp("+", ast.Var("I"), ast.RealLit(1.0))),
            ast.Assign(ast.ArrayRef("C", (ast.Var("I"),)),
                       ast.RealLit(0.0)),
        ]),
        ast.Assign(ast.Var("S"), ast.RealLit(0.0)),
        ast.Assign(ast.Var("T"), ast.RealLit(0.0)),
    ]
    if with_induction:
        body.extend(draw(induction_loops()))
    nloops = draw(st.integers(1, 3))
    for k in range(nloops):
        var = "I"
        body.append(ast.DoLoop(var, ast.IntLit(1), ast.IntLit(N), None,
                               draw(loop_bodies(var))))
    decls = [ast.CommonDecl("D", [
        ast.Entity("A", (ast.Dim.upto(ast.IntLit(64)),)),
        ast.Entity("B", (ast.Dim.upto(ast.IntLit(64)),)),
        ast.Entity("C", (ast.Dim.upto(ast.IntLit(64)),)),
        ast.Entity("S"), ast.Entity("T"), ast.Entity("K"),
    ])]
    unit = ast.ProgramUnit("PROGRAM", "P", [], decls, body)
    return Program([ast.SourceFile([unit], "gen.f")], "generated")


def run_memory(program: Program):
    return Interpreter(program, honor_directives=False).run()


@given(programs(with_induction=True))
@settings(max_examples=40, deadline=None)
def test_normalization_preserves_semantics(program):
    before = run_memory(program)
    unit = program.units[0]
    normalize_unit(unit)
    program.invalidate()
    after = run_memory(program)
    assert before.memory_equal(after)


@given(programs())
@settings(max_examples=30, deadline=None)
def test_parallelization_is_sound(program):
    Polaris().run(program)
    result = diff_test(program, INTEL_MAC)
    assert result.passed, result.explain()


@given(programs(with_induction=True))
@settings(max_examples=25, deadline=None)
def test_unparse_reparse_preserves_semantics(program):
    before = run_memory(program)
    text = unparse(program.files[0])
    reparsed = Program.from_source(text)
    after = run_memory(reparsed)
    assert before.memory_equal(after)


# ---------------------------------------------------------------------------
# conventional inlining preserves semantics
# ---------------------------------------------------------------------------

@st.composite
def callee_programs(draw):
    """A driver loop invoking a generated leaf subroutine with scalar,
    whole-array and array-element actuals."""
    callee_body = draw(loop_bodies("K"))
    # wrap accesses: the callee works on its formal V (assumed size) and
    # a scalar formal X
    def remap(e: ast.Expr):
        if isinstance(e, ast.ArrayRef) and e.name in ("B", "C"):
            return ast.ArrayRef("V", e.subs)
        if isinstance(e, ast.Var) and e.name == "T":
            return ast.Var("X")
        return None
    callee_body = ast.map_stmt_exprs(ast.clone(callee_body), remap)
    callee_body = [ast.Assign(ast.Var("S"), ast.RealLit(0.0))] \
        + callee_body
    callee = ast.ProgramUnit(
        "SUBROUTINE", "WORK", ["V", "X", "K"],
        [ast.DimensionDecl([ast.Entity("V", (ast.Dim(ast.IntLit(1),
                                                     None),))]),
         ast.CommonDecl("D", [
             ast.Entity("A", (ast.Dim.upto(ast.IntLit(64)),)),
             ast.Entity("S")])],
        callee_body)

    offset = draw(st.integers(1, 16))
    actual = draw(st.sampled_from(["whole", "element"]))
    arg0 = ast.Var("A") if actual == "whole" else \
        ast.ArrayRef("A", (ast.IntLit(offset),))
    main_body = [
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(64), None, [
            ast.Assign(ast.ArrayRef("A", (ast.Var("I"),)),
                       ast.BinOp("*", ast.Var("I"), ast.RealLit(0.25)))]),
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.CallStmt("WORK", (ast.clone(arg0),
                                  ast.RealLit(
                                      float(draw(st.integers(1, 5)))),
                                  ast.Var("I")))]),
    ]
    main = ast.ProgramUnit(
        "PROGRAM", "P", [],
        [ast.CommonDecl("D", [
            ast.Entity("A", (ast.Dim.upto(ast.IntLit(64)),)),
            ast.Entity("S")])],
        main_body)
    return Program([ast.SourceFile([main, callee], "gen.f")], "generated")


@given(callee_programs())
@settings(max_examples=30, deadline=None)
def test_conventional_inlining_preserves_semantics(program):
    before = run_memory(program)
    result = ConventionalInliner().run(program)
    after = run_memory(program)
    assert before.memory_equal(after), \
        f"inlining changed semantics (inlined {result.inlined_count})"
    # and the inlined program still unparses/reparses cleanly
    text = "".join(program.unparse().values())
    assert run_memory(Program.from_source(text)).memory_equal(before)
