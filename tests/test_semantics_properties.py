"""Hypothesis properties over *executable* random programs.

These are the strongest guarantees in the suite: for randomly generated
Fortran kernels,

1. the normalization passes preserve semantics (full-memory comparison);
2. conventional inlining preserves semantics;
3. whatever the parallelizer marks parallel survives the three-way
   differential test (in-order and permuted parallel == serial);
4. unparse/reparse at any pipeline stage changes nothing.

The program strategies live in :mod:`tests.strategies`, built on the
shared program-building primitives of :mod:`repro.fuzz.generator`:
a PROGRAM with COMMON arrays, bounded loops, and subscripts constructed
to stay in bounds, so every generated program executes without faults.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.analysis.normalize import normalize_unit
from repro.fortran.unparser import unparse
from repro.inlining import ConventionalInliner
from repro.polaris import Polaris
from repro.program import Program
from repro.runtime import INTEL_MAC, Interpreter, diff_test
from tests.strategies import callee_programs, programs


def run_memory(program: Program):
    return Interpreter(program, honor_directives=False).run()


@given(programs(with_induction=True))
@settings(max_examples=40, deadline=None)
def test_normalization_preserves_semantics(program):
    before = run_memory(program)
    unit = program.units[0]
    normalize_unit(unit)
    program.invalidate()
    after = run_memory(program)
    assert before.memory_equal(after)


@given(programs())
@settings(max_examples=30, deadline=None)
def test_parallelization_is_sound(program):
    Polaris().run(program)
    result = diff_test(program, INTEL_MAC)
    assert result.passed, result.explain()


@given(programs(with_induction=True))
@settings(max_examples=25, deadline=None)
def test_unparse_reparse_preserves_semantics(program):
    before = run_memory(program)
    text = unparse(program.files[0])
    reparsed = Program.from_source(text)
    after = run_memory(reparsed)
    assert before.memory_equal(after)


# ---------------------------------------------------------------------------
# conventional inlining preserves semantics
# ---------------------------------------------------------------------------


@given(callee_programs())
@settings(max_examples=30, deadline=None)
def test_conventional_inlining_preserves_semantics(program):
    before = run_memory(program)
    result = ConventionalInliner().run(program)
    after = run_memory(program)
    assert before.memory_equal(after), \
        f"inlining changed semantics (inlined {result.inlined_count})"
    # and the inlined program still unparses/reparses cleanly
    text = "".join(program.unparse().values())
    assert run_memory(Program.from_source(text)).memory_equal(before)
