"""Tests for the conventional inliner: heuristics, binding, pathologies."""

import pytest

from repro.analysis.callgraph import build_callgraph
from repro.fortran import ast
from repro.fortran.unparser import unparse
from repro.inlining import ConventionalInliner, InlinePolicy
from repro.polaris import Polaris
from repro.polaris.openmp import parallel_loops
from repro.program import Program


def inline(src, **policy):
    prog = Program.from_source(src)
    result = ConventionalInliner(InlinePolicy(**policy)).run(prog)
    return prog, result


class TestHeuristics:
    def check(self, src, callee, in_loop=True, **policy):
        prog = Program.from_source(src)
        graph = build_callgraph(prog)
        return InlinePolicy(**policy).rejection_reason(
            prog, graph, callee, in_loop)

    LEAF = ("      SUBROUTINE MAIN\n"
            "      CALL LEAF(1)\n"
            "      END\n"
            "      SUBROUTINE LEAF(I)\n"
            "      J = I\n"
            "      END\n")

    def test_accepts_simple_leaf(self):
        assert self.check(self.LEAF, "LEAF") is None

    def test_rejects_outside_loop(self):
        assert self.check(self.LEAF, "LEAF", in_loop=False) == "not-in-loop"

    def test_rejects_external(self):
        assert self.check(self.LEAF, "MYSTERY") == "no-source"

    def test_rejects_recursive(self):
        src = ("      SUBROUTINE R(N)\n"
               "      IF (N.GT.0) CALL R(N-1)\n"
               "      END\n")
        assert self.check(src, "R") == "recursive"

    def test_rejects_io(self):
        src = ("      SUBROUTINE NOISY(I)\n"
               "      WRITE(6,*) I\n"
               "      END\n")
        assert self.check(src, "NOISY") == "io"

    def test_rejects_caller_of_others(self):
        # the FSMP exclusion: compositional subroutines are left out
        src = ("      SUBROUTINE FSMP(ID)\n"
               "      CALL GETCR(ID)\n"
               "      END\n"
               "      SUBROUTINE GETCR(ID)\n"
               "      J = ID\n"
               "      END\n")
        assert self.check(src, "FSMP") == "makes-calls"
        assert self.check(src, "GETCR") is None

    def test_rejects_too_large(self):
        stmts = "".join(f"      X{i} = {i}\n" for i in range(160))
        src = "      SUBROUTINE BIG(I)\n" + stmts + "      END\n"
        assert self.check(src, "BIG") == "too-large"
        assert self.check(src, "BIG", max_statements=500) is None

    def test_rejects_mid_return(self):
        src = ("      SUBROUTINE MR(I)\n"
               "      IF (I.GT.0) RETURN\n"
               "      I = 1\n"
               "      END\n")
        assert self.check(src, "MR") == "mid-return"

    def test_trailing_return_ok(self):
        src = ("      SUBROUTINE TR(I)\n"
               "      I = 1\n"
               "      RETURN\n"
               "      END\n")
        assert self.check(src, "TR") is None


SIMPLE = (
    "      SUBROUTINE DRIVER(A, N)\n"
    "      DIMENSION A(*)\n"
    "      DO 10 I = 1, N\n"
    "        CALL SCALE(A, I, 2.0)\n"
    "   10 CONTINUE\n"
    "      END\n"
    "      SUBROUTINE SCALE(V, K, F)\n"
    "      DIMENSION V(*)\n"
    "      T = V(K)\n"
    "      V(K) = T*F\n"
    "      END\n")


class TestExpansion:
    def test_call_replaced(self):
        prog, result = inline(SIMPLE)
        assert result.inlined_count == 1
        driver = prog.unit("DRIVER")
        calls = [s for s in ast.walk_stmts(driver.body)
                 if isinstance(s, ast.CallStmt)]
        assert calls == []

    def test_locals_renamed(self):
        prog, _ = inline(SIMPLE)
        text = unparse(prog.unit("DRIVER"))
        assert "T$I1" in text

    def test_temp_copy_in_for_expression_actual(self):
        prog, _ = inline(SIMPLE)
        text = unparse(prog.unit("DRIVER"))
        assert "F$A1 = 2.0" in text

    def test_scalar_formal_bound_by_name(self):
        prog, _ = inline(SIMPLE)
        driver = prog.unit("DRIVER")
        # V(K) -> A(I): subscripts flow through scalar binding
        writes = [s for s in ast.walk_stmts(driver.body)
                  if isinstance(s, ast.Assign)
                  and isinstance(s.target, ast.ArrayRef)]
        assert writes[0].target == ast.ArrayRef("A", (ast.Var("I"),))

    def test_callee_unit_unchanged(self):
        prog, _ = inline(SIMPLE)
        scale = prog.unit("SCALE")
        assert any(isinstance(s, ast.Assign) for s in scale.body)

    def test_code_size_grows(self):
        prog0 = Program.from_source(SIMPLE)
        prog, _ = inline(SIMPLE)
        assert prog.total_lines() > prog0.total_lines()

    def test_inlined_loops_keep_origin(self):
        src = ("      SUBROUTINE DRIVER(A, N)\n"
               "      DIMENSION A(100,8)\n"
               "      DO 10 I = 1, N\n"
               "        CALL ZERO(A(1,I), 100)\n"
               "   10 CONTINUE\n"
               "      END\n"
               "      SUBROUTINE ZERO(V, M)\n"
               "      DIMENSION V(*)\n"
               "      DO 20 J = 1, M\n"
               "        V(J) = 0.0\n"
               "   20 CONTINUE\n"
               "      END\n")
        prog = Program.from_source(src)
        from repro.analysis.loops import assign_origins, iter_loops
        for u in prog.units:
            assign_origins(u)
        ConventionalInliner().run(prog)
        driver = prog.unit("DRIVER")
        inner = [i for i in iter_loops(driver.body)
                 if i.loop.var.startswith("J")]
        assert inner and inner[0].origin == "ZERO:0"
        assert inner[0].loop.var == "J$I1"  # renamed site-uniquely

    def test_labels_renumbered_no_clash(self):
        src = ("      SUBROUTINE DRIVER(A, N)\n"
               "      DIMENSION A(100,8)\n"
               "      DO 10 I = 1, N\n"
               "        CALL ZERO(A(1,I), 100)\n"
               "   10 CONTINUE\n"
               "      END\n"
               "      SUBROUTINE ZERO(V, M)\n"
               "      DIMENSION V(*)\n"
               "      DO 10 J = 1, M\n"
               "        V(J) = 0.0\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog, result = inline(src)
        assert result.inlined_count == 1
        # reparse the unparsed output: label collisions would break it
        text = unparse(prog.unit("DRIVER"))
        reparsed = Program.from_source(text)
        assert reparsed.units[0].name == "DRIVER"


class TestFigure23Pathology:
    SRC = (
        "      PROGRAM MAIN\n"
        "      COMMON /BLK/ T(100000), IX(64)\n"
        "      DO 5 KS = 1, 10\n"
        "        CALL PCINIT(T(IX(7)+1), T(IX(8)+1), 16)\n"
        "    5 CONTINUE\n"
        "      END\n"
        "      SUBROUTINE PCINIT(X2, Y2, NSP)\n"
        "      DIMENSION X2(*), Y2(*)\n"
        "      COMMON /BLK2/ FX(1000), FY(1000)\n"
        "      DO 200 J = 1, NSP\n"
        "        X2(J) = FX(J)*2.0\n"
        "        Y2(J) = FY(J)*2.0\n"
        "  200 CONTINUE\n"
        "      END\n")

    def test_subscripted_subscripts_created(self):
        prog, result = inline(self.SRC)
        assert result.inlined_count == 1
        text = unparse(prog.unit("MAIN"))
        assert "T(IX(7)+1+(J$I1-1))" in text.replace(" ", "")

    def test_parallelism_lost_after_inlining(self):
        # before inlining: PCINIT's loop parallelizes (distinct formals)
        base = Program.from_source(self.SRC)
        from repro.analysis.loops import assign_origins
        for u in base.units:
            assign_origins(u)
        conv = base.clone()

        rep_base = Polaris().run(base)
        assert any(v.parallelized and v.unit == "PCINIT"
                   for v in rep_base.verdicts)

        ConventionalInliner().run(conv)
        rep_conv = Polaris().run(conv)
        # the PCINIT loop origin is parallelized in the baseline but the
        # inlined copy in MAIN is not (T(IX(7)+J) vs T(IX(8)+J) conflict)
        pcinit_origin = next(o for o in rep_base.parallel_origins()
                             if o.startswith("PCINIT"))
        main_copy = [v for v in rep_conv.verdicts
                     if v.origin == pcinit_origin and v.unit == "MAIN"]
        assert main_copy and not main_copy[0].parallelized


class TestFigure45Pathology:
    SRC = (
        "      SUBROUTINE STEP(PP, TM1, N1, NS)\n"
        "      DIMENSION PP(N1,N1,NS), TM1(N1,N1)\n"
        "      DO 15 KS = 2, NS\n"
        "        CALL MATMLT(PP(1,1,KS-1), TM1(1,1), N1*N1)\n"
        "   15 CONTINUE\n"
        "      DO 25 J = 1, N1\n"
        "        DO 24 I = 1, N1\n"
        "          TM1(I,J) = 0.0\n"
        "   24   CONTINUE\n"
        "   25 CONTINUE\n"
        "      END\n"
        "      SUBROUTINE MATMLT(M1, M3, L)\n"
        "      DIMENSION M1(L), M3(L)\n"
        "      DO 22 K = 1, L\n"
        "        M3(K) = M1(K)\n"
        "   22 CONTINUE\n"
        "      END\n")

    def test_caller_arrays_linearized(self):
        prog, result = inline(self.SRC)
        assert result.inlined_count == 1
        step = prog.unit("STEP")
        table = prog.symtab(step)
        assert len(table.info("PP").dims) == 1
        assert len(table.info("TM1").dims) == 1
        # unrelated loop's reference was rewritten through the formula
        text = unparse(step).replace(" ", "")
        assert "TM1(I-1+(J-1)*N1+1)" in text

    def test_unrelated_loop_loses_parallelism(self):
        base = Program.from_source(self.SRC)
        from repro.analysis.loops import assign_origins
        for u in base.units:
            assign_origins(u)
        conv = base.clone()
        rep_base = Polaris().run(base)
        ConventionalInliner().run(conv)
        rep_conv = Polaris().run(conv)
        # the J/I zeroing nest parallelizes before, not after (N1*(J-1)
        # products are non-affine)
        assert len(rep_base.parallel_origins()
                   - rep_conv.parallel_origins()) >= 1


class TestBindingDeclined:
    def test_common_mismatch_declines(self):
        src = ("      SUBROUTINE A\n"
               "      COMMON /B/ X(10), Y(10)\n"
               "      DO 1 I = 1, 5\n"
               "        CALL C(I)\n"
               "    1 CONTINUE\n"
               "      END\n"
               "      SUBROUTINE C(I)\n"
               "      COMMON /B/ X(10), Z(5), W(5)\n"
               "      X(I) = 0.0\n"
               "      END\n")
        prog, result = inline(src)
        assert result.inlined_count == 0
        assert "binding" in result.sites[0].reason
