"""Demand-driven inlining tests: annotation summaries pulled in at
opaque call sites mid-analysis, body inlining as the fallback, combined
refusal reasons, and the driver integration (retry + reverse)."""

from repro.annotations import ReverseInliner
from repro.annotations.infer import infer_annotations
from repro.experiments.pipeline import Config, run_config
from repro.inlining.demand import DemandInliner
from repro.perfect.suite import Benchmark
from repro.polaris import Polaris
from repro.program import Program
from repro.trace import SiteDecision, Tracer

LEAF_CALL_IN_LOOP = """\
      SUBROUTINE SCALE(N, A, X)
      INTEGER N, I
      REAL A, X(N)
      DO 10 I = 1, N
         X(I) = A * X(I)
 10   CONTINUE
      END

      PROGRAM MAIN
      INTEGER J
      REAL A(16, 16)
      DO 20 J = 1, 16
         CALL SCALE(16, 2.0, A(1, J))
 20   CONTINUE
      WRITE(6,*) A(3, 3)
      END
"""

# COPYR declares the COMMON block the caller also passes as an actual
# argument: inference refuses (alias hazard) but conventional body
# inlining handles it, so demand resolution falls through to the body.
ALIASED_CALL_IN_LOOP = """\
      SUBROUTINE COPYR(N, J, SRC, A)
      INTEGER N, J, I
      REAL SRC(16), A(16, 16)
      REAL B(16)
      COMMON /WS/ B
      DO 10 I = 1, N
         A(I, J) = SRC(I) + B(1)
 10   CONTINUE
      END

      PROGRAM MAIN
      REAL B(16)
      COMMON /WS/ B
      REAL A(16, 16)
      INTEGER J, K
      DO 5 K = 1, 16
         B(K) = K
 5    CONTINUE
      DO 20 J = 1, 16
         CALL COPYR(16, J, B, A)
 20   CONTINUE
      WRITE(6,*) A(3, 3)
      END
"""

RECURSIVE_CALL_IN_LOOP = """\
      SUBROUTINE RECUR(N, X)
      INTEGER N
      REAL X(16)
      IF (N .GT. 0) THEN
         X(N) = 0.0
         CALL RECUR(N - 1, X)
      END IF
      END

      PROGRAM MAIN
      INTEGER J
      REAL A(16, 16)
      DO 20 J = 1, 16
         CALL RECUR(16, A(1, J))
 20   CONTINUE
      WRITE(6,*) A(3, 3)
      END
"""


def _program(source: str) -> Program:
    return Program.from_sources({"t.f": source}, "test")


def _demand_run(source: str):
    program = _program(source)
    inference = infer_annotations(program)
    demand = DemandInliner(inference.registry(), inference=inference)
    report = Polaris(demand=demand).run(program)
    return program, demand, report


def _parallel_vars(report):
    return {(v.unit, v.var) for v in report.verdicts if v.parallelized}


class TestAnnotationOnDemand:
    def test_opaque_call_resolved_and_loop_parallelized(self):
        program, demand, report = _demand_run(LEAF_CALL_IN_LOOP)
        assert ("MAIN", "J") in _parallel_vars(report)
        actions = [(d.action, d.callee, d.source) for d in demand.decisions]
        assert ("annotation", "SCALE", "inferred") in actions

    def test_reverse_restores_the_call(self):
        program, demand, report = _demand_run(LEAF_CALL_IN_LOOP)
        ReverseInliner(demand.registry).run(program)
        text = "".join(program.unparse().values())
        assert "CALL SCALE" in text

    def test_hand_names_attribute_source(self):
        program = _program(LEAF_CALL_IN_LOOP)
        inference = infer_annotations(program)
        demand = DemandInliner(inference.registry(), inference=inference,
                               hand_names=frozenset({"SCALE"}))
        Polaris(demand=demand).run(program)
        assert any(d.action == "annotation" and d.source == "hand"
                   for d in demand.decisions)

    def test_resolution_attempted_once_per_loop_and_callee(self):
        program, demand, report = _demand_run(LEAF_CALL_IN_LOOP)
        unit = next(u for u in program.units if u.name == "MAIN")
        from repro.fortran import ast
        loops = [s for s in ast.walk_stmts(unit.body)
                 if isinstance(s, (ast.DoLoop, ast.OmpParallelDo))]
        loop = loops[0].loop if isinstance(loops[0], ast.OmpParallelDo) \
            else loops[0]
        demand.resolve(program, unit, loop, "SCALE")
        decisions_after_first = len(demand.decisions)
        # same (loop, callee) again: deduped, no new decision recorded
        assert demand.resolve(program, unit, loop, "SCALE") is False
        assert len(demand.decisions) == decisions_after_first


class TestBodyOnDemand:
    def test_alias_hazard_falls_through_to_body_inline(self):
        program, demand, report = _demand_run(ALIASED_CALL_IN_LOOP)
        assert any(d.action == "body" and d.callee == "COPYR"
                   for d in demand.decisions)
        assert ("MAIN", "J") in _parallel_vars(report)

    def test_recursive_callee_records_combined_fallback(self):
        program, demand, report = _demand_run(RECURSIVE_CALL_IN_LOOP)
        falls = [d for d in demand.decisions
                 if d.action == "fallback" and d.callee == "RECUR"]
        assert falls
        assert "calls other procedures" in falls[0].reason
        assert "body:" in falls[0].reason
        assert ("MAIN", "J") not in _parallel_vars(report)


class TestPipelineDemandMode:
    def test_demand_config_parallelizes_and_traces(self):
        bench = Benchmark(name="demandtoy", description="demand toy",
                          sources={"t.f": LEAF_CALL_IN_LOOP})
        tracer = Tracer(label="test")
        result = run_config(bench,
                            Config("annotation", annotations="demand"),
                            tracer=tracer)
        assert result.annotations == "demand"
        assert result.parallel_origins()
        sites = [d for d in tracer.site_decisions
                 if d.action == "annotation"]
        assert sites and sites[0].benchmark == "demandtoy"
        assert sites[0].config == "annotation"
        # demand restores calls through the shared reverse inliner
        text = "".join(result.program.unparse().values())
        assert "CALL SCALE" in text

    def test_hand_annotations_win_in_demand_mode(self):
        program = _program(LEAF_CALL_IN_LOOP)
        hand = infer_annotations(program).registry()
        bench = Benchmark(name="demandtoy2", description="demand toy",
                          sources={"t.f": LEAF_CALL_IN_LOOP})
        merged = infer_annotations(program, hand=hand)
        assert merged.outcomes["SCALE"].source == "hand"


class TestSiteDecisionRoundtrip:
    def test_to_from_dict(self):
        d = SiteDecision("MAIN", "SCALE", 3, "annotation",
                         source="inferred", reason="", benchmark="toy",
                         config="annotation")
        assert SiteDecision.from_dict(d.to_dict()) == d

    def test_tracer_merge_carries_site_decisions(self):
        a = Tracer(label="a")
        a.site(SiteDecision("MAIN", "SCALE", 1, "annotation",
                            source="hand"))
        b = Tracer(label="b")
        b.merge(a.export())
        assert len(b.site_decisions) == 1
        assert b.site_decisions[0].callee == "SCALE"

    def test_merge_tolerates_legacy_exports_without_sites(self):
        a = Tracer(label="a")
        exported = a.export()
        exported.pop("site_decisions", None)
        b = Tracer(label="b")
        b.merge(exported)
        assert b.site_decisions == []
