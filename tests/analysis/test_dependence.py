"""Unit + property tests for the dependence tester.

The property test is the soundness oracle: whenever the tester reports
*independent* (False), a brute-force enumeration over the concrete
iteration space must find no conflicting pair.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import AffineForm, extract
from repro.analysis.dependence import DependenceTester, LoopCtx
from repro.analysis.symbolic import Poly, from_expr
from repro.fortran.parser import parse_expression as pe


def affine(text, indices):
    f = extract(pe(text), indices)
    assert f is not None, text
    return f


def may_depend_1d(a_text, b_text, loops, dirs, **kw):
    t = DependenceTester(**kw)
    return t.may_depend([affine(a_text, [lp.var for lp in loops])],
                        [affine(b_text, [lp.var for lp in loops])],
                        loops, dirs)


I10 = [LoopCtx("I", 1, 10)]


class TestZIV:
    def test_distinct_constants_independent(self):
        assert not may_depend_1d("3", "4", I10, {"I": "<"})

    def test_same_constant_dependent(self):
        assert may_depend_1d("3", "3", I10, {"I": "<"})

    def test_equal_symbolic_invariants_dependent(self):
        assert may_depend_1d("K1", "K1", I10, {"I": "<"})

    def test_distinct_symbolic_invariants_assumed_dependent(self):
        # IX(7) vs IX(8): unknown difference => conservative
        assert may_depend_1d("IX(7)", "IX(8)", I10, {"I": "<"})


class TestSIV:
    def test_identical_subscript_not_carried(self):
        # A(I) vs A(I) under '<': i' = i is impossible, independent
        assert not may_depend_1d("I", "I", I10, {"I": "<"})

    def test_identical_subscript_same_iteration(self):
        assert may_depend_1d("I", "I", I10, {"I": "="})

    def test_shifted_carried(self):
        # A(I) vs A(I-1): distance 1 dependence
        assert may_depend_1d("I", "I-1", I10, {"I": "<"})

    def test_shift_beyond_range_independent(self):
        assert not may_depend_1d("I", "I-100", I10, {"I": "<"})

    def test_gcd_disproof(self):
        # 2I vs 2I'+1: parity mismatch
        assert not may_depend_1d("2*I", "2*I+1", I10, {"I": "*"})

    def test_gcd_only_mode(self):
        t = may_depend_1d("2*I", "2*I+1", I10, {"I": "*"},
                          use_banerjee=False)
        assert not t

    def test_banerjee_needed(self):
        # I vs I+10 in [1,5]: gcd passes (g=1), only bounds disprove
        loops = [LoopCtx("I", 1, 5)]
        assert not may_depend_1d("I", "I+10", loops, {"I": "*"})
        assert may_depend_1d("I", "I+10", loops, {"I": "*"},
                             use_banerjee=False)

    def test_symbolic_offset_assumed_dependent(self):
        assert may_depend_1d("I", "I+NOFF", I10, {"I": "<"})

    def test_same_symbolic_base_cancels(self):
        # T(IX(7)+I) vs T(IX(7)+I): symbolic bases cancel, no carried dep
        assert not may_depend_1d("IX(7)+I", "IX(7)+I", I10, {"I": "<"})

    def test_different_symbolic_base_dependent(self):
        assert may_depend_1d("IX(7)+I", "IX(8)+I", I10, {"I": "<"})

    def test_unknown_bounds_conservative(self):
        loops = [LoopCtx("I", 1, None)]
        assert may_depend_1d("I", "I-1", loops, {"I": "<"})
        assert not may_depend_1d("I", "I", loops, {"I": "<"})

    def test_unique_linear_combination(self):
        # RHSB(257*ID+I) where ID is invariant: independent across I
        loops = [LoopCtx("I", 1, 16)]
        assert not may_depend_1d("257*ID+I", "257*ID+I", loops, {"I": "<"})


class TestMultiDim:
    def test_second_dimension_disproof(self):
        # FE(J, IDE) with IDE == K (column per iteration): K-carried test
        loops = [LoopCtx("K", 1, 50), LoopCtx("J", 1, 8)]
        t = DependenceTester()
        a = [affine("J", ["K", "J"]), affine("K", ["K", "J"])]
        assert not t.may_depend(a, a, loops, {"K": "<", "J": "*"})

    def test_nonaffine_dimension_ignored(self):
        loops = [LoopCtx("I", 1, 10)]
        t = DependenceTester()
        a = [None, affine("I", ["I"])]
        b = [None, affine("I+20", ["I"])]
        assert not t.may_depend(a, b, loops, {"I": "*"})

    def test_all_nonaffine_assumed(self):
        loops = [LoopCtx("I", 1, 10)]
        t = DependenceTester()
        assert t.may_depend([None], [None], loops, {"I": "<"})

    def test_rank_mismatch_assumed(self):
        loops = [LoopCtx("I", 1, 10)]
        t = DependenceTester()
        a = [affine("I", ["I"])]
        b = [affine("I", ["I"]), affine("1", ["I"])]
        assert t.may_depend(a, b, loops, {"I": "<"})

    def test_stats_recorded(self):
        t = DependenceTester()
        a = [affine("I", ["I"])]
        t.may_depend(a, a, I10, {"I": "<"})
        assert (t.stats.banerjee_independent + t.stats.gcd_independent
                + t.stats.ziv_independent) == 1


# ---------------------------------------------------------------------------
# soundness property: tester-independent implies brute-force-independent
# ---------------------------------------------------------------------------

@st.composite
def affine_pair(draw):
    """Two affine subscripts over loops I (and sometimes J) with small
    known bounds, plus a direction constraint."""
    two_loops = draw(st.booleans())
    loops = [LoopCtx("I", 1, draw(st.integers(1, 6)))]
    if two_loops:
        loops.append(LoopCtx("J", 1, draw(st.integers(1, 4))))
    coeffs = st.integers(-4, 4)
    consts = st.integers(-10, 10)

    def form():
        c = {lp.var: draw(coeffs) for lp in loops}
        return AffineForm(c, Poly.const(draw(consts)))

    fa, fb = form(), form()
    dirs = {lp.var: draw(st.sampled_from(["=", "<", "*"])) for lp in loops}
    return fa, fb, loops, dirs


def brute_force_dependent(fa, fb, loops, dirs):
    ranges = [range(lp.lower, lp.upper + 1) for lp in loops]
    for iv in itertools.product(*ranges):
        for jv in itertools.product(*ranges):
            ok = True
            for lp, a, b in zip(loops, iv, jv):
                d = dirs[lp.var]
                if d == "=" and a != b:
                    ok = False
                elif d == "<" and not a < b:
                    ok = False
            if not ok:
                continue
            va = sum(fa.coeff(lp.var) * x for lp, x in zip(loops, iv)) \
                + fa.remainder.constant_value()
            vb = sum(fb.coeff(lp.var) * x for lp, x in zip(loops, jv)) \
                + fb.remainder.constant_value()
            if va == vb:
                return True
    return False


@given(affine_pair())
@settings(max_examples=300, deadline=None)
def test_soundness_against_brute_force(case):
    fa, fb, loops, dirs = case
    tester = DependenceTester()
    if not tester.may_depend([fa], [fb], loops, dirs):
        assert not brute_force_dependent(fa, fb, loops, dirs), \
            f"tester claimed independence but {fa} vs {fb} conflict " \
            f"under {dirs}"


@given(affine_pair())
@settings(max_examples=150, deadline=None)
def test_gcd_only_weaker_but_sound(case):
    fa, fb, loops, dirs = case
    full = DependenceTester(use_banerjee=True)
    gcd_only = DependenceTester(use_banerjee=False)
    full_dep = full.may_depend([fa], [fb], loops, dirs)
    gcd_dep = gcd_only.may_depend([fa], [fb], loops, dirs)
    # GCD-only must be at least as conservative as the full tester
    if full_dep:
        assert gcd_dep
    if not gcd_dep:
        assert not brute_force_dependent(fa, fb, loops, dirs)
