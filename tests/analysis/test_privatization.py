"""Tests for scalar classification, array kill analysis and reductions."""

from repro.analysis.privatization import (ScalarClass, array_privatizable,
                                          classify_scalars)
from repro.analysis.reductions import find_reductions
from repro.analysis.regions import Region, ref_region, project_over_loop
from repro.analysis.symbolic import from_expr
from repro.fortran import ast
from repro.fortran.parser import parse_expression as pe
from repro.fortran.parser import parse_source
from repro.fortran.symbols import build_symbol_table


def body_and_table(src):
    unit = parse_source(src).units[0]
    return unit.body, build_symbol_table(unit)


def loop_body(src):
    body, table = body_and_table(src)
    loop = body[0]
    assert isinstance(loop, ast.DoLoop)
    return loop.body, table


class TestScalarClassification:
    def test_write_first(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        T = A(I)*2.0\n"
            "        A(I) = T + 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        cls = classify_scalars(body, table)
        assert cls["T"] is ScalarClass.WRITE_FIRST

    def test_read_first(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = T\n"
            "        T = A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        cls = classify_scalars(body, table)
        assert cls["T"] is ScalarClass.READ_FIRST

    def test_read_only(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = C*2.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert classify_scalars(body, table)["C"] is ScalarClass.READ_ONLY

    def test_conditional_write_then_read_not_private(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).GT.0.0) T = 1.0\n"
            "        A(I) = T\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert classify_scalars(body, table)["T"] is ScalarClass.READ_FIRST

    def test_write_on_all_branches_is_private(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).GT.0.0) THEN\n"
            "          T = 1.0\n"
            "        ELSE\n"
            "          T = 2.0\n"
            "        END IF\n"
            "        A(I) = T\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert classify_scalars(body, table)["T"] is ScalarClass.WRITE_FIRST

    def test_inner_loop_zero_trip_conservatism(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, M\n"
            "          T = 1.0\n"
            "   20   CONTINUE\n"
            "        A(I) = T\n"
            "   10 CONTINUE\n"
            "      END\n")
        # the inner loop may run zero iterations, so T may be stale
        assert classify_scalars(body, table)["T"] is ScalarClass.READ_FIRST

    def test_condition_read_counts(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        IF (T.GT.0.0) A(I) = 0.0\n"
            "        T = A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert classify_scalars(body, table)["T"] is ScalarClass.READ_FIRST


class TestRegions:
    def info(self, src, name):
        unit = parse_source(src).units[0]
        return build_symbol_table(unit).info(name)

    SRC = ("      SUBROUTINE S\n"
           "      DIMENSION XY(2,64), A(100)\n"
           "      END\n")

    def test_point_region(self):
        info = self.info(self.SRC, "A")
        r = ref_region((pe("I"),), info)
        assert r.dims[0].lo == from_expr(pe("I"))
        assert r.covers(r)

    def test_whole_array(self):
        info = self.info(self.SRC, "XY")
        r = Region.whole_array(info)
        assert r.dims[1].hi == from_expr(pe("64"))

    def test_section_defaults_to_declared(self):
        info = self.info(self.SRC, "XY")
        r = ref_region((ast.RangeExpr(None, None), pe("J")), info)
        assert r.dims[0].lo == from_expr(pe("1"))
        assert r.dims[0].hi == from_expr(pe("2"))

    def test_coverage_constant(self):
        info = self.info(self.SRC, "A")
        big = ref_region((ast.RangeExpr(pe("1"), pe("10")),), info)
        small = ref_region((ast.RangeExpr(pe("2"), pe("9")),), info)
        assert big.covers(small)
        assert not small.covers(big)

    def test_coverage_symbolic_equal(self):
        info = self.info(self.SRC, "A")
        a = ref_region((ast.RangeExpr(pe("1"), pe("NNPED")),), info)
        b = ref_region((ast.RangeExpr(pe("1"), pe("NNPED")),), info)
        assert a.covers(b)

    def test_coverage_symbolic_different_fails(self):
        # the Section II-B3 failure: NNPED does not provably cover NNPS
        info = self.info(self.SRC, "A")
        a = ref_region((ast.RangeExpr(pe("1"), pe("NNPED")),), info)
        b = ref_region((ast.RangeExpr(pe("1"), pe("NNPS")),), info)
        assert not a.covers(b)

    def test_projection(self):
        info = self.info(self.SRC, "A")
        unit = parse_source(
            "      SUBROUTINE T\n"
            "      DO 10 J = 1, M\n"
            "   10 CONTINUE\n"
            "      END\n").units[0]
        loop = unit.body[0]
        r = project_over_loop(ref_region((pe("J"),), info), loop)
        assert r.dims[0].lo == from_expr(pe("1"))
        assert r.dims[0].hi == from_expr(pe("M"))

    def test_projection_nonunit_coeff_unknown(self):
        info = self.info(self.SRC, "A")
        unit = parse_source(
            "      SUBROUTINE T\n"
            "      DO 10 J = 1, M\n"
            "   10 CONTINUE\n"
            "      END\n").units[0]
        loop = unit.body[0]
        r = project_over_loop(ref_region((pe("2*J"),), info), loop)
        assert r.dims[0].lo is None  # strided: gaps, not a dense cover


class TestArrayKill:
    def test_whole_loop_kill(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64), A(100,64)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, 64\n"
            "          T(J) = A(I,J)\n"
            "   20   CONTINUE\n"
            "        DO 30 J = 1, 64\n"
            "          A(I,J) = T(J)*2.0\n"
            "   30   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert array_privatizable("T", body, table)

    def test_partial_kill_fails(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64), A(100,64)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, 32\n"
            "          T(J) = A(I,J)\n"
            "   20   CONTINUE\n"
            "        DO 30 J = 1, 64\n"
            "          A(I,J) = T(J)*2.0\n"
            "   30   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not array_privatizable("T", body, table)

    def test_symbolic_mismatch_fails(self):
        # GETCR/SHAPE1: writer bound NNPED, reader indirect
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION XY(2,64), NODE(64), A(100)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, NNPED\n"
            "          XY(1,J) = 0.0\n"
            "          XY(2,J) = 0.0\n"
            "   20   CONTINUE\n"
            "        A(I) = XY(1,NODE(I))\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not array_privatizable("XY", body, table)

    def test_symbolic_match_succeeds(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64), A(100)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, NN\n"
            "          T(J) = 0.0\n"
            "   20   CONTINUE\n"
            "        DO 30 J = 1, NN\n"
            "          A(I) = A(I) + T(J)\n"
            "   30   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert array_privatizable("T", body, table)

    def test_conditional_write_not_a_kill(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64), A(100)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).GT.0.0) THEN\n"
            "          DO 20 J = 1, 64\n"
            "            T(J) = 0.0\n"
            "   20     CONTINUE\n"
            "        END IF\n"
            "        A(I) = T(5)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not array_privatizable("T", body, table)

    def test_region_assignment_kills(self):
        # the form annotation translation produces: XY(1:2,1:64) = expr
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION XY(2,64), A(100)\n"
            "      DO 10 I = 1, N\n"
            "        XY(1:2,1:64) = 0.0\n"
            "        A(I) = XY(1,5)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert array_privatizable("XY", body, table)

    def test_read_before_write_fails(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64), A(100)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = T(1)\n"
            "        DO 20 J = 1, 64\n"
            "          T(J) = 0.0\n"
            "   20   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not array_privatizable("T", body, table)

    def test_array_passed_to_call_blocks(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION T(64)\n"
            "      DO 10 I = 1, N\n"
            "        CALL USE(T)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not array_privatizable("T", body, table)


class TestReductions:
    def test_sum(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 + A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"S1": "+"}

    def test_difference_is_plus_reduction(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 - A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"S1": "+"}

    def test_product(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        P = P * A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"P": "*"}

    def test_max(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        XM = MAX(XM, A(I))\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"XM": "MAX"}

    def test_var_used_elsewhere_disqualifies(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 + A(I)\n"
            "        A(I) = S1\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {}

    def test_mixed_operators_disqualify(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 + A(I)\n"
            "        S1 = S1 * 2.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {}

    def test_two_reductions(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 + A(I)\n"
            "        S2 = S2 + A(I)*A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"S1": "+", "S2": "+"}

    def test_conditional_reduction(self):
        body, table = loop_body(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).GT.0.0) S1 = S1 + A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert find_reductions(body, table) == {"S1": "+"}
