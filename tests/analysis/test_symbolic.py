"""Unit and property tests for the symbolic polynomial algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.symbolic import (Poly, atom_token, exprs_equivalent,
                                     from_expr, simplify_expr)
from repro.fortran import ast
from repro.fortran.parser import parse_expression as pe


class TestCanonicalForm:
    def test_constant(self):
        assert from_expr(pe("3+4")).constant_value() == 7

    def test_linear_combination(self):
        p = from_expr(pe("2*I + 3*J - I"))
        assert p.coeff("I") == 1
        assert p.coeff("J") == 3

    def test_cancellation(self):
        assert from_expr(pe("I - I")).is_zero()

    def test_distribution(self):
        assert from_expr(pe("2*(I+J)")) == from_expr(pe("2*I + 2*J"))

    def test_power_expansion(self):
        p = from_expr(pe("(I+1)**2"))
        assert p == from_expr(pe("I*I + 2*I + 1"))

    def test_exact_integer_division(self):
        assert from_expr(pe("(4*I+8)/4")) == from_expr(pe("I+2"))

    def test_inexact_division_becomes_atom(self):
        p = from_expr(pe("I/2"))
        assert any(t.startswith("@") for t in p.variables())

    def test_array_read_is_atom(self):
        p = from_expr(pe("IX(7)+I"))
        assert p.coeff("I") == 1
        assert atom_token(pe("IX(7)")) in p.variables()

    def test_same_atom_cancels(self):
        # the Figure-2 precision requirement: identical opaque reads cancel
        d = from_expr(pe("IX(7)+I")) - from_expr(pe("IX(7)+J"))
        assert d == from_expr(pe("I-J"))

    def test_distinct_atoms_do_not_cancel(self):
        d = from_expr(pe("IX(7)+I")) - from_expr(pe("IX(8)+I"))
        assert not d.is_constant()

    def test_atom_records_names_inside(self):
        p = from_expr(pe("NSPECI(N)"))
        assert "N" in p.names_mentioned()
        assert "NSPECI" in p.names_mentioned()

    def test_names_mentioned_plain(self):
        assert from_expr(pe("2*I+J")).names_mentioned() == {"I", "J"}


class TestArithmetic:
    def test_scale(self):
        assert from_expr(pe("I+2")).scale(3) == from_expr(pe("3*I+6"))

    def test_scale_zero(self):
        assert from_expr(pe("I+2")).scale(0).is_zero()

    def test_mul_polynomials(self):
        p = from_expr(pe("I+1")) * from_expr(pe("I-1"))
        assert p == from_expr(pe("I*I-1"))

    def test_without(self):
        p = from_expr(pe("2*I + 3*J + 5"))
        q = p.without(["I"])
        assert q == from_expr(pe("3*J + 5"))

    def test_degree(self):
        assert from_expr(pe("I*I*J")).degree_in("I") == 2
        assert from_expr(pe("I*I*J")).degree_in("J") == 1
        assert from_expr(pe("5")).degree_in("I") == 0


class TestRoundtrip:
    def test_to_expr_roundtrip(self):
        for text in ["2*I+3", "I-J", "0", "IX(7)+I", "-I", "I*J+4*K-7"]:
            p = from_expr(pe(text))
            assert from_expr(p.to_expr()) == p, text

    def test_simplify(self):
        e = simplify_expr(pe("I + I + 1 - 1"))
        assert e == pe("2*I")

    def test_equivalence(self):
        assert exprs_equivalent(pe("A+B"), pe("B+A"))
        assert exprs_equivalent(pe("2*(I+1)"), pe("2*I+2"))
        assert not exprs_equivalent(pe("I+1"), pe("I+2"))


# --- property tests: ring laws under random small polynomials --------------

def polys():
    consts = st.integers(-5, 5).map(Poly.const)
    variables = st.sampled_from(["I", "J", "N"]).map(Poly.var)
    atoms = st.sampled_from(["IX(7)", "IDX(I)"]).map(
        lambda t: Poly.atom(pe(t)))
    base = st.one_of(consts, variables, atoms)

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: t[0] + t[1]),
            st.tuples(children, children).map(lambda t: t[0] * t[1]),
            children.map(lambda p: -p),
        )

    return st.recursive(base, extend, max_leaves=6)


@given(polys(), polys(), polys())
@settings(max_examples=150)
def test_ring_laws(p, q, r):
    assert p + q == q + p
    assert p * q == q * p
    assert (p + q) + r == p + (q + r)
    assert p * (q + r) == p * q + p * r
    assert p - p == Poly.const(0)
    assert p * Poly.const(1) == p
    assert (p * Poly.const(0)).is_zero()


@given(polys())
@settings(max_examples=100)
def test_to_expr_inverse(p):
    assert from_expr(p.to_expr()) == p
