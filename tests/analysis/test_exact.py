"""Tests for the exact (Fourier-Motzkin) dependence test."""

import itertools
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import AffineForm, extract
from repro.analysis.dependence import DependenceTester, LoopCtx
from repro.analysis.exact import ExactTester, feasible
from repro.analysis.symbolic import Poly
from repro.fortran.parser import parse_expression as pe
from tests.analysis.test_dependence import affine_pair, brute_force_dependent


def F(c):
    return Fraction(c)


class TestFourierMotzkin:
    def test_trivially_feasible(self):
        assert feasible([({"x": F(1)}, F(0))])  # x >= 0

    def test_trivially_infeasible(self):
        # x >= 1 and -x >= 0
        assert not feasible([({"x": F(1)}, F(-1)), ({"x": F(-1)}, F(0))])

    def test_two_variable_infeasible(self):
        # x + y >= 5, -x >= -1, -y >= -1  (x,y <= 1)
        assert not feasible([
            ({"x": F(1), "y": F(1)}, F(-5)),
            ({"x": F(-1)}, F(1)),
            ({"y": F(-1)}, F(1)),
        ])

    def test_equality_chain(self):
        # x = y, y = z, x >= 3, -z >= -2  -> infeasible
        eqs = []
        for a, b in (("x", "y"), ("y", "z")):
            eqs.append(({a: F(1), b: F(-1)}, F(0)))
            eqs.append(({a: F(-1), b: F(1)}, F(0)))
        assert not feasible(eqs + [({"x": F(1)}, F(-3)),
                                   ({"z": F(-1)}, F(2))])

    def test_rational_feasible(self):
        # 2x >= 1, -x >= -1: x in [0.5, 1]
        assert feasible([({"x": F(2)}, F(-1)), ({"x": F(-1)}, F(1))])


def forms(texts, indices):
    return [extract(pe(t), indices) for t in texts]


class TestCoupledSubscripts:
    LOOPS = [LoopCtx("I", 1, 10), LoopCtx("J", 1, 10)]
    DIRS = {"I": "<", "J": "*"}

    def test_coupled_independence_found(self):
        # A(I+J, I-J): dimensions couple; the joint system is infeasible
        a = forms(["I+J", "I-J"], ["I", "J"])
        exact = ExactTester()
        assert not exact.may_depend(a, a, self.LOOPS, self.DIRS)

    def test_per_dimension_tests_miss_it(self):
        a = forms(["I+J", "I-J"], ["I", "J"])
        coarse = DependenceTester(use_exact=False)
        assert coarse.may_depend(a, a, self.LOOPS, self.DIRS)

    def test_integrated_tester(self):
        a = forms(["I+J", "I-J"], ["I", "J"])
        t = DependenceTester(use_exact=True)
        assert not t.may_depend(a, a, self.LOOPS, self.DIRS)
        assert t.stats.exact_independent == 1

    def test_true_dependence_still_found(self):
        a = forms(["I+J"], ["I", "J"])
        b = forms(["I+J+1"], ["I", "J"])
        t = DependenceTester(use_exact=True)
        assert t.may_depend(a, b, self.LOOPS, self.DIRS)

    def test_nonaffine_conservative(self):
        t = ExactTester()
        assert t.may_depend([None], [None], self.LOOPS, self.DIRS)

    def test_symbolic_delta_conservative(self):
        a = forms(["I+NOFF"], ["I"])
        b = forms(["I"], ["I"])
        t = ExactTester()
        assert t.may_depend(a, b, [LoopCtx("I", 1, 10)], {"I": "<"})


@given(affine_pair())
@settings(max_examples=200, deadline=None)
def test_exact_soundness_against_brute_force(case):
    fa, fb, loops, dirs = case
    tester = DependenceTester(use_exact=True)
    if not tester.may_depend([fa], [fb], loops, dirs):
        assert not brute_force_dependent(fa, fb, loops, dirs)


@given(affine_pair())
@settings(max_examples=120, deadline=None)
def test_exact_at_least_as_strong(case):
    fa, fb, loops, dirs = case
    coarse = DependenceTester(use_exact=False)
    exact = DependenceTester(use_exact=True)
    if not coarse.may_depend([fa], [fb], loops, dirs):
        assert not exact.may_depend([fa], [fb], loops, dirs)
