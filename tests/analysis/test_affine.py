"""Tests for affine subscript extraction."""

from repro.analysis.affine import extract
from repro.analysis.symbolic import from_expr
from repro.fortran.parser import parse_expression as pe


class TestExtract:
    def test_simple_index(self):
        f = extract(pe("I"), ["I"])
        assert f is not None
        assert f.coeff("I") == 1
        assert f.remainder.is_zero()

    def test_affine_with_constant(self):
        f = extract(pe("2*I + 3"), ["I"])
        assert f.coeff("I") == 2
        assert f.remainder.constant_value() == 3

    def test_symbolic_invariant_part(self):
        # T(IX(7) + I): affine in I, remainder is the opaque atom IX(7)
        f = extract(pe("IX(7) + I"), ["I"])
        assert f is not None
        assert f.coeff("I") == 1
        assert not f.remainder.is_constant()

    def test_two_indices(self):
        f = extract(pe("4*I + J - 2"), ["I", "J"])
        assert f.coeff("I") == 4 and f.coeff("J") == 1
        assert f.remainder.constant_value() == -2

    def test_invariant_scalar_stays_in_remainder(self):
        f = extract(pe("I + NBASE"), ["I"])
        assert f.coeff("I") == 1
        assert f.remainder == from_expr(pe("NBASE"))

    def test_subscripted_subscript_nonaffine(self):
        # A(IDX(I)): the index variable is trapped inside an opaque read
        assert extract(pe("IDX(I)"), ["I"]) is None

    def test_subscripted_subscript_offset_nonaffine(self):
        assert extract(pe("IDX(I) + 3"), ["I"]) is None

    def test_index_product_nonaffine(self):
        assert extract(pe("I*J"), ["I", "J"]) is None

    def test_index_squared_nonaffine(self):
        assert extract(pe("I*I"), ["I"]) is None

    def test_index_times_symbol_nonaffine(self):
        assert extract(pe("N*I"), ["I"]) is None

    def test_index_under_division_nonaffine(self):
        assert extract(pe("I/2"), ["I"]) is None

    def test_non_index_atom_is_fine(self):
        f = extract(pe("IDX(J) + I"), ["I"])
        assert f is not None and f.coeff("I") == 1

    def test_unique_style_linear_form(self):
        # what the `unique` operator lowers to: a known injective linear map
        f = extract(pe("257*ID + 16*IN + I"), ["I"])
        assert f is not None
        assert f.coeff("I") == 1
        assert f.remainder == from_expr(pe("257*ID + 16*IN"))

    def test_invariant_subscript(self):
        f = extract(pe("K1"), ["I", "J"])
        assert f is not None
        assert f.is_invariant()
