"""Tests for the normalization passes (the transformations the reverse
inliner must tolerate)."""

from repro.analysis.loops import iter_loops
from repro.analysis.normalize import (forward_substitute_block,
                                      normalize_unit, substitute_inductions)
from repro.analysis.affine import extract
from repro.fortran import ast
from repro.fortran.parser import parse_expression as pe
from repro.fortran.parser import parse_source
from repro.fortran.symbols import build_symbol_table
from repro.fortran.unparser import unparse


def norm(src):
    unit = parse_source(src).units[0]
    return normalize_unit(unit)


class TestInductionSubstitution:
    def test_figure2_inner_loop(self):
        # the paper's PCINIT pattern: I = I + 1 then X2(I) = ...
        unit = norm(
            "      SUBROUTINE PCINIT(X2)\n"
            "      DIMENSION X2(*), FX(1000)\n"
            "      DO 200 J = 1, NSP\n"
            "        I = I + 1\n"
            "        X2(I) = FX(I)*2.0\n"
            "  200 CONTINUE\n"
            "      END\n")
        loop = next(iter_loops(unit.body)).loop
        # the increment is gone and X2's subscript is affine in J
        writes = [s for s in ast.walk_stmts(loop.body)
                  if isinstance(s, ast.Assign)
                  and isinstance(s.target, ast.ArrayRef)]
        assert len(writes) == 1
        form = extract(writes[0].target.subs[0], ["J"])
        assert form is not None and form.coeff("J") == 1
        # the final value of I is restored after the loop
        text = unparse(unit)
        assert "I = I+(NSP-1+1)" in text.replace(" + ", "+") or \
               "I+(NSP-1+1)" in text.replace(" ", "")

    def test_uses_before_increment(self):
        unit = norm(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 J = 1, N\n"
            "        A(K) = 1.0\n"
            "        K = K + 2\n"
            "   10 CONTINUE\n"
            "      END\n")
        loop = next(iter_loops(unit.body)).loop
        write = loop.body[0]
        form = extract(write.target.subs[0], ["J"])
        assert form is not None and form.coeff("J") == 2

    def test_variant_increment_rejected(self):
        # the Figure-2 outer-loop situation: increment amount varies
        src = ("      SUBROUTINE S\n"
               "      DIMENSION A(100)\n"
               "      DO 10 N = 1, M\n"
               "        I = I + NSP\n"
               "        A(I) = 0.0\n"
               "   10 CONTINUE\n"
               "      END\n")
        unit = norm(src)
        loop = next(iter_loops(unit.body)).loop
        # untouched: the increment statement is still there
        assert any(isinstance(s, ast.Assign) and isinstance(s.target, ast.Var)
                   and s.target.name == "I" for s in loop.body)

    def test_two_increments_rejected(self):
        unit = norm(
            "      SUBROUTINE S\n"
            "      DO 10 J = 1, N\n"
            "        I = I + 1\n"
            "        I = I + 1\n"
            "   10 CONTINUE\n"
            "      END\n")
        loop = next(iter_loops(unit.body)).loop
        assert len(loop.body) >= 2

    def test_loop_var_itself_not_subst(self):
        unit = norm(
            "      SUBROUTINE S\n"
            "      DO 10 J = 1, N\n"
            "        J2 = J\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert unit is not None  # merely must not crash or rewrite J

    def test_semantics_value(self):
        # closed form must equal sequential execution: simulate manually
        unit = norm(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      DO 10 J = 1, 5\n"
            "        I = I + 3\n"
            "        A(I) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        loop = next(iter_loops(unit.body)).loop
        write = [s for s in loop.body if isinstance(s, ast.Assign)
                 and isinstance(s.target, ast.ArrayRef)][0]
        form = extract(write.target.subs[0], ["J"])
        # I0 + 3*(J-1+1) = I0 + 3J
        assert form.coeff("J") == 3


class TestForwardSubstitution:
    def test_figure7_pattern(self):
        # ID = IDBEGS(ISS) + 1 + K flows into the use
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION IDBEGS(50), RHSB(10000)\n"
            "      DO 30 K = 1, NEP\n"
            "        ID = IDBEGS(ISS) + 1 + K\n"
            "        RHSB(ID) = 0.0\n"
            "   30 CONTINUE\n"
            "      END\n").units[0]
        table = build_symbol_table(unit)
        forward_substitute_block(unit.body, table)
        loop = next(iter_loops(unit.body)).loop
        write = [s for s in loop.body if isinstance(s, ast.Assign)
                 and isinstance(s.target, ast.ArrayRef)][0]
        form = extract(write.target.subs[0], ["K"])
        assert form is not None and form.coeff("K") == 1

    def test_invalidation_on_redefinition(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      N = 5\n"
            "      N = M\n"
            "      A(N) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        write = unit.body[-1]
        assert write.target.subs[0] == pe("M")

    def test_invalidation_on_dependent_write(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      N = M + 1\n"
            "      M = 7\n"
            "      A(N) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        write = unit.body[-1]
        assert write.target.subs[0] == pe("N")  # must NOT be M+1

    def test_invalidation_on_array_write(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100), IX(10)\n"
            "      N = IX(3)\n"
            "      IX(3) = 9\n"
            "      A(N) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        assert unit.body[-1].target.subs[0] == pe("N")

    def test_call_clears_env(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      COMMON /C/ M\n"
            "      N = M\n"
            "      CALL TOUCH\n"
            "      A(N) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        assert unit.body[-1].target.subs[0] == pe("N")

    def test_label_is_a_join_point(self):
        # control can reach label 10 from the GOTO carrying N=5, so the
        # fall-through binding N=7 must not substitute into A(N)
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      N = 5\n"
            "      GO TO 10\n"
            "      N = 7\n"
            "   10 A(N) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        assert unit.body[-1].target.subs[0] == pe("N")

    def test_computed_goto_arms_do_not_leak_bindings(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      K = 1\n"
            "      GO TO (10, 20), K\n"
            "      K = 2\n"
            "   10 K = K + 3\n"
            "   20 A(K) = 0.0\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        # at runtime K is 4 (1, jump to 10, +3); substituting the linear
        # chain 1 -> 2 -> 2+3 would store through A(5)
        assert unit.body[-1].target.subs[0] == pe("K")

    def test_opaque_statement_clears_env(self):
        from repro.fortran.fixedform import parse_source_tolerant
        sf, _ = parse_source_tolerant(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      N = 5\n"
            "      X = = 1.0\n"
            "      A(N) = 0.0\n"
            "      END\n")
        unit = sf.units[0]
        assert isinstance(unit.body[1], ast.Opaque)
        forward_substitute_block(unit.body, build_symbol_table(unit))
        # the boxed statement may write anything, N included
        assert unit.body[-1].target.subs[0] == pe("N")

    def test_real_scalar_not_substituted(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(100)\n"
            "      X = Y*2.0\n"
            "      A(1) = X\n"
            "      END\n").units[0]
        forward_substitute_block(unit.body, build_symbol_table(unit))
        assert unit.body[-1].value == pe("X")


class TestParameterPropagation:
    def test_parameter_folds(self):
        unit = norm(
            "      SUBROUTINE S\n"
            "      PARAMETER (N=10)\n"
            "      DIMENSION A(N)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = 0.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        loop = next(iter_loops(unit.body)).loop
        assert loop.stop == ast.IntLit(10)
