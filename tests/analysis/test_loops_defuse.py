"""Tests for loop discovery, def/use collection, call graph and
side-effect summaries."""

from repro.analysis.callgraph import build_callgraph
from repro.analysis.defuse import collect_accesses
from repro.analysis.loops import (assign_origins, iter_loops, loop_ctx,
                                  trip_count)
from repro.analysis.sideeffects import compute_summaries
from repro.fortran import ast
from repro.fortran.parser import parse_source
from repro.fortran.symbols import build_symbol_table
from repro.program import Program


def unit_of(src):
    return parse_source(src).units[0]


class TestLoops:
    SRC = ("      SUBROUTINE S\n"
           "      DO 10 I = 1, 10\n"
           "        DO 20 J = 1, 5\n"
           "          A(I,J) = 0.0\n"
           "   20   CONTINUE\n"
           "        IF (I.GT.2) THEN\n"
           "          DO K = 1, N\n"
           "            B(K) = 0.0\n"
           "          END DO\n"
           "        END IF\n"
           "   10 CONTINUE\n"
           "      END\n")

    def test_iter_loops_order_and_context(self):
        unit = unit_of(self.SRC)
        infos = list(iter_loops(unit.body))
        assert [i.loop.var for i in infos] == ["I", "J", "K"]
        assert infos[0].depth == 0
        assert infos[1].enclosing[0].var == "I"
        assert infos[2].index_vars == ["I", "K"]

    def test_assign_origins_stable(self):
        unit = unit_of(self.SRC)
        assign_origins(unit)
        infos = list(iter_loops(unit.body))
        assert infos[0].origin == "S:0"
        assert infos[2].origin == "S:2"
        # origins survive cloning (the Table II counting requirement)
        copy = ast.clone(unit)
        cloned = list(iter_loops(copy.body))
        assert [c.origin for c in cloned] == [i.origin for i in infos]

    def test_loop_ctx(self):
        unit = unit_of(self.SRC)
        infos = list(iter_loops(unit.body))
        assert loop_ctx(infos[0].loop).lower == 1
        assert loop_ctx(infos[0].loop).upper == 10
        assert loop_ctx(infos[2].loop).upper is None

    def test_trip_count(self):
        unit = unit_of(self.SRC)
        infos = list(iter_loops(unit.body))
        assert trip_count(infos[0].loop) == 10
        assert trip_count(infos[2].loop) is None

    def test_trip_count_with_step(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      DO 10 I = 1, 10, 3\n"
                       "   10 CONTINUE\n"
                       "      END\n")
        loop = list(iter_loops(unit.body))[0].loop
        assert trip_count(loop) == 4


class TestDefUse:
    def test_assign_accesses(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      DIMENSION A(10), B(10)\n"
                       "      A(I) = B(J) + X\n"
                       "      END\n")
        acc = collect_accesses(unit.body, build_symbol_table(unit))
        assert acc.scalar_reads == {"I", "J", "X"}
        assert ("A", (ast.Var("I"),), True) in acc.array_accesses
        assert ("B", (ast.Var("J"),), False) in acc.array_accesses

    def test_io_read_writes_items(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      READ(5,*) N, X\n"
                       "      WRITE(6,*) Y\n"
                       "      END\n")
        acc = collect_accesses(unit.body, build_symbol_table(unit))
        assert {"N", "X"} <= acc.scalar_writes
        assert "Y" in acc.scalar_reads
        assert acc.has_io

    def test_call_args_recorded(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      DIMENSION FE(10,5)\n"
                       "      CALL FORMF(FE(1,ID))\n"
                       "      END\n")
        acc = collect_accesses(unit.body, build_symbol_table(unit))
        assert acc.has_call
        assert "FE" in acc.call_args
        assert "ID" in acc.scalar_reads

    def test_do_loop_var_is_write(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      DO I = 1, N\n"
                       "      END DO\n"
                       "      END\n")
        acc = collect_accesses(unit.body, build_symbol_table(unit))
        assert "I" in acc.scalar_writes
        assert "N" in acc.scalar_reads

    def test_goto_stop_flags(self):
        unit = unit_of("      SUBROUTINE S\n"
                       "      GO TO 10\n"
                       "   10 STOP\n"
                       "      END\n")
        acc = collect_accesses(unit.body, build_symbol_table(unit))
        assert acc.has_goto and acc.has_stop


MULTI = """
      PROGRAM MAIN
      COMMON /G/ X(100)
      CALL OUTER
      END
      SUBROUTINE OUTER
      COMMON /G/ X(100)
      CALL LEAF(X(1))
      CALL MYSTERY
      END
      SUBROUTINE LEAF(V)
      V = 1.0
      END
      SUBROUTINE PUREF(A, B)
      B = A
      END
"""


class TestCallGraphAndSummaries:
    def test_callgraph_edges(self):
        prog = Program.from_source(MULTI)
        g = build_callgraph(prog)
        assert g.callees("MAIN") == {"OUTER"}
        assert g.callees("OUTER") == {"LEAF", "MYSTERY"}
        assert "MYSTERY" in g.unknown
        assert g.callers_of("LEAF") == {"OUTER"}

    def test_recursion_detected(self):
        prog = Program.from_source(
            "      SUBROUTINE R(N)\n"
            "      IF (N.GT.0) CALL R(N-1)\n"
            "      END\n")
        g = build_callgraph(prog)
        assert g.is_recursive("R")

    def test_bottom_up_order(self):
        prog = Program.from_source(MULTI)
        order = build_callgraph(prog).topological_bottom_up()
        assert order.index("LEAF") < order.index("OUTER")
        assert order.index("OUTER") < order.index("MAIN")

    def test_leaf_summary(self):
        prog = Program.from_source(MULTI)
        summaries = compute_summaries(prog)
        leaf = summaries["LEAF"]
        assert leaf.mod == {"V"}
        assert not leaf.has_io and not leaf.opaque

    def test_effects_propagate_through_args(self):
        prog = Program.from_source(MULTI)
        outer = compute_summaries(prog)["OUTER"]
        assert "X" in outer.mod  # LEAF writes V which is bound to X(1)
        assert outer.opaque      # MYSTERY is an external library routine

    def test_pure_function_summary(self):
        prog = Program.from_source(MULTI)
        s = compute_summaries(prog)["PUREF"]
        assert s.mod == {"B"} and s.ref == {"A"}
        assert not s.pure  # writes a formal

    def test_genuinely_pure(self):
        prog = Program.from_source(
            "      DOUBLE PRECISION FUNCTION SQ(X)\n"
            "      SQ = X*X\n"
            "      END\n")
        s = compute_summaries(prog)["SQ"]
        assert s.pure
