"""Dashboard: count verification, data collection, and self-contained
HTML rendering.
"""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.dashboard import (CountMismatchError, DashboardData,
                                 collect, read_bench_history,
                                 read_fuzz_stats, render_dashboard,
                                 verify_counts, write_dashboard)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    previous = obs_metrics.set_registry(MetricsRegistry())
    try:
        yield
    finally:
        obs_metrics.set_registry(previous)


@pytest.fixture(scope="module")
def data():
    previous = obs_metrics.set_registry(MetricsRegistry())
    try:
        return collect(benchmarks=["trfd", "mdg"])
    finally:
        obs_metrics.set_registry(previous)


class TestVerifyCounts:
    def test_mismatch_raises(self, data):
        import copy
        import dataclasses
        doctored = copy.deepcopy(data.rows)
        good = doctored[0].configs["none"]
        doctored[0].configs["none"] = dataclasses.replace(
            good, par_loops=good.par_loops + 1)
        with pytest.raises(CountMismatchError):
            verify_counts(doctored, data.decisions)

    def test_collected_data_verifies(self, data):
        verify_counts(data.rows, data.decisions)  # must not raise

    def test_counts_match_rows_exactly(self, data):
        for row in data.rows:
            for kind in ("none", "conventional", "annotation"):
                assert data.counts[(row.benchmark, kind)] \
                    == row.configs[kind].par_loops


class TestCollect:
    def test_shape(self, data):
        assert data.benchmarks == ["TRFD", "MDG"]
        assert len(data.rows) == 2
        assert data.decisions
        assert data.timings
        assert "repro_dep_tests_total" in data.metrics_text

    def test_history_and_fuzz_are_optional(self, data):
        assert isinstance(data.bench_history, list)


class TestReaders:
    def test_history_reader_tolerates_junk(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"total_seconds": 1.0}\n'
                        'not json\n'
                        '[1,2]\n'
                        '{"total_seconds": 2.0}\n')
        entries = read_bench_history(str(path))
        assert [e["total_seconds"] for e in entries] == [1.0, 2.0]

    def test_history_reader_missing_file(self, tmp_path):
        assert read_bench_history(str(tmp_path / "nope.jsonl")) == []

    def test_fuzz_reader(self, tmp_path):
        path = tmp_path / "fuzz_latest.json"
        path.write_text(json.dumps({"programs": 10, "mismatches": 0}))
        assert read_fuzz_stats(str(path))["programs"] == 10
        assert read_fuzz_stats(str(tmp_path / "nope.json")) is None


class TestRender:
    def test_self_contained(self, data):
        html = render_dashboard(data)
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html
        assert "<link" not in html
        assert html.startswith("<!doctype html>")

    def test_names_every_benchmark(self, data):
        html = render_dashboard(data)
        for name in data.benchmarks:
            assert name in html

    def test_counts_in_table(self, data):
        html = render_dashboard(data)
        for row in data.rows:
            # each config's par-loop count appears in the Table II markup
            assert (f"<td class=num>"
                    f"{row.configs['annotation'].par_loops}</td>") in html

    def test_drilldown_present(self, data):
        html = render_dashboard(data)
        assert "<details" in html
        assert "TRFD" in html

    def test_history_chart_rendered(self, data, tmp_path):
        enriched = DashboardData(**{**data.__dict__})
        enriched.bench_history = [
            {"ts": 1700000000.0 + i, "total_seconds": 0.3 + 0.01 * i,
             "passed": True} for i in range(5)]
        html = render_dashboard(enriched)
        assert "<svg" in html
        assert "polyline" in html

    def test_loadtest_history_plots_p99_with_latency_axis(self, data):
        enriched = DashboardData(**{**data.__dict__})
        enriched.bench_history = [
            {"ts": 1700000000.0 + i, "suite": "loadtest",
             "p99_seconds": 0.05 + 0.01 * i, "passed": True}
            for i in range(3)]
        html = render_dashboard(enriched)
        assert "p99 job latency, seconds" in html
        # latency is not captioned as bench wall-clock
        assert html.count("wall-clock (median of each") == 0

    def test_legacy_loadtest_records_still_plot(self, data):
        # pre-fix records aliased the p99 into total_seconds
        enriched = DashboardData(**{**data.__dict__})
        enriched.bench_history = [
            {"ts": 1700000000.0, "suite": "loadtest",
             "total_seconds": 0.07, "passed": True},
            {"ts": 1700000001.0, "suite": "loadtest",
             "p99_seconds": 0.08, "passed": True}]
        html = render_dashboard(enriched)
        assert "p99 job latency, seconds" in html
        assert "0.07" in html and "0.08" in html

    def test_escapes_untrusted_text(self, data):
        enriched = DashboardData(**{**data.__dict__})
        enriched.fuzz_stats = {"programs": 1,
                               "seed": "<script>alert(1)</script>"}
        html = render_dashboard(enriched)
        assert "<script>alert(1)</script>" not in html

    def test_write_dashboard(self, data, tmp_path):
        out = tmp_path / "report.html"
        write_dashboard(str(out), data)
        assert out.read_text(encoding="utf-8").startswith("<!doctype")
