"""Telemetry and span stores: bounds, event sequencing, persistence."""

import json
import os

from repro.obs.telemetry import SpanStore, TelemetryStore, telemetry_dir


class TestTelemetryStore:
    def test_snapshot_roundtrip(self):
        store = TelemetryStore()
        store.add_snapshot({"m": 1}, {"uptime": 3.0}, at=100.0)
        store.add_snapshot({"m": 2}, {"uptime": 4.0}, at=101.0)
        assert store.latest()["metrics"] == {"m": 2}
        assert [s["at"] for s in store.snapshots()] == [100.0, 101.0]

    def test_snapshot_bound(self):
        store = TelemetryStore(snapshot_keep=3)
        for i in range(6):
            store.add_snapshot({"i": i}, at=float(i))
        assert [s["metrics"]["i"] for s in store.snapshots()] == [3, 4, 5]

    def test_events_are_sequenced(self):
        store = TelemetryStore()
        store.add_event("node-join", node="w0")
        store.add_event("node-dead", node="w0")
        events = store.events_since(0)
        assert [e["seq"] for e in events] == [1, 2]
        assert store.events_since(1)[0]["kind"] == "node-dead"
        assert store.events_since(2) == []
        assert store.event_seq() == 2

    def test_window_includes_pre_window_baseline(self):
        import time
        store = TelemetryStore()
        now = time.time()
        for i in range(5):
            store.add_snapshot({"i": i}, at=now - 4.0 + i)
        window = store.window(seconds=1.5)
        # now-1, now are inside; now-2 rides along as the delta baseline
        assert [s["metrics"]["i"] for s in window] == [2, 3, 4]

    def test_persistence_and_load_run(self, tmp_path):
        directory = str(tmp_path)
        store = TelemetryStore(directory, run_id="r1")
        store.add_snapshot({"m": 1}, at=50.0)
        store.add_event("node-join", node="w0")
        assert TelemetryStore.runs(directory) == ["r1"]
        loaded = TelemetryStore.load_run(directory, "r1")
        assert loaded.latest()["metrics"] == {"m": 1}
        assert loaded.events_since(0)[0]["kind"] == "node-join"

    def test_load_tolerates_torn_trailing_line(self, tmp_path):
        directory = str(tmp_path)
        store = TelemetryStore(directory, run_id="r1")
        store.add_snapshot({"m": 1}, at=50.0)
        path = os.path.join(directory, "r1.snapshots.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"at": 51.0, "metrics": {"m"')  # crashed mid-write
        loaded = TelemetryStore.load_run(directory, "r1")
        assert len(loaded.snapshots()) == 1

    def test_memory_only_store_never_touches_disk(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = TelemetryStore()  # no directory
        store.add_snapshot({"m": 1})
        store.add_event("x")
        assert os.listdir(str(tmp_path)) == []


class TestSpanStore:
    def _span(self, name, trace_id="t" * 32, node="gateway"):
        return {"name": name, "cat": "x", "node": node,
                "trace_id": trace_id, "span_id": "s" + name,
                "parent_id": None, "ts_wall": 0.0, "dur": 0.0}

    def test_add_and_filter_by_trace(self):
        store = SpanStore()
        store.add([self._span("a"), self._span("b", trace_id="u" * 32)])
        assert len(store) == 2
        assert [s["name"] for s in store.spans("u" * 32)] == ["b"]
        assert store.trace_ids() == sorted(["t" * 32, "u" * 32])

    def test_bounded_with_drop_count(self):
        store = SpanStore(keep=2)
        store.add([self._span(n) for n in ("a", "b", "c")])
        assert len(store) == 2
        assert store.dropped == 1
        assert [s["name"] for s in store.spans()] == ["b", "c"]

    def test_persist_and_load_run(self, tmp_path):
        directory = str(tmp_path)
        store = SpanStore(directory, run_id="r1")
        store.add([self._span("a"), self._span("b")])
        loaded = SpanStore.load_run(directory, "r1")
        assert [s["name"] for s in loaded.spans()] == ["a", "b"]

    def test_spans_jsonl_is_one_object_per_line(self, tmp_path):
        store = SpanStore(str(tmp_path), run_id="r1")
        store.add([self._span("a"), self._span("b")])
        path = os.path.join(str(tmp_path), "r1.spans.jsonl")
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert [s["name"] for s in lines] == ["a", "b"]


def test_telemetry_dir_is_under_cache_dir(tmp_path):
    assert telemetry_dir(str(tmp_path)) == \
        os.path.join(str(tmp_path), "telemetry")
