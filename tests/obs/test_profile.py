"""Deep profiling: family-stat accumulation, report rendering, and the
cProfile wrapper.
"""

from repro.analysis.dependence import TestStats as DepTestStats
from repro.obs.profile import (FAMILIES, accumulate_test_stats,
                               merge_test_stats, profile_call,
                               render_profile_report, render_test_stats)


class TestAccumulate:
    def test_folds_test_stats_fields(self):
        stats = DepTestStats(ziv_attempts=3, ziv_independent=1,
                          gcd_attempts=5, gcd_independent=2,
                          banerjee_attempts=4, banerjee_independent=3,
                          assumed_dependent=2, cache_hits=7)
        acc = accumulate_test_stats({}, stats)
        acc = accumulate_test_stats(acc, stats)
        assert acc["ziv_attempts"] == 6
        assert acc["banerjee_independent"] == 6
        assert acc["cache_hits"] == 14

    def test_merge_dict_shaped(self):
        acc = merge_test_stats({"gcd_attempts": 1}, {"gcd_attempts": 2,
                                                     "cache_hits": 3})
        assert acc == {"gcd_attempts": 3, "cache_hits": 3}


class TestRender:
    def test_family_table_lists_every_family(self):
        stats = {"gcd_attempts": 10, "gcd_independent": 4,
                 "banerjee_attempts": 6, "banerjee_independent": 6,
                 "assumed_dependent": 2, "cache_hits": 5}
        text = render_test_stats(stats)
        for name, _attempts, _kills in FAMILIES:
            assert name in text
        assert "40.0%" in text       # GCD kill rate
        assert "memo hits: 5" in text

    def test_full_report_sections(self):
        text = render_profile_report(
            {"parse": 0.5, "dependence": 1.0},
            {"gcd_attempts": 1, "gcd_independent": 1},
            "cProfile top 2 (cumulative)\nncalls ...")
        assert "phase timings" in text
        assert "dependence-test family stats" in text
        assert "cProfile top 2" in text

    def test_timings_only(self):
        text = render_profile_report({"parse": 0.5})
        assert "phase timings" in text
        assert "dependence-test" not in text


class TestProfileCall:
    def test_returns_result_and_table(self):
        result, text = profile_call(sorted, [3, 1, 2], top=5)
        assert result == [1, 2, 3]
        assert text.startswith("cProfile top 5")
        assert "ncalls" in text

    def test_exception_propagates(self):
        import pytest

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            profile_call(boom)
