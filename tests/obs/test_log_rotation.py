"""Size-based log rotation: atomic keep-N generations, no interleave."""

import os
import threading

from repro.obs.logging import RotatingFileSink


class TestRotatingFileSink:
    def test_plain_append_without_max_bytes(self, tmp_path):
        path = str(tmp_path / "repro.log")
        sink = RotatingFileSink(path)
        sink.write("one\n")
        sink.write("two\n")
        sink.close()
        with open(path) as fh:
            assert fh.read() == "one\ntwo\n"
        assert sink.generations() == [path]

    def test_rotates_at_size_and_keeps_n(self, tmp_path):
        path = str(tmp_path / "repro.log")
        sink = RotatingFileSink(path, max_bytes=40, keep=2)
        for i in range(12):
            sink.write(f"record-{i:04d} xxxxxxxxxx\n")  # ~23 bytes each
        sink.close()
        files = sink.generations()
        assert files[0] == path
        assert all(os.path.exists(f) for f in files)
        # bounded: live file + at most `keep` rotated generations
        assert len(files) <= 3
        assert not os.path.exists(f"{path}.3")
        for f in files:
            assert os.path.getsize(f) <= 40 + 23  # one record of slack

    def test_rotation_preserves_newest_records_in_live_file(self, tmp_path):
        path = str(tmp_path / "repro.log")
        sink = RotatingFileSink(path, max_bytes=30, keep=3)
        for i in range(6):
            sink.write(f"rec-{i}\n")
        sink.close()
        with open(path) as fh:
            live = fh.read()
        with open(f"{path}.1") as fh:
            rotated = fh.read()
        assert "rec-5" in live
        # every rotated record is older than every live record
        assert max(rotated.split()) < min(live.split())

    def test_no_interleaved_lines_across_threads(self, tmp_path):
        path = str(tmp_path / "repro.log")
        sink = RotatingFileSink(path, max_bytes=2000, keep=4)

        def writer(tag):
            for i in range(50):
                sink.write(f"{tag}:{i:03d}:" + "payload" * 3 + "\n")

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in ("aa", "bb", "cc")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        seen = []
        for f in sink.generations():
            with open(f) as fh:
                for line in fh:
                    assert line.endswith("\n")
                    tag, num, payload = line.rstrip("\n").split(":")
                    assert tag in ("aa", "bb", "cc")
                    assert payload == "payload" * 3
                    seen.append((tag, num))
        # nothing lost: every (tag, seq) pair lands in some generation
        # that still exists, and the newest records always survive
        for tag in ("aa", "bb", "cc"):
            assert (tag, "049") in seen

    def test_follows_external_rotation(self, tmp_path):
        path = str(tmp_path / "repro.log")
        sink = RotatingFileSink(path)
        sink.write("before\n")
        os.replace(path, path + ".1")  # another process rotates
        sink.write("after\n")
        sink.close()
        with open(path) as fh:
            assert fh.read() == "after\n"
        with open(path + ".1") as fh:
            assert fh.read() == "before\n"

    def test_env_wiring(self, tmp_path, monkeypatch):
        """REPRO_LOG_FILE + REPRO_LOG_MAX_BYTES build a rotating sink."""
        from repro.obs import logging as obs_logging
        path = str(tmp_path / "wired.log")
        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_FILE", path)
        monkeypatch.setenv("REPRO_LOG_MAX_BYTES", "100000")
        obs_logging.configure()
        try:
            obs_logging.get_logger("test.rotation").warning(
                "rotation-smoke", detail="hello")
            with open(path) as fh:
                assert "rotation-smoke" in fh.read()
        finally:
            monkeypatch.delenv("REPRO_LOG_FILE")
            monkeypatch.delenv("REPRO_LOG_MAX_BYTES")
            monkeypatch.delenv("REPRO_LOG")
            obs_logging.configure(stream=None)
