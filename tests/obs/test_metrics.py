"""Shared metrics registry: conflict detection, render consistency,
export/delta/merge arithmetic, and concurrent observation from threads
and pool workers.
"""

import threading

import pytest

from repro.experiments.executor import run_tasks
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture()
def registry():
    """Isolate the process-wide default registry per test."""
    fresh = MetricsRegistry()
    previous = obs_metrics.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs_metrics.set_registry(previous)


class TestConflictDetection:
    def test_conflicting_help_raises(self):
        m = MetricsRegistry()
        m.counter("repro_x_total", "one meaning")
        with pytest.raises(ValueError, match="conflicting help"):
            m.counter("repro_x_total", "another meaning")

    def test_empty_help_is_no_opinion(self):
        m = MetricsRegistry()
        a = m.counter("repro_x_total", "the meaning")
        assert m.counter("repro_x_total") is a
        assert m.counter("repro_x_total", "the meaning") is a

    def test_late_help_is_adopted(self):
        m = MetricsRegistry()
        a = m.counter("repro_x_total")
        assert a.help == ""
        m.counter("repro_x_total", "finally documented")
        assert a.help == "finally documented"

    def test_conflicting_buckets_raise(self):
        m = MetricsRegistry()
        m.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="conflicting buckets"):
            m.histogram("repro_h_seconds", buckets=(1.0, 5.0))

    def test_omitted_buckets_match_anything(self):
        m = MetricsRegistry()
        h = m.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        assert m.histogram("repro_h_seconds") is h
        d = m.histogram("repro_d_seconds")  # default buckets
        assert d.buckets == tuple(sorted(DEFAULT_BUCKETS))
        assert m.histogram("repro_d_seconds",
                           buckets=DEFAULT_BUCKETS) is d

    def test_kind_conflict_raises_type_error(self):
        m = MetricsRegistry()
        m.counter("repro_x")
        with pytest.raises(TypeError):
            m.histogram("repro_x")


class TestRenderConsistency:
    def test_bucket_labels_match_between_json_and_samples(self):
        m = MetricsRegistry()
        h = m.histogram("repro_h_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(3.0)
        json_labels = set(m.to_json()["repro_h_seconds"]["buckets"])
        sample_text = "\n".join(h.samples())
        for label in json_labels - {"+Inf"}:
            assert f'le="{label}"' in sample_text
        # integral bounds render without a trailing .0 in both places
        assert "1" in json_labels and "1.0" not in json_labels
        assert 'le="1"' in sample_text and 'le="1.0"' not in sample_text


class TestExportDeltaMerge:
    def test_counter_round_trip(self):
        a = MetricsRegistry()
        c = a.counter("repro_x_total", "x")
        c.inc(3, kind="a")
        before = a.export()
        c.inc(2, kind="a")
        c.inc(5, kind="b")
        delta = MetricsRegistry.delta(before, a.export())
        b = MetricsRegistry()
        b.counter("repro_x_total", "x").inc(10, kind="a")
        b.merge(delta)
        assert b.counter("repro_x_total").value(kind="a") == 12
        assert b.counter("repro_x_total").value(kind="b") == 5

    def test_zero_deltas_are_dropped(self):
        a = MetricsRegistry()
        a.counter("repro_x_total").inc()
        a.gauge("repro_g").set(4)
        snap = a.export()
        assert MetricsRegistry.delta(snap, a.export()) == {}

    def test_histogram_round_trip(self):
        a = MetricsRegistry()
        h = a.histogram("repro_h_seconds", "h", buckets=(1.0, 10.0))
        h.observe(0.5)
        before = a.export()
        h.observe(5.0)
        delta = MetricsRegistry.delta(before, a.export())
        b = MetricsRegistry()
        b.merge(delta)
        merged = b.histogram("repro_h_seconds")
        assert merged.count() == 1
        assert merged.sum() == 5.0
        assert merged.buckets == (1.0, 10.0)

    def test_merge_creates_missing_metrics(self):
        a = MetricsRegistry()
        a.counter("repro_x_total", "x").inc(7)
        b = MetricsRegistry()
        b.merge(a.export())
        assert b.counter("repro_x_total").value() == 7
        assert b.counter("repro_x_total").help == "x"

    def test_gauge_delta_adds(self):
        a = MetricsRegistry()
        g = a.gauge("repro_g")
        g.set(2)
        before = a.export()
        g.set(5)
        delta = MetricsRegistry.delta(before, a.export())
        b = MetricsRegistry()
        b.gauge("repro_g").set(10)
        b.merge(delta)
        assert b.gauge("repro_g").value() == 13


class TestThreadConcurrency:
    def test_many_threads_one_counter(self, registry):
        c = obs_metrics.counter("repro_thread_total")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc(shard="x")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(shard="x") == n_threads * per_thread

    def test_concurrent_registration_yields_one_metric(self, registry):
        results = []
        barrier = threading.Barrier(6)

        def register():
            barrier.wait()
            results.append(obs_metrics.counter("repro_race_total"))

        threads = [threading.Thread(target=register) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)


def _observed_square(task):
    obs_metrics.counter("repro_obs_test_total",
                        "per-task increments").inc(task)
    obs_metrics.histogram("repro_obs_test_seconds").observe(0.001)
    return task * task


class TestWorkerPoolMerge:
    """Worker-side observations land in the parent default registry with
    the same values for any worker count (the PR's delta-merge
    protocol)."""

    def _run(self, jobs):
        fresh = MetricsRegistry()
        previous = obs_metrics.set_registry(fresh)
        try:
            results = run_tasks(_observed_square, list(range(1, 9)),
                                jobs=jobs)
        finally:
            obs_metrics.set_registry(previous)
        return results, fresh

    def test_serial_counts(self):
        results, registry = self._run(jobs=1)
        assert results == [i * i for i in range(1, 9)]
        assert registry.counter("repro_obs_test_total").total() == 36
        assert registry.histogram("repro_obs_test_seconds").count() == 8

    def test_process_pool_counts_match_serial(self):
        try:
            results, registry = self._run(jobs=2)
        except (OSError, PermissionError):
            pytest.skip("sandbox cannot start worker processes")
        assert results == [i * i for i in range(1, 9)]
        assert registry.counter("repro_obs_test_total").total() == 36
        assert registry.histogram("repro_obs_test_seconds").count() == 8
        # the executor's own accounting rode along
        assert registry.counter("repro_executor_tasks_total").total() == 8
