"""SLO specs, measurements, burn rates, and the evaluation gate."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (ALERT_BURN_RATE, evaluate_slo, load_slo_spec,
                           measurements_from_loadtest,
                           measurements_from_telemetry,
                           quantile_from_histogram, render_slo,
                           validate_slo_spec)

GOOD_SPEC = {
    "name": "test-slo",
    "window_seconds": 60,
    "objectives": [
        {"name": "lat", "kind": "p99_latency", "threshold_seconds": 2.0},
        {"name": "err", "kind": "error_rate", "threshold": 0.1},
        {"name": "hit", "kind": "cache_hit_rate", "floor": 0.5},
    ],
}


class TestSpecs:
    def test_good_spec_validates(self):
        assert validate_slo_spec(GOOD_SPEC) == []

    @pytest.mark.parametrize("mutate,needle", [
        (lambda s: s.pop("objectives"), "objectives"),
        (lambda s: s["objectives"].append({"name": "x", "kind": "bogus"}),
         "bogus"),
        (lambda s: s["objectives"].append(
            {"name": "lat", "kind": "p99_latency",
             "threshold_seconds": 1}), "duplicates"),
        (lambda s: s["objectives"][0].pop("threshold_seconds"),
         "threshold_seconds"),
        (lambda s: s["objectives"][1].update(threshold=1.5), "threshold"),
        (lambda s: s["objectives"][2].update(floor=-0.1), "floor"),
        (lambda s: s.update(window_seconds=-1), "window_seconds"),
    ])
    def test_bad_specs_report_problems(self, mutate, needle):
        spec = json.loads(json.dumps(GOOD_SPEC))
        mutate(spec)
        problems = validate_slo_spec(spec)
        assert problems and any(needle in p for p in problems)

    def test_load_slo_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(GOOD_SPEC))
        assert load_slo_spec(str(path))["name"] == "test-slo"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_slo_spec(str(path))
        path.write_text(json.dumps({"objectives": []}))
        with pytest.raises(ValueError, match="objectives"):
            load_slo_spec(str(path))

    def test_committed_repo_spec_is_valid(self):
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        spec = load_slo_spec(os.path.join(root, "SLO.json"))
        assert validate_slo_spec(spec) == []


class TestQuantile:
    def test_interpolates_inside_bucket(self):
        # 10 observations <= 1.0, 10 in (1.0, 2.0]
        exported = {"buckets": [1.0, 2.0], "counts": [10, 10, 0],
                    "count": 20}
        assert quantile_from_histogram(exported, 0.5) \
            == pytest.approx(1.0)
        assert quantile_from_histogram(exported, 0.75) \
            == pytest.approx(1.5)

    def test_inf_bucket_reports_last_finite_bound(self):
        exported = {"buckets": [1.0], "counts": [0, 5], "count": 5}
        assert quantile_from_histogram(exported, 0.99) == 1.0

    def test_empty_histogram_is_none(self):
        assert quantile_from_histogram({"buckets": [], "counts": [],
                                        "count": 0}, 0.99) is None


class TestMeasurements:
    def test_from_loadtest_report(self):
        report = {"jobs": 100, "lost": 1, "mismatches": 1,
                  "latency": {"p99": 0.5},
                  "service": {"repro_cache_hits_total": 30,
                              "repro_cache_misses_total": 70}}
        m = measurements_from_loadtest(report)
        assert m["p99_latency"] == 0.5
        assert m["error_rate"] == pytest.approx(0.02)
        assert m["cache_hit_rate"] == pytest.approx(0.3)

    def test_from_loadtest_missing_data_is_none(self):
        m = measurements_from_loadtest({"jobs": 0, "latency": {}})
        assert m == {"p99_latency": None, "error_rate": None,
                     "cache_hit_rate": None}

    def _snapshot(self, registry):
        return {"at": 0.0, "metrics": registry.export(), "health": {}}

    def test_from_telemetry_window_uses_deltas(self):
        registry = MetricsRegistry()
        completed = registry.counter("repro_jobs_completed_total")
        hits = registry.counter("repro_cache_hits_total")
        misses = registry.counter("repro_cache_misses_total")
        completed.inc(state="done")
        hits.inc(9)
        misses.inc(1)
        first = self._snapshot(registry)
        # window activity: 1 done + 1 failed, 1 hit + 1 miss
        completed.inc(state="done")
        completed.inc(state="failed")
        hits.inc()
        misses.inc()
        last = self._snapshot(registry)
        m = measurements_from_telemetry([first, last])
        assert m["error_rate"] == pytest.approx(0.5)
        assert m["cache_hit_rate"] == pytest.approx(0.5)

    def test_single_snapshot_measures_since_start(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_cache_hits_total")
        hits.inc(4)
        registry.counter("repro_cache_misses_total").inc(1)
        m = measurements_from_telemetry([self._snapshot(registry)])
        assert m["cache_hit_rate"] == pytest.approx(0.8)

    def test_empty_window(self):
        m = measurements_from_telemetry([])
        assert m["p99_latency"] is None


class TestEvaluation:
    def test_all_ok(self):
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": 0.5,
                                              "error_rate": 0.0,
                                              "cache_hit_rate": 0.9})
        assert evaluation["ok"] is True
        assert evaluation["violations"] == []
        assert {r["name"] for r in evaluation["objectives"]} \
            == {"lat", "err", "hit"}

    def test_violation_and_exit_worthy_report(self):
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": 5.0,
                                              "error_rate": 0.5,
                                              "cache_hit_rate": 0.1})
        assert evaluation["ok"] is False
        assert set(evaluation["violations"]) == {"lat", "err", "hit"}

    def test_burn_rate_normalized_to_threshold(self):
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": 1.0,
                                              "error_rate": 0.05,
                                              "cache_hit_rate": 0.75})
        by_name = {r["name"]: r for r in evaluation["objectives"]}
        assert by_name["lat"]["burn_rate"] == pytest.approx(0.5)
        assert by_name["err"]["burn_rate"] == pytest.approx(0.5)
        # miss share 0.25 over allowed 0.5
        assert by_name["hit"]["burn_rate"] == pytest.approx(0.5)

    def test_alert_fires_before_breach(self):
        value = 2.0 * (ALERT_BURN_RATE + 0.05)  # inside budget, burning
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": value,
                                              "error_rate": None,
                                              "cache_hit_rate": None})
        lat = next(r for r in evaluation["objectives"]
                   if r["name"] == "lat")
        assert lat["ok"] is True and lat["alert"] is True
        assert evaluation["alerts"] == ["lat"]

    def test_no_data_passes_but_flagged(self):
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": None,
                                              "error_rate": None,
                                              "cache_hit_rate": None})
        assert evaluation["ok"] is True
        assert all(r["no_data"] for r in evaluation["objectives"])

    def test_zero_threshold_error_rate(self):
        spec = {"name": "s", "objectives": [
            {"name": "err", "kind": "error_rate", "threshold": 0.0}]}
        ok = evaluate_slo(spec, {"error_rate": 0.0})
        bad = evaluate_slo(spec, {"error_rate": 0.001})
        assert ok["ok"] is True
        assert bad["ok"] is False
        assert bad["objectives"][0]["burn_rate"] == float("inf")

    def test_render_is_stable_text(self):
        evaluation = evaluate_slo(GOOD_SPEC, {"p99_latency": 5.0,
                                              "error_rate": 0.0,
                                              "cache_hit_rate": None})
        text = render_slo(evaluation)
        assert "VIOLATED" in text
        assert "VIOLATE" in text and "no data" in text
        assert "test-slo" in text
