"""The ``repro top`` status board renderer and poll loop."""

import io

from repro.obs.metrics import MetricsRegistry
from repro.obs.top import render_top, run_top

SLO_SPEC = {
    "name": "board-slo",
    "objectives": [
        {"name": "lat", "kind": "p99_latency", "threshold_seconds": 10.0},
    ],
}


def _snapshot(at=1000.0):
    registry = MetricsRegistry()
    completed = registry.counter("repro_jobs_completed_total")
    completed.inc(3, state="done")
    shard = registry.counter("repro_cluster_shard_requests_total")
    shard.inc(8, shard="shard-a", outcome="hit")
    shard.inc(2, shard="shard-a", outcome="miss")
    shard.inc(1, shard="shard-a", outcome="put")
    return {
        "at": at,
        "metrics": registry.export(),
        "health": {
            "tier": "cluster",
            "uptime": 12.5,
            "queue_depth": 3,
            "queue_capacity": 256,
            "jobs_by_state": {"queued": 3, "running": 1, "done": 7},
            "cluster": {
                "workers_alive": 1,
                "worker_nodes": {
                    "worker-0": {"alive": True, "running": 1,
                                 "done": 5, "failed": 0,
                                 "last_heartbeat_age": 0.4,
                                 "oldest_lease_age": 1.2},
                    "worker-1": {"alive": False, "running": 0,
                                 "done": 2, "failed": 1,
                                 "last_heartbeat_age": 9.0,
                                 "oldest_lease_age": None},
                },
            },
        },
    }


class TestRenderTop:
    def test_no_snapshot_banner(self):
        board = render_top(None)
        assert "no telemetry yet" in board

    def test_board_sections(self):
        board = render_top(_snapshot(), now=1001.0)
        assert "queue 3/256" in board
        assert "queued=3" in board and "running=1" in board
        assert "workers (1/2 alive)" in board
        assert "worker-0" in board and "worker-1" in board
        assert "NO" in board          # dead worker flagged
        assert "0.4s" in board        # heartbeat age
        assert "1.2s" in board        # lease age
        assert "cache shards" in board
        assert "hit-rate" in board and "80.0%" in board
        assert "completed: done=3" in board

    def test_events_tail(self):
        events = [{"seq": i, "at": 999.0, "kind": "node-join",
                   "node": f"w{i}"} for i in range(12)]
        board = render_top(_snapshot(), events, now=1001.0)
        assert "recent events" in board
        assert "node=w11" in board       # newest shown
        assert "node=w0" not in board    # only the tail of 8

    def test_slo_section(self):
        board = render_top(_snapshot(), slo_spec=SLO_SPEC, now=1001.0)
        assert "SLO board-slo" in board

    def test_stale_snapshot_age_shown(self):
        board = render_top(_snapshot(at=900.0), now=1000.0)
        assert "snapshot" in board and "old" in board


class TestRunTop:
    def test_unreachable_gateway_returns_1(self):
        stream = io.StringIO()
        # a port from the reserved block nothing listens on
        rc = run_top("127.0.0.1", 1, interval=0.0, iterations=2,
                     stream=stream, ansi=False)
        assert rc == 1
        assert "unreachable" in stream.getvalue()

    def test_renders_against_live_server(self, tmp_path):
        from repro.service.server import ParallelizationServer
        server = ParallelizationServer(host="127.0.0.1", port=0, jobs=1,
                                       inline=True)
        host, port = server.start()
        try:
            stream = io.StringIO()
            rc = run_top(host, port, interval=0.0, iterations=1,
                         stream=stream, ansi=False)
        finally:
            server.stop()
        assert rc == 0
        out = stream.getvalue()
        assert "repro top" in out
        assert "single-node" in out
