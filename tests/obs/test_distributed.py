"""Distributed-tracing primitives: contexts, recorders, clocks, stitching."""

import pytest

from repro.obs.distributed import (ClockModel, SpanRecorder, TraceContext,
                                   new_trace_id, parent_child_monotonic,
                                   spans_by_trace, stitch_spans,
                                   validate_trace_ctx)
from repro.trace.chrome import validate_chrome_trace


class TestTraceContext:
    def test_roundtrip(self):
        ctx = TraceContext()
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled is True

    def test_traceparent_shape(self):
        header = TraceContext().to_traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32
        assert len(span_id) == 16
        assert flags == "01"

    def test_child_shares_trace_id_with_fresh_span(self):
        root = TraceContext()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id

    def test_unsampled_flag_survives(self):
        ctx = TraceContext(sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        assert TraceContext.from_traceparent(
            ctx.to_traceparent()).sampled is False

    @pytest.mark.parametrize("header", [
        "", "garbage", "00-abc-def-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # zero span id
        "zz-" + "1" * 32 + "-" + "2" * 16 + "-01",   # bad version hex
    ])
    def test_malformed_traceparent_rejected(self, header):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(header)

    def test_from_dict_none_is_none(self):
        assert TraceContext.from_dict(None) is None

    def test_from_dict_non_object_raises(self):
        with pytest.raises(ValueError):
            TraceContext.from_dict("00-aa-bb-01")

    def test_validate_trace_ctx(self):
        assert validate_trace_ctx(None) is None
        assert validate_trace_ctx(TraceContext().to_dict()) is None
        assert "trace_ctx" in validate_trace_ctx({"traceparent": "nope"})
        assert "trace_ctx" in validate_trace_ctx([1, 2])


class TestSpanRecorder:
    def test_record_and_drain(self):
        rec = SpanRecorder("node-a")
        ctx = TraceContext()
        rec.record("execute", ctx.child(), cat="worker",
                   start_wall=100.0, duration=0.5,
                   parent_id=ctx.span_id, job_id="job-1")
        spans = rec.drain()
        assert len(spans) == 1 and len(rec) == 0
        span = spans[0]
        assert span["name"] == "execute"
        assert span["node"] == "node-a"
        assert span["trace_id"] == ctx.trace_id
        assert span["parent_id"] == ctx.span_id
        assert span["ts_wall"] == 100.0 and span["dur"] == 0.5
        assert span["args"]["job_id"] == "job-1"

    def test_span_context_manager_times_and_parents(self):
        rec = SpanRecorder("node-a")
        root = TraceContext()
        with rec.span("lookup", root, cat="cache", digest="d1") as open_span:
            downstream = open_span.ctx
        (span,) = rec.snapshot()
        assert span["parent_id"] == root.span_id
        assert span["span_id"] == downstream.span_id
        assert span["dur"] >= 0.0
        assert span["args"]["digest"] == "d1"

    def test_span_records_error_class_on_exception(self):
        rec = SpanRecorder("node-a")
        with pytest.raises(RuntimeError):
            with rec.span("boom", TraceContext()):
                raise RuntimeError("x")
        (span,) = rec.drain()
        assert span["args"]["error"] == "RuntimeError"

    def test_bounded_buffer_counts_drops(self):
        rec = SpanRecorder("node-a", max_buffer=3)
        ctx = TraceContext()
        for i in range(5):
            rec.record(f"s{i}", ctx.child(), start_wall=float(i))
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [s["name"] for s in rec.drain()] == ["s2", "s3", "s4"]

    def test_drain_limit_keeps_pending(self):
        rec = SpanRecorder("node-a")
        ctx = TraceContext()
        for i in range(4):
            rec.record(f"s{i}", ctx.child())
        first = rec.drain(limit=3)
        assert [s["name"] for s in first] == ["s0", "s1", "s2"]
        assert [s["name"] for s in rec.drain()] == ["s3"]


class TestClockModel:
    def test_min_filter_keeps_least_delayed_sample(self):
        clock = ClockModel()
        # true offset 2.0s; delays 0.5, 0.1, 0.9
        clock.observe("w", remote_wall=100.0, local_wall=102.5)
        clock.observe("w", remote_wall=200.0, local_wall=202.1)
        clock.observe("w", remote_wall=300.0, local_wall=302.9)
        assert clock.offset("w") == pytest.approx(2.1)
        assert clock.rebase("w", 50.0) == pytest.approx(52.1)

    def test_unknown_node_offset_is_zero(self):
        clock = ClockModel()
        assert clock.offset("nobody") == 0.0
        assert clock.rebase("nobody", 7.0) == 7.0

    def test_roundtrip_through_dict(self):
        clock = ClockModel()
        clock.observe("w", 10.0, local_wall=10.25)
        exported = clock.to_dict()
        assert exported["w"]["samples"] == 1
        rebuilt = ClockModel.from_offsets(exported)
        assert rebuilt.offset("w") == pytest.approx(0.25)


def _span(node, name, ctx, parent=None, ts=0.0, dur=0.1, cat="x", **args):
    span = {"name": name, "cat": cat, "node": node,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_id": parent.span_id if parent else None,
            "ts_wall": ts, "dur": dur}
    if args:
        span["args"] = args
    return span


class TestStitching:
    def test_nodes_get_distinct_pid_lanes(self):
        root = TraceContext()
        spans = [_span("gateway", "job", root.child(), root, ts=1.0),
                 _span("worker-0", "execute", root.child(), root, ts=1.1)]
        chrome = stitch_spans(spans)
        meta = {e["args"]["name"]: e["pid"]
                for e in chrome["traceEvents"] if e.get("ph") == "M"}
        assert set(meta) == {"gateway", "worker-0"}
        assert meta["gateway"] != meta["worker-0"]
        assert not validate_chrome_trace(chrome)

    def test_rebase_applies_clock_offsets(self):
        root = TraceContext()
        clock = ClockModel.from_offsets({"worker-0": {"offset": -5.0,
                                                      "samples": 3}})
        spans = [_span("gateway", "job", root.child(), root, ts=10.0,
                       dur=1.0),
                 # worker clock runs 5s ahead; raw ts is later on paper
                 _span("worker-0", "execute", root.child(), root,
                       ts=15.2, dur=0.2)]
        chrome = stitch_spans(spans, clock)
        xs = {e["name"]: e["ts"] for e in chrome["traceEvents"]
              if e.get("ph") == "X"}
        # rebased: worker 15.2 - 5.0 = 10.2, i.e. 0.2s after the job span
        assert xs["execute"] - xs["job"] == pytest.approx(0.2e6, abs=1.0)

    def test_child_clamped_to_parent_start(self):
        root = TraceContext()
        parent_ctx = root.child()
        child_ctx = root.child()
        spans = [_span("gateway", "parent", parent_ctx, root, ts=10.0),
                 # residual skew: child "starts" before its parent
                 _span("worker-0", "child", child_ctx, parent_ctx,
                       ts=9.9995)]
        chrome = stitch_spans(spans)
        assert parent_child_monotonic(chrome) == []
        xs = {e["name"]: e["ts"] for e in chrome["traceEvents"]
              if e.get("ph") == "X"}
        assert xs["child"] >= xs["parent"]

    def test_trace_id_filter(self):
        a, b = TraceContext(), TraceContext()
        spans = [_span("g", "one", a.child(), ts=1.0),
                 _span("g", "two", b.child(), ts=2.0)]
        chrome = stitch_spans(spans, trace_id=a.trace_id)
        names = [e["name"] for e in chrome["traceEvents"]
                 if e.get("ph") == "X"]
        assert names == ["one"]
        assert chrome["otherData"]["trace_ids"] == [a.trace_id]

    def test_decisions_ride_along(self):
        root = TraceContext()
        spans = [_span("g", "job", root.child(), root, ts=1.0)]
        chrome = stitch_spans(
            spans,
            decisions=[{"unit": "MAIN", "var": "I", "parallel": True}],
            site_decisions=[{"callee": "F", "site_id": 1}])
        assert chrome["loopDecisions"] == [
            {"unit": "MAIN", "var": "I", "parallel": True}]
        assert chrome["siteDecisions"] == [{"callee": "F", "site_id": 1}]
        assert not validate_chrome_trace(chrome)

    def test_spans_by_trace_groups(self):
        a, b = TraceContext(), TraceContext()
        spans = [_span("g", "s1", a.child()), _span("g", "s2", a.child()),
                 _span("g", "s3", b.child())]
        grouped = spans_by_trace(spans)
        assert len(grouped[a.trace_id]) == 2
        assert len(grouped[b.trace_id]) == 1

    def test_monotonic_detects_disorder(self):
        # hand-build a chrome dict whose child precedes its parent
        chrome = {"traceEvents": [
            {"ph": "X", "name": "parent", "pid": 1, "tid": 0,
             "ts": 100.0, "dur": 10.0, "args": {"span_id": "p", }},
            {"ph": "X", "name": "child", "pid": 1, "tid": 1,
             "ts": 50.0, "dur": 5.0,
             "args": {"span_id": "c", "parent_id": "p"}},
        ]}
        assert parent_child_monotonic(chrome)

    def test_empty_input_is_valid(self):
        chrome = stitch_spans([])
        assert not validate_chrome_trace(chrome)
        assert chrome["otherData"]["nodes"] == []


def test_new_trace_id_is_32_hex():
    tid = new_trace_id()
    assert len(tid) == 32
    int(tid, 16)
