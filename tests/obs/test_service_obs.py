"""Service observability: correlation IDs across the wire, worker
metric-delta merging, and registry parity between the CLI path and the
service path.
"""

import pytest

from repro.experiments.pipeline import Config, clear_base_cache, run_config
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.perfect.suite import Benchmark, clear_program_cache
from repro.service.client import ServiceClient
from repro.service.jobs import payload_digest
from repro.service.server import ParallelizationServer, run_job_observed

SOURCE = """      PROGRAM P
      COMMON /D/ A(40,4)
      DO 10 I = 1, 40
        DO 5 J = 1, 4
          A(I,J) = I + J*0.5
    5   CONTINUE
   10 CONTINUE
      T = 0.0
      DO 20 I = 1, 40
        T = T + A(I,3)
   20 CONTINUE
      WRITE(6,*) T
      END
"""

#: deterministic dependence/loop counters the worker and CLI paths must
#: agree on (timing histograms legitimately differ run to run)
PARITY_METRICS = ("repro_dep_tests_total", "repro_dep_independent_total",
                  "repro_dep_assumed_total", "repro_loops_total")


def _payload(tag="obs"):
    return {"kind": "sources", "sources": {"p.f": SOURCE},
            "annotations": "", "config": "none", "name": tag}


@pytest.fixture()
def registry():
    previous = obs_metrics.set_registry(MetricsRegistry())
    try:
        yield obs_metrics.get_registry()
    finally:
        obs_metrics.set_registry(previous)


@pytest.fixture()
def server(registry):
    server = ParallelizationServer(port=0, jobs=2, inline=True,
                                   retry_backoff=0.01)
    server.start()
    yield server
    server.stop()


def _counter_values(registry, names):
    out = {}
    for name in names:
        metric = registry.counter(name)
        exported = metric.export()
        out[name] = {tuple(map(tuple, k)): v
                     for k, v in exported["values"]}
    return out


class TestCtxPropagation:
    def test_client_ships_current_context(self, server):
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        with obs_logging.log_context(run_id="svc-run-1"):
            response = client.submit(_payload("ctx1"), wait=True,
                                     wait_timeout=30.0)
        assert response["state"] == "done"
        job = server.get_job(response["job_id"])
        assert job.ctx == {"run_id": "svc-run-1"}

    def test_ctx_not_part_of_dedup_digest(self, server):
        assert payload_digest(_payload("d")) == payload_digest(_payload("d"))
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        with obs_logging.log_context(run_id="first"):
            r1 = client.submit(_payload("dedup"), wait=True,
                               wait_timeout=30.0)
        with obs_logging.log_context(run_id="second"):
            r2 = client.submit(_payload("dedup"), wait=True,
                               wait_timeout=30.0)
        assert r2["cached"] or r2["job_id"] == r1["job_id"]

    def test_malformed_ctx_rejected(self, server):
        response = server.handle_request(
            {"op": "submit", "payload": _payload("bad"),
             "ctx": {"run_id": {"nested": True}}})
        assert not response["ok"]
        assert response["code"] == "bad-request"


class TestWorkerObserved:
    def test_inline_path_writes_parent_registry(self, registry):
        result, delta = run_job_observed((_payload("inline"), {}))
        assert delta is None
        assert result["config"] == "none"
        assert registry.counter("repro_loops_total").total() > 0


class TestMetricsOpUnion:
    def test_metrics_op_exposes_pipeline_counters(self, server, registry):
        """The metrics op must render the service registry *and* the
        process-default registry pipeline deltas land in — otherwise
        ``svc-status`` never shows the dependence/cache counters."""
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        response = client.submit(_payload("union"), wait=True,
                                 wait_timeout=30.0)
        assert response["state"] == "done"
        answer = server.handle_request({"op": "metrics",
                                        "format": "prometheus"})
        assert answer["ok"]
        text = answer["text"]
        assert "repro_jobs_submitted_total" in text   # service side
        assert "repro_loops_total" in text            # pipeline side
        as_json = server.handle_request({"op": "metrics"})["metrics"]
        assert "repro_dep_tests_total" in as_json


class TestRegistryParity:
    def test_service_matches_cli_counters(self, server, registry):
        """Same work through the service and through run_config must
        land identical deterministic counter values in the default
        registry."""
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        response = client.submit(_payload("parity"), wait=True,
                                 wait_timeout=30.0)
        assert response["state"] == "done"
        service_values = _counter_values(registry, PARITY_METRICS)

        cli_registry = obs_metrics.set_registry(MetricsRegistry())
        try:
            # a fresh parse of the same sources, exactly as the CLI does
            clear_program_cache()
            clear_base_cache()
            benchmark = Benchmark(name="parity",
                                  description="parity check",
                                  sources={"p.f": SOURCE})
            run_config(benchmark, Config("none"))
            cli_values = _counter_values(obs_metrics.get_registry(),
                                         PARITY_METRICS)
        finally:
            obs_metrics.set_registry(cli_registry)

        assert service_values == cli_values
        assert any(service_values[name] for name in PARITY_METRICS)
