"""Structured logging: record schema, level thresholds, context
layering, and correlation-ID propagation across the executor boundary.
"""

import io
import json

import pytest

from repro.experiments.executor import run_tasks
from repro.obs import logging as obs_logging
from repro.obs.logging import (LEVELS, configure, current_context,
                               get_logger, log_context, new_run_id,
                               validate_record)


@pytest.fixture()
def capture():
    """Route logs to a buffer at info/json; restore defaults after."""
    buf = io.StringIO()
    configure(mode="json", level="info", stream=buf)
    try:
        yield buf
    finally:
        configure()


def _records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestEmission:
    def test_json_records_validate(self, capture):
        log = get_logger("repro.test")
        with log_context(run_id="abc123", benchmark="TRFD"):
            log.info("unit-done", loops=4, seconds=0.25)
        (record,) = _records(capture)
        assert validate_record(record) == []
        assert record["event"] == "unit-done"
        assert record["logger"] == "repro.test"
        assert record["run_id"] == "abc123"
        assert record["benchmark"] == "TRFD"
        assert record["loops"] == 4

    def test_level_threshold(self, capture):
        log = get_logger("repro.test")
        log.debug("hidden")
        log.info("shown")
        log.error("also-shown")
        events = [r["event"] for r in _records(capture)]
        assert events == ["shown", "also-shown"]

    def test_text_mode_line(self):
        buf = io.StringIO()
        configure(mode="text", level="info", stream=buf)
        try:
            with log_context(run_id="r1"):
                get_logger("repro.test").info("evt", n=2)
        finally:
            configure()
        line = buf.getvalue().strip()
        assert "INFO" in line and "repro.test" in line and "evt" in line
        assert "run_id=r1" in line and "n=2" in line

    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        buf = io.StringIO()
        configure(stream=buf)  # no env, no args
        try:
            get_logger("repro.test").info("quiet")
            get_logger("repro.test").warning("loud")
        finally:
            configure()
        events = [r.split()[3] for r in buf.getvalue().splitlines()]
        assert events == ["loud"]


class TestContext:
    def test_nesting_and_restore(self):
        assert current_context() == {}
        with log_context(run_id="r1"):
            with log_context(benchmark="ADM", config="none"):
                assert current_context() == {"run_id": "r1",
                                             "benchmark": "ADM",
                                             "config": "none"}
            assert current_context() == {"run_id": "r1"}
        assert current_context() == {}

    def test_none_values_dropped(self):
        with log_context(run_id="r1", job_id=None):
            assert current_context() == {"run_id": "r1"}

    def test_run_ids_are_unique(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 for i in ids)


class TestValidateRecord:
    def test_rejects_bad_shapes(self):
        assert validate_record("not a dict")
        assert validate_record({"ts": -1, "level": "info",
                                "logger": "l", "event": "e"})
        assert validate_record({"ts": 1.0, "level": "loud",
                                "logger": "l", "event": "e"})
        assert validate_record({"ts": 1.0, "level": "info",
                                "logger": "", "event": "e"})
        assert validate_record({"ts": 1.0, "level": "info",
                                "logger": "l", "event": "e",
                                "nested": {"no": 1}})

    def test_accepts_minimal_record(self):
        assert validate_record({"ts": 1.0, "level": "info",
                                "logger": "l", "event": "e"}) == []


def _task_context(_task):
    return dict(obs_logging.current_context())


class TestExecutorPropagation:
    """The parent's correlation IDs are re-established inside pool
    workers (``_observed_task`` ships them with each task)."""

    def test_context_reaches_workers(self):
        with log_context(run_id="runX", benchmark="QCD"):
            try:
                contexts = run_tasks(_task_context, [1, 2, 3], jobs=2)
            except (OSError, PermissionError):
                pytest.skip("sandbox cannot start worker processes")
        for ctx in contexts:
            assert ctx["run_id"] == "runX"
            assert ctx["benchmark"] == "QCD"

    def test_context_in_serial_mode(self):
        with log_context(run_id="runY"):
            contexts = run_tasks(_task_context, [1], jobs=1)
        assert contexts[0]["run_id"] == "runY"


def test_levels_table_is_ordered():
    assert (LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
            < LEVELS["error"])
