"""Tests for the dependence-diagnosis API."""

from repro.analysis.loops import iter_loops
from repro.polaris.explain import diagnose_loop, diagnose_program
from repro.program import Program


def diagnose_first(src):
    prog = Program.from_source(src)
    unit = prog.units[0]
    info = next(iter_loops(unit.body))
    return diagnose_loop(prog, unit, info)


class TestDiagnoseLoop:
    def test_parallel_loop_clean(self):
        d = diagnose_first(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = I*2.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert d.parallel
        assert "parallelizable" in d.describe()

    def test_flow_dependence_reported(self):
        d = diagnose_first(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 2, N\n"
            "        A(I) = A(I-1) + 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not d.parallel
        kinds = {e.kind for e in d.dependences}
        assert "flow" in kinds
        assert any("A(I)" in e.describe() for e in d.dependences)

    def test_output_dependence_reported(self):
        d = diagnose_first(
            "      SUBROUTINE S(A, IDX, N)\n"
            "      DIMENSION A(*), IDX(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(IDX(I)) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert not d.parallel
        assert {e.kind for e in d.dependences} == {"output"}

    def test_multiple_obstacles_all_listed(self):
        # unlike the legality analyzer, the diagnosis does not stop early
        d = diagnose_first(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 2, N\n"
            "        WRITE(6,*) I\n"
            "        CALL OPAQUE(I)\n"
            "        T = A(I)\n"
            "        A(I) = A(I-1) + T\n"
            "        A(I) = U\n"
            "        U = A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        text = d.describe()
        assert "I/O" in text
        assert "OPAQUE" in text
        assert "scalar U" in text
        assert any(e.kind == "flow" for e in d.dependences)

    def test_privatizable_array_not_reported(self):
        d = diagnose_first(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(100,8), T(8)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, 8\n"
            "          T(J) = A(I,J)\n"
            "   20   CONTINUE\n"
            "        DO 30 J = 1, 8\n"
            "          A(I,J) = T(9-J)\n"
            "   30   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert d.parallel, d.describe()

    def test_annotation_candidates(self):
        d = diagnose_first(
            "      PROGRAM P\n"
            "      DO 10 I = 1, 100\n"
            "        CALL FSMP(I, I)\n"
            "        CALL FSMP(I, I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert d.annotation_candidates == ["FSMP"]


class TestDiagnoseProgram:
    def test_ranking_prefers_annotation_candidates(self):
        from repro.perfect import get_benchmark
        prog = get_benchmark("dyfesm").program()
        diags = diagnose_program(prog)
        serial = [d for d in diags if not d.parallel]
        assert serial
        # the first serial diagnoses are the call-blocked loops (where an
        # annotation would pay off), matching the paper's workflow
        first = serial[0]
        assert first.annotation_candidates
        # and the overall list covers every loop in the program
        from repro.analysis.loops import iter_loops
        total = sum(1 for u in prog.units for _ in iter_loops(u.body))
        assert len(diags) == total
