"""End-to-end tests of the Polaris-like parallelizer on small programs.

Each test encodes one legality rule or one of the paper's scenarios.
"""

from repro.fortran import ast
from repro.polaris import Polaris, PolarisOptions
from repro.polaris.openmp import count_directives, parallel_loops
from repro.program import Program


def run(src, **opts):
    prog = Program.from_source(src)
    report = Polaris(PolarisOptions(**opts)).run(prog)
    return prog, report


def parallel_vars(prog):
    return [omp.loop.var for u in prog.units
            for omp in parallel_loops(u.body)]


class TestBasicLegality:
    def test_independent_loop_parallelized(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = A(I)*2.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == ["I"]
        assert report.parallel_count() == 1

    def test_carried_dependence_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 2, N\n"
            "        A(I) = A(I-1)*2.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "array-dep"

    def test_io_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = 0.0\n"
            "        WRITE(6,*) I\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "io"

    def test_stop_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).LT.0.0) STOP 'BAD'\n"
            "        A(I) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "control-flow"

    def test_goto_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        IF (A(I).LT.0.0) GO TO 10\n"
            "        A(I) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []

    def test_opaque_call_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        CALL FSMP(I, I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "call"
        assert report.verdicts[0].detail == "FSMP"

    def test_pure_function_call_ok(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = SQ(A(I))\n"
            "   10 CONTINUE\n"
            "      END\n"
            "      REAL FUNCTION SQ(X)\n"
            "      SQ = X*X\n"
            "      END\n")
        assert "I" in parallel_vars(prog)

    def test_impure_subroutine_call_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      COMMON /G/ TOTAL\n"
            "      DO 10 I = 1, N\n"
            "        CALL BUMP(A(I))\n"
            "   10 CONTINUE\n"
            "      END\n"
            "      SUBROUTINE BUMP(X)\n"
            "      COMMON /G/ TOTAL\n"
            "      TOTAL = TOTAL + X\n"
            "      END\n")
        assert parallel_vars(prog) == []


class TestScalars:
    def test_private_temporary(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        T = A(I)*2.0\n"
            "        A(I) = T + 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == ["I"]
        omp = next(parallel_loops(prog.units[0].body))
        assert "T" in omp.private

    def test_reduction_clause(self):
        prog, report = run(
            "      SUBROUTINE S(A, N, S1)\n"
            "      DIMENSION A(*)\n"
            "      S1 = 0.0\n"
            "      DO 10 I = 1, N\n"
            "        S1 = S1 + A(I)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == ["I"]
        omp = next(parallel_loops(prog.units[0].body))
        assert omp.reductions == (("+", "S1"),)

    def test_carried_scalar_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = T\n"
            "        T = A(I) + 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "scalar-dep"

    def test_induction_variable_handled(self):
        # Figure 2's inner loop: I = I + 1 with X2(I) writes
        prog, report = run(
            "      SUBROUTINE PCINIT(X2, FX, NSP)\n"
            "      DIMENSION X2(*), FX(*)\n"
            "      I = 0\n"
            "      DO 200 J = 1, NSP\n"
            "        I = I + 1\n"
            "        X2(I) = FX(I)*2.0\n"
            "  200 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == ["J"]


class TestArrays:
    def test_array_privatization(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(100,64), T(64)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, 64\n"
            "          T(J) = A(I,J)\n"
            "   20   CONTINUE\n"
            "        DO 30 J = 1, 64\n"
            "          A(I,J) = T(65-J)\n"
            "   30   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        vars_ = parallel_vars(prog)
        assert "I" in vars_
        omp = [o for u in prog.units for o in parallel_loops(u.body)
               if o.loop.var == "I"][0]
        assert "T" in omp.private

    def test_partial_temp_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, N, M)\n"
            "      DIMENSION A(100,64), T(64)\n"
            "      DO 10 I = 1, N\n"
            "        DO 20 J = 1, M\n"
            "          T(J) = A(I,J)\n"
            "   20   CONTINUE\n"
            "        A(I,1) = T(64)\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert all(v.reason == "array-dep" or v.parallelized is False
                   for v in report.verdicts if v.var == "I")
        assert "I" not in parallel_vars(prog)

    def test_subscripted_subscript_blocks(self):
        prog, report = run(
            "      SUBROUTINE S(A, IDX, N)\n"
            "      DIMENSION A(*), IDX(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(IDX(I)) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []

    def test_unique_style_subscript_parallel(self):
        prog, report = run(
            "      SUBROUTINE S(A, N)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, N\n"
            "        A(257*IBASE + I) = 1.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == ["I"]

    def test_different_columns_parallel(self):
        prog, report = run(
            "      SUBROUTINE S(FE, N)\n"
            "      DIMENSION FE(8,100)\n"
            "      DO 10 K = 1, N\n"
            "        DO 20 J = 1, 8\n"
            "          FE(J,K) = 0.0\n"
            "   20   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert set(parallel_vars(prog)) == {"K", "J"}


class TestDriverBehaviour:
    def test_nested_parallelization(self):
        prog, report = run(
            "      SUBROUTINE S(A)\n"
            "      DIMENSION A(64,64)\n"
            "      DO 10 I = 1, 64\n"
            "        DO 20 J = 1, 64\n"
            "          A(J,I) = 0.0\n"
            "   20   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert count_directives(prog) == 2

    def test_nested_disabled(self):
        prog, report = run(
            "      SUBROUTINE S(A)\n"
            "      DIMENSION A(64,64)\n"
            "      DO 10 I = 1, 64\n"
            "        DO 20 J = 1, 64\n"
            "          A(J,I) = 0.0\n"
            "   20   CONTINUE\n"
            "   10 CONTINUE\n"
            "      END\n", parallelize_nested=False)
        assert count_directives(prog) == 1

    def test_unprofitable_small_trip(self):
        prog, report = run(
            "      SUBROUTINE S(A)\n"
            "      DIMENSION A(*)\n"
            "      DO 10 I = 1, 2\n"
            "        A(I) = 0.0\n"
            "   10 CONTINUE\n"
            "      END\n")
        assert parallel_vars(prog) == []
        assert report.verdicts[0].reason == "unprofitable"

    def test_tuning_disable(self):
        src = ("      SUBROUTINE S(A, N)\n"
               "      DIMENSION A(*)\n"
               "      DO 10 I = 1, N\n"
               "        A(I) = 0.0\n"
               "   10 CONTINUE\n"
               "      END\n")
        prog, report = run(src)
        origin = next(iter(report.parallel_origins()))
        prog2, report2 = run(src, disabled_origins=frozenset({origin}))
        assert parallel_vars(prog2) == []
        assert report2.verdicts[0].reason == "tuning-disabled"

    def test_report_origins_stable_across_runs(self):
        src = ("      SUBROUTINE S(A, N)\n"
               "      DIMENSION A(*)\n"
               "      DO 10 I = 1, N\n"
               "        A(I) = 0.0\n"
               "   10 CONTINUE\n"
               "      END\n")
        _, r1 = run(src)
        _, r2 = run(src)
        assert r1.parallel_origins() == r2.parallel_origins()

    def test_figure2_caller_blocked_without_inlining(self):
        # caller loop invoking PCINIT is serial in the no-inlining config
        prog, report = run(
            "      PROGRAM MAIN\n"
            "      COMMON /BLK/ T(1000), IX(64)\n"
            "      DO 5 K = 1, 10\n"
            "        CALL PCINIT(T(IX(7)+1), 16)\n"
            "    5 CONTINUE\n"
            "      END\n"
            "      SUBROUTINE PCINIT(X2, NSP)\n"
            "      DIMENSION X2(*)\n"
            "      DO 200 J = 1, NSP\n"
            "        X2(J) = 2.0\n"
            "  200 CONTINUE\n"
            "      END\n")
        by_unit = {v.unit: v for v in report.verdicts}
        assert not by_unit["MAIN"].parallelized
        assert by_unit["MAIN"].reason == "call"
        assert by_unit["PCINIT"].parallelized


class TestExactOption:
    COUPLED = ("      SUBROUTINE S(A)\n"
               "      DIMENSION A(64,64)\n"
               "      DO 10 I = 1, 30\n"
               "        DO 20 J = 1, 30\n"
               "          A(I+J, I-J+31) = A(I+J, I-J+31)*0.5\n"
               "   20   CONTINUE\n"
               "   10 CONTINUE\n"
               "      END\n")

    def test_coupled_subscripts_need_exact(self):
        # per-dimension tests cannot separate the coupled pair, the joint
        # Fourier-Motzkin system can
        _, coarse = run(self.COUPLED)
        assert "I" not in parallel_vars(_)
        prog, report = run(self.COUPLED, use_exact=True)
        assert set(parallel_vars(prog)) == {"I", "J"}

    def test_exact_result_is_sound(self):
        src = ("      PROGRAM P\n"
               "      COMMON /D/ A(64,64)\n"
               "      DO 5 J = 1, 64\n"
               "        DO 5 I = 1, 64\n"
               "          A(I,J) = I + J*0.5\n"
               "    5 CONTINUE\n"
               "      DO 10 I = 1, 30\n"
               "        DO 20 J = 1, 30\n"
               "          A(I+J, I-J+31) = A(I+J, I-J+31)*0.5\n"
               "   20   CONTINUE\n"
               "   10 CONTINUE\n"
               "      END\n")
        from repro.runtime import INTEL_MAC, diff_test
        prog, _ = run(src, use_exact=True)
        assert diff_test(prog, INTEL_MAC).passed
