"""Metrics registry: values, JSON rendering, Prometheus text format."""

from repro.service.metrics import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        m = MetricsRegistry()
        c = m.counter("repro_test_total", "a test counter")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert m.to_json()["repro_test_total"] == 3

    def test_labels(self):
        m = MetricsRegistry()
        c = m.counter("repro_jobs_completed_total")
        c.inc(state="done")
        c.inc(state="done")
        c.inc(state="failed")
        assert c.value(state="done") == 2
        assert c.value(state="failed") == 1
        assert c.total() == 3
        rendered = m.to_json()["repro_jobs_completed_total"]
        assert rendered['{state="done"}'] == 2

    def test_untouched_counter_renders_zero(self):
        m = MetricsRegistry()
        m.counter("repro_untouched_total")
        assert m.to_json()["repro_untouched_total"] == 0

    def test_get_or_create_idempotent(self):
        m = MetricsRegistry()
        assert m.counter("repro_x_total") is m.counter("repro_x_total")


class TestGauge:
    def test_set_inc_dec(self):
        m = MetricsRegistry()
        g = m.gauge("repro_queue_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4
        assert m.to_json()["repro_queue_depth"] == 4


class TestHistogram:
    def test_buckets_are_cumulative(self):
        m = MetricsRegistry()
        h = m.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        data = m.to_json()["repro_lat_seconds"]
        assert data["count"] == 5
        assert data["sum"] == 56.05
        # bucket labels use the Prometheus float rendering (1, not 1.0)
        # consistently across to_json() and samples()
        assert data["buckets"]["0.1"] == 1
        assert data["buckets"]["1"] == 3
        assert data["buckets"]["10"] == 4
        assert data["buckets"]["+Inf"] == 5


class TestPrometheusText:
    def test_format(self):
        m = MetricsRegistry()
        m.counter("repro_jobs_submitted_total", "jobs accepted").inc(7)
        m.gauge("repro_queue_depth", "queue depth").set(2)
        m.counter("repro_jobs_completed_total").inc(state="done")
        h = m.histogram("repro_lat_seconds", "latency", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        text = m.to_prometheus()
        assert "# HELP repro_jobs_submitted_total jobs accepted" in text
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 7" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_jobs_completed_total{state="done"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_sum 2.5" in text
        assert "repro_lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_type_conflict_rejected(self):
        import pytest
        m = MetricsRegistry()
        m.counter("repro_x")
        with pytest.raises(TypeError):
            m.gauge("repro_x")
