"""Framing tests: length-prefixed JSON over real socket pairs."""

import socket
import struct

import pytest

from repro.service import protocol


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestRoundtrip:
    def test_simple(self, pair):
        a, b = pair
        protocol.send_message(a, {"op": "health"})
        assert protocol.recv_message(b) == {"op": "health"}

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            protocol.send_message(a, {"i": i})
        assert [protocol.recv_message(b)["i"] for i in range(5)] == \
            [0, 1, 2, 3, 4]

    def test_unicode_payload(self, pair):
        a, b = pair
        message = {"text": "ω ≤ Δ — ünïcode"}
        protocol.send_message(a, message)
        assert protocol.recv_message(b) == message

    def test_large_payload(self, pair):
        a, b = pair
        message = {"sources": {"big.f": "C" * 200_000}}
        # sendall on a socketpair buffer can deadlock if the reader
        # waits; send from a thread
        import threading
        t = threading.Thread(target=protocol.send_message,
                             args=(a, message))
        t.start()
        assert protocol.recv_message(b) == message
        t.join()


class TestErrors:
    def test_eof_raises(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_message(b)

    def test_truncated_frame(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b"short")
        a.close()
        with pytest.raises(protocol.ProtocolError, match="mid-frame"):
            protocol.recv_message(b)

    def test_oversize_frame_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.recv_message(b)

    def test_bad_json(self, pair):
        a, b = pair
        body = b"not json"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(protocol.ProtocolError, match="bad JSON"):
            protocol.recv_message(b)

    def test_non_object_frame(self, pair):
        a, b = pair
        body = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.recv_message(b)

    def test_encode_oversize_message(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode({"x": "y" * (protocol.MAX_FRAME + 1)})
