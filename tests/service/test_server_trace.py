"""Daemon-side distributed tracing and the single-node telemetry op."""

import time

import pytest

from repro.obs.distributed import TraceContext
from repro.service.server import ParallelizationServer


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


@pytest.fixture()
def make_server():
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("jobs", 2)
        kwargs.setdefault("inline", True)
        kwargs.setdefault("retry_backoff", 0.01)
        server = ParallelizationServer(**kwargs)
        server.start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


def _trace_ctx():
    root = TraceContext()
    return root, {"traceparent": root.to_traceparent()}


def _export(server, **extra):
    response = server.handle_request({"op": "trace-export", **extra})
    assert response["ok"], response
    return response


class TestDaemonTracing:
    def test_traced_job_records_full_span_chain(self, make_server):
        server = make_server(jobs=1)
        root, ctx = _trace_ctx()
        job = server.submit(_probe(value=1), trace_ctx=ctx)
        assert job.finished.wait(timeout=5)
        # the job span closes when the result is recorded
        time.sleep(0.05)
        export = _export(server)
        spans = [s for s in export["spans"]
                 if s["trace_id"] == root.trace_id]
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {"cache-lookup", "queue-wait",
                                "execute", "job"}
        job_span = by_name["job"]
        assert job_span["cat"] == "daemon"
        assert job_span["parent_id"] == root.span_id
        assert job_span["args"]["state"] == "done"
        assert job_span["args"]["cached"] is False
        # the phase spans all hang off the daemon's job span
        for name in ("cache-lookup", "queue-wait", "execute"):
            assert by_name[name]["parent_id"] == job_span["span_id"]
        assert by_name["cache-lookup"]["args"]["hit"] is False
        assert by_name["execute"]["cat"] == "worker"

    def test_job_carries_child_trace_ctx(self, make_server):
        server = make_server()
        root, ctx = _trace_ctx()
        job = server.submit(_probe(value=2), trace_ctx=ctx)
        carried = TraceContext.from_dict(job.trace_ctx)
        assert carried.trace_id == root.trace_id
        assert carried.span_id != root.span_id

    def test_untraced_job_records_nothing(self, make_server):
        server = make_server()
        job = server.submit(_probe(value=3))
        assert job.finished.wait(timeout=5)
        assert job.trace_ctx is None
        assert _export(server)["spans"] == []

    def test_cache_hit_records_lookup_and_job_span(self, make_server):
        server = make_server()
        first = server.submit(_probe(value=4),
                              trace_ctx=_trace_ctx()[1])
        assert first.finished.wait(timeout=5)
        root2, ctx2 = _trace_ctx()
        second = server.submit(_probe(value=4), trace_ctx=ctx2)
        assert second.cached is True
        export = _export(server, trace_id=root2.trace_id)
        by_name = {s["name"]: s for s in export["spans"]}
        assert set(by_name) == {"cache-lookup", "job"}
        assert by_name["cache-lookup"]["args"]["hit"] is True
        assert by_name["job"]["args"]["cached"] is True

    def test_malformed_trace_ctx_rejected_over_protocol(self, make_server):
        server = make_server()
        response = server.handle_request(
            {"op": "submit", "payload": _probe(),
             "trace_ctx": {"traceparent": "zz-bad"}})
        assert response["ok"] is False
        assert response["code"] == "bad-request"

    def test_export_filters_by_trace_id_and_validates(self, make_server):
        server = make_server()
        root_a, ctx_a = _trace_ctx()
        root_b, ctx_b = _trace_ctx()
        for ctx, value in ((ctx_a, "a"), (ctx_b, "b")):
            job = server.submit(_probe(value=value), trace_ctx=ctx)
            assert job.finished.wait(timeout=5)
        export = _export(server, trace_id=root_a.trace_id)
        assert {s["trace_id"] for s in export["spans"]} \
            == {root_a.trace_id}
        assert sorted(_export(server)["trace_ids"]) \
            == sorted([root_a.trace_id, root_b.trace_id])
        bad = server.handle_request({"op": "trace-export", "trace_id": 9})
        assert bad["ok"] is False and bad["code"] == "bad-request"

    def test_traced_pipeline_job_links_decisions(self, make_server):
        """End to end: a traced ``sources`` job returns a real trace
        export, and ``trace-export`` stamps each decision with the job
        that produced it."""
        source = """      PROGRAM P
      DIMENSION A(50)
      DO 10 I = 1, 50
        A(I) = I * 2.0
   10 CONTINUE
      WRITE(6,*) A(25)
      END
"""
        server = make_server()
        root, ctx = _trace_ctx()
        job = server.submit({"kind": "sources",
                             "sources": {"p.f": source},
                             "config": "none", "trace": True,
                             "name": "traced"},
                            trace_ctx=ctx)
        assert job.finished.wait(timeout=30)
        assert job.state == "done", job.error
        export = _export(server)
        assert export["decisions"], export
        for d in export["decisions"]:
            assert d["job_id"] == job.id
            assert d["digest"] == job.digest
            assert d["trace_id"] == root.trace_id
            assert d["span_id"]
        # exporting again must not double the linked decisions
        again = _export(server)
        assert len(again["decisions"]) == len(export["decisions"])


class TestTelemetryOp:
    def test_single_node_snapshot(self, make_server):
        server = make_server()
        job = server.submit(_probe(value=5), trace_ctx=_trace_ctx()[1])
        assert job.finished.wait(timeout=5)
        frame = server.handle_request({"op": "telemetry"})
        assert frame["ok"] and frame["tier"] == "single-node"
        assert frame["run_id"] == server.run_id
        snapshot = frame["snapshot"]
        assert snapshot["health"]["tier"] == "single-node"
        assert "repro_jobs_completed_total" in snapshot["metrics"]
        assert frame["spans_stored"] >= 1

    def test_snapshots_accumulate_in_store(self, make_server):
        server = make_server()
        server.handle_request({"op": "telemetry"})
        server.handle_request({"op": "telemetry"})
        assert len(server.telemetry.snapshots()) == 2
