"""Job model and bounded-queue semantics."""

import threading
import time

import pytest

from repro.service.jobs import (FINAL_STATES, Job, JobQueue, JobState,
                                QueueFullError, payload_digest)


def _job(**kwargs):
    payload = kwargs.pop("payload", {"kind": "probe", "probe": "echo"})
    return Job(digest=payload_digest(payload), payload=payload, **kwargs)


class TestPayloadDigest:
    def test_deterministic(self):
        p = {"kind": "benchmark", "benchmark": "adm", "config": "none"}
        assert payload_digest(p) == payload_digest(dict(p))

    def test_key_order_irrelevant(self):
        a = {"kind": "benchmark", "benchmark": "adm"}
        b = {"benchmark": "adm", "kind": "benchmark"}
        assert payload_digest(a) == payload_digest(b)

    def test_content_sensitive(self):
        a = {"kind": "benchmark", "benchmark": "adm", "config": "none"}
        b = dict(a, config="annotation")
        assert payload_digest(a) != payload_digest(b)


class TestJob:
    def test_initial_state(self):
        job = _job()
        assert job.state == JobState.QUEUED
        assert job.state not in FINAL_STATES
        assert not job.finished.is_set()

    def test_finish_sets_event_and_latency(self):
        job = _job()
        job.finish(JobState.DONE, result={"x": 1})
        assert job.finished.is_set()
        assert job.state in FINAL_STATES
        assert job.latency() is not None and job.latency() >= 0

    def test_no_deadline_never_expires(self):
        assert _job().remaining() is None
        assert not _job().expired()

    def test_deadline_expiry(self):
        job = _job(deadline=100.0)
        assert not job.expired()
        assert 99 < job.remaining() <= 100
        job.submitted_at -= 200.0
        assert job.expired()

    def test_ids_unique(self):
        assert _job().id != _job().id

    def test_snapshot_is_json_safe(self):
        import json
        snap = _job(deadline=5.0).snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["state"] == "queued"


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue(capacity=10)
        jobs = [_job() for _ in range(3)]
        for j in jobs:
            q.put(j)
        assert [q.get(timeout=0.1).id for _ in jobs] == \
            [j.id for j in jobs]

    def test_backpressure_rejects_with_reason(self):
        q = JobQueue(capacity=2)
        q.put(_job())
        q.put(_job())
        with pytest.raises(QueueFullError, match="full"):
            q.put(_job())
        assert q.depth() == 2  # the rejected job was not admitted

    def test_force_put_bypasses_capacity(self):
        q = JobQueue(capacity=1)
        q.put(_job())
        q.put(_job(), force=True)  # a crash retry re-enters
        assert q.depth() == 2

    def test_get_timeout_returns_none(self):
        q = JobQueue(capacity=1)
        t0 = time.monotonic()
        assert q.get(timeout=0.05) is None
        assert time.monotonic() - t0 < 1.0

    def test_close_wakes_blocked_consumer(self):
        q = JobQueue(capacity=1)
        got = []
        t = threading.Thread(target=lambda: got.append(q.get(timeout=5)))
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2)
        assert not t.is_alive()
        assert got == [None]

    def test_closed_queue_rejects_put(self):
        q = JobQueue(capacity=4)
        q.close()
        with pytest.raises(QueueFullError, match="shutting down"):
            q.put(_job())

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)
