"""Result-cache tests: LRU behavior, the disk layer's robustness, and
consistency of the contains/get/put surface under concurrency."""

import json
import os
import threading

import pytest

from repro.service.cache import ResultCache


class TestMemoryLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", {"v": 1})
        assert cache.get("d1") == {"v": 1}
        assert "d1" in cache and len(cache) == 1

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})
        assert cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", {"v": "c"})
        assert cache.get("b") is None
        assert cache.get("a") and cache.get("c")

    def test_put_overwrites(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("a", {"v": 2})
        assert cache.get("a") == {"v": 2}
        assert len(cache) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        first.put("d1", {"v": 1})
        second = ResultCache(capacity=4, directory=str(tmp_path))
        assert second.get("d1") == {"v": 1}  # survived the "restart"

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get("d1") == {"v": 1}
        assert len(cache) == 1

    def test_corrupt_entry_evicted_and_missed(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        path = tmp_path / "d1.json"
        path.write_text("{truncated")
        cache.clear()
        assert cache.get("d1") is None
        assert not path.exists()  # evicted, not left to re-trip

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        (tmp_path / "d2.json").write_text(json.dumps([1, 2]))
        assert cache.get("d2") is None

    def test_clear_disk(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))
        assert cache.get("d1") is None

    def test_writes_are_atomic_no_tmp_left(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        for i in range(5):
            cache.put(f"d{i}", {"v": i})
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(tmp_path.glob("*.json"))) == 5

    def test_memory_only_without_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = ResultCache(capacity=4)
        cache.put("d1", {"v": 1})
        assert list(os.listdir(tmp_path)) == []


class TestContainsConsultsDisk:
    def test_contains_sees_disk_entries_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        first.put("d1", {"v": 1})
        # a "restarted" daemon: warm disk, cold memory
        second = ResultCache(capacity=4, directory=str(tmp_path))
        assert len(second) == 0
        assert "d1" in second
        assert "nope" not in second

    def test_contains_sees_evicted_entries(self, tmp_path):
        cache = ResultCache(capacity=1, directory=str(tmp_path))
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts a from memory, not from disk
        assert "a" in cache
        assert cache.get("a") == {"v": 1}

    def test_memory_only_contains_unchanged(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        assert "a" in cache and "b" not in cache


class TestStats:
    def test_hit_kinds_counted_distinctly(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        assert cache.get("d1") is None                      # miss
        cache.put("d1", {"v": 1})
        assert cache.get("d1") == {"v": 1}                  # memory hit
        cache.clear()
        assert cache.get("d1") == {"v": 1}                  # disk hit
        assert cache.get("d1") == {"v": 1}                  # memory hit
        assert cache.stats() == {"hits": 2, "disk_hits": 1, "misses": 1,
                                 "evictions": 0}

    def test_stats_without_disk_layer(self):
        cache = ResultCache(capacity=4)
        cache.get("x")
        cache.put("x", {"v": 1})
        cache.get("x")
        assert cache.stats() == {"hits": 1, "disk_hits": 0, "misses": 1,
                                 "evictions": 0}


class TestBoundedDiskTier:
    def test_oldest_evicted_until_fit(self, tmp_path):
        for name in "abcde":
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps({"v": name * 32}))
            t = os.path.getmtime(path)
            aged = t - 100 + (ord(name) - ord("a"))
            os.utime(path, (aged, aged))
        size = os.path.getsize(tmp_path / "a.json")
        cache = ResultCache(capacity=8, directory=str(tmp_path),
                            max_bytes=4 * size)
        cache.put("zz", {"v": "z" * 32})  # 6 entries now: over budget
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == ["c.json", "d.json", "e.json", "zz.json"]
        assert cache.stats()["evictions"] == 2

    def test_same_mtime_ties_break_by_path(self, tmp_path):
        # coarse-timestamp filesystems give bursts of entries identical
        # mtimes; eviction order must still be deterministic
        for name in "abcde":
            (tmp_path / f"{name}.json").write_text(
                json.dumps({"v": name * 32}))
        t = os.path.getmtime(tmp_path / "a.json") - 10
        for name in "abcde":
            os.utime(tmp_path / f"{name}.json", (t, t))
        size = os.path.getsize(tmp_path / "a.json")
        cache = ResultCache(capacity=8, directory=str(tmp_path),
                            max_bytes=4 * size)
        cache.put("zz", {"v": "z" * 32})
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        # the two lexicographically-first of the tied cohort went
        assert names == ["c.json", "d.json", "e.json", "zz.json"]

    def test_stores_within_budget_never_rescan(self, tmp_path,
                                               monkeypatch):
        cache = ResultCache(capacity=4, directory=str(tmp_path),
                            max_bytes=1 << 20)
        calls = []
        real_listdir = os.listdir
        monkeypatch.setattr(
            os, "listdir",
            lambda *a, **k: (calls.append(a), real_listdir(*a, **k))[1])
        for i in range(20):
            cache.put(f"d{i}", {"v": i})
        # the byte total is a running count: a store under budget is a
        # write plus two stats, not an O(entries) directory scan
        assert calls == []

    def test_running_total_tracks_stores(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path),
                            max_bytes=1 << 20)
        cache.put("d1", {"v": 1})
        cache.put("d2", {"v": "two" * 10})
        cache.put("d1", {"v": "overwritten" * 4})  # delta, not sum
        expected = sum(os.path.getsize(p)
                       for p in tmp_path.glob("*.json"))
        assert cache._disk_bytes == expected

    def test_new_instance_scans_existing_tier_once(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path),
                            max_bytes=1 << 20)
        first.put("d1", {"v": 1})
        second = ResultCache(capacity=4, directory=str(tmp_path),
                             max_bytes=1 << 20)
        assert second._disk_bytes == first._disk_bytes > 0

    def test_clear_disk_resets_total(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path),
                            max_bytes=1 << 20)
        cache.put("d1", {"v": 1})
        cache.clear(disk=True)
        assert cache._disk_bytes == 0

    def test_unbounded_tier_never_evicts(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path),
                            max_bytes=0)
        for i in range(10):
            cache.put(f"d{i}", {"v": "x" * 64})
        assert len(list(tmp_path.glob("*.json"))) == 10
        assert cache.stats()["evictions"] == 0


class TestConcurrency:
    def test_hammering_stays_consistent(self, tmp_path):
        cache = ResultCache(capacity=8, directory=str(tmp_path))
        digests = [f"d{i}" for i in range(16)]
        errors = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                for d in digests:
                    cache.put(d, {"v": d})

        def reader():
            while not stop.is_set():
                for d in digests:
                    entry = cache.get(d)
                    if entry is not None and entry != {"v": d}:
                        errors.append(f"wrong value for {d}: {entry}")
                    # contains -> get must not lose the entry
                    if d in cache and cache.get(d) is None:
                        errors.append(f"{d} in cache but get() missed")

        threads = ([threading.Thread(target=writer) for _ in range(2)]
                   + [threading.Thread(target=reader) for _ in range(4)])
        for t in threads:
            t.start()
        import time
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert errors == []
        assert len(cache) <= 8  # capacity respected throughout
