"""Result-cache tests: LRU behavior, the disk layer's robustness, and
consistency of the contains/get/put surface under concurrency."""

import json
import os
import threading

import pytest

from repro.service.cache import ResultCache


class TestMemoryLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", {"v": 1})
        assert cache.get("d1") == {"v": 1}
        assert "d1" in cache and len(cache) == 1

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})
        assert cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", {"v": "c"})
        assert cache.get("b") is None
        assert cache.get("a") and cache.get("c")

    def test_put_overwrites(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("a", {"v": 2})
        assert cache.get("a") == {"v": 2}
        assert len(cache) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        first.put("d1", {"v": 1})
        second = ResultCache(capacity=4, directory=str(tmp_path))
        assert second.get("d1") == {"v": 1}  # survived the "restart"

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get("d1") == {"v": 1}
        assert len(cache) == 1

    def test_corrupt_entry_evicted_and_missed(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        path = tmp_path / "d1.json"
        path.write_text("{truncated")
        cache.clear()
        assert cache.get("d1") is None
        assert not path.exists()  # evicted, not left to re-trip

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        (tmp_path / "d2.json").write_text(json.dumps([1, 2]))
        assert cache.get("d2") is None

    def test_clear_disk(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        cache.put("d1", {"v": 1})
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))
        assert cache.get("d1") is None

    def test_writes_are_atomic_no_tmp_left(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        for i in range(5):
            cache.put(f"d{i}", {"v": i})
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(tmp_path.glob("*.json"))) == 5

    def test_memory_only_without_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = ResultCache(capacity=4)
        cache.put("d1", {"v": 1})
        assert list(os.listdir(tmp_path)) == []


class TestContainsConsultsDisk:
    def test_contains_sees_disk_entries_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, directory=str(tmp_path))
        first.put("d1", {"v": 1})
        # a "restarted" daemon: warm disk, cold memory
        second = ResultCache(capacity=4, directory=str(tmp_path))
        assert len(second) == 0
        assert "d1" in second
        assert "nope" not in second

    def test_contains_sees_evicted_entries(self, tmp_path):
        cache = ResultCache(capacity=1, directory=str(tmp_path))
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts a from memory, not from disk
        assert "a" in cache
        assert cache.get("a") == {"v": 1}

    def test_memory_only_contains_unchanged(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        assert "a" in cache and "b" not in cache


class TestStats:
    def test_hit_kinds_counted_distinctly(self, tmp_path):
        cache = ResultCache(capacity=4, directory=str(tmp_path))
        assert cache.get("d1") is None                      # miss
        cache.put("d1", {"v": 1})
        assert cache.get("d1") == {"v": 1}                  # memory hit
        cache.clear()
        assert cache.get("d1") == {"v": 1}                  # disk hit
        assert cache.get("d1") == {"v": 1}                  # memory hit
        assert cache.stats() == {"hits": 2, "disk_hits": 1, "misses": 1,
                                 "evictions": 0}

    def test_stats_without_disk_layer(self):
        cache = ResultCache(capacity=4)
        cache.get("x")
        cache.put("x", {"v": 1})
        cache.get("x")
        assert cache.stats() == {"hits": 1, "disk_hits": 0, "misses": 1,
                                 "evictions": 0}


class TestConcurrency:
    def test_hammering_stays_consistent(self, tmp_path):
        cache = ResultCache(capacity=8, directory=str(tmp_path))
        digests = [f"d{i}" for i in range(16)]
        errors = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                for d in digests:
                    cache.put(d, {"v": d})

        def reader():
            while not stop.is_set():
                for d in digests:
                    entry = cache.get(d)
                    if entry is not None and entry != {"v": d}:
                        errors.append(f"wrong value for {d}: {entry}")
                    # contains -> get must not lose the entry
                    if d in cache and cache.get(d) is None:
                        errors.append(f"{d} in cache but get() missed")

        threads = ([threading.Thread(target=writer) for _ in range(2)]
                   + [threading.Thread(target=reader) for _ in range(4)])
        for t in threads:
            t.start()
        import time
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert errors == []
        assert len(cache) <= 8  # capacity respected throughout
