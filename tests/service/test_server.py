"""Server tests: protocol ops, dedup, cache hits, backpressure,
deadlines, crash retry, and the socket/client end-to-end paths.

Most tests run the server with ``inline=True`` (jobs execute in the
dispatcher threads — deterministic and fast); the crash/deadline tests
that need real worker processes use the process pool and skip if the
sandbox cannot start one.
"""

import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobState
from repro.service.server import ParallelizationServer, execute_payload

SOURCE = """      PROGRAM P
      COMMON /D/ A(300,8), ROW(8)
      DO 10 I = 1, 300
        CALL FILLR(I, 8)
   10 CONTINUE
      T = 0.0
      DO 20 I = 1, 300
        T = T + A(I,3)
   20 CONTINUE
      WRITE(6,*) T
      END
      SUBROUTINE FILLR(I, N)
      COMMON /D/ A(300,8), ROW(8)
      DO 5 J = 1, N
        ROW(J) = I + J*0.5
    5 CONTINUE
      DO 6 J = 1, N
        A(I,J) = ROW(J)
    6 CONTINUE
      END
"""

ANNOTATIONS = """subroutine FILLR(I, N) {
  ROW = unknown(I, N);
  do (J = 1:N)  A[I, J] = unknown(ROW, J);
}
"""


def _probe(op="echo", **extra):
    payload = {"kind": "probe", "probe": op}
    payload.update(extra)
    return payload


def _sources_payload(tag="t0"):
    return {"kind": "sources", "sources": {"prog.f": SOURCE},
            "annotations": ANNOTATIONS, "config": "annotation",
            "name": tag}


def _wait_state(server, job, state, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == state:
            return True
        time.sleep(0.01)
    return False


@pytest.fixture()
def make_server():
    servers = []

    def factory(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("jobs", 2)
        kwargs.setdefault("inline", True)
        kwargs.setdefault("retry_backoff", 0.01)
        server = ParallelizationServer(**kwargs)
        server.start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


class TestExecutePayload:
    def test_echo_probe(self):
        assert execute_payload(_probe(value=42)) == {"echo": 42}

    def test_sources_pipeline(self):
        result = execute_payload(_sources_payload())
        assert result["parallel_count"] >= 2
        assert "!$OMP PARALLEL DO" in result["output"]
        assert "CALL FILLR" in result["output"]  # reverse-inlined back
        assert result["config"] == "annotation"

    def test_benchmark_pipeline(self):
        result = execute_payload({"kind": "benchmark",
                                  "benchmark": "adm", "config": "none"})
        assert result["parallel_count"] > 0
        assert result["code_lines"] > 0

    def test_annotations_mode_threads_through(self):
        payload = _sources_payload()
        payload["annotations_mode"] = "inferred"
        result = execute_payload(payload)
        assert result["annotations"] == "inferred"
        # inference recovers FILLR's summary, so the call loop still
        # parallelizes and the reverse inliner restores the call
        assert result["parallel_count"] >= 1
        assert "CALL FILLR" in result["output"]

    def test_benchmark_accepts_annotations_mode(self):
        result = execute_payload({"kind": "benchmark", "benchmark": "adm",
                                  "config": "annotation",
                                  "annotations_mode": "demand"})
        assert result["annotations"] == "demand"

    def test_bad_annotations_mode_raises(self):
        with pytest.raises(ValueError, match="annotations"):
            execute_payload({"kind": "benchmark", "benchmark": "adm",
                             "config": "annotation",
                             "annotations_mode": "bogus"})

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="payload kind"):
            execute_payload({"kind": "nonsense"})

    def test_bad_config_raises(self):
        with pytest.raises(ValueError, match="config"):
            execute_payload({"kind": "benchmark", "benchmark": "adm",
                             "config": "bogus"})


class TestParallelizePayload:
    DIALECT_SOURCE = ("      PROGRAM P\n"
                      "      COMMON /R/ A(8)\n"
                      "      X = = 1.0\n"
                      "      DO 10 I = 1, 8\n"
                      "        A(I) = A(I) + 1.0\n"
                      "   10 CONTINUE\n"
                      "      END\n")

    def _payload(self, **extra):
        payload = {"kind": "parallelize",
                   "sources": {"prog.f": self.DIALECT_SOURCE}}
        payload.update(extra)
        return payload

    def test_tolerant_pipeline_with_diagnostics(self):
        result = execute_payload(self._payload())
        assert "!$OMP PARALLEL DO" in result["output"]
        assert result["parallel_count"] == 1
        assert result["annotations_mode"] == "inferred"
        # the malformed statement surfaces as a structured diagnostic
        # carrying the offending source excerpt and position
        (diag,) = result["diagnostics"]
        assert diag["code"] == "parse-error"
        assert diag["severity"] == "recovered"
        assert diag["line"] == 3
        assert "X = = 1.0" in diag["excerpt"]

    def test_loop_records_carry_explanations(self):
        result = execute_payload(self._payload())
        (loop,) = result["loops"]
        assert loop["parallel"] is True
        assert loop["var"] == "I"
        assert "PARALLEL" in loop["explanation"]

    def test_interprocedural_sources(self):
        result = execute_payload(
            {"kind": "parallelize", "sources": {"prog.f": SOURCE}})
        assert result["diagnostics"] == []
        assert result["parallel_count"] >= 2
        assert "CALL FILLR" in result["output"]

    def test_empty_sources_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            execute_payload({"kind": "parallelize", "sources": {}})

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="annotations mode"):
            execute_payload(self._payload(annotations_mode="bogus"))

    def test_strict_mode_surfaces_excerpt(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError) as err:
            execute_payload(self._payload(tolerant=False))
        payload = err.value.payload()
        assert "X = = 1.0" in payload.get("excerpt", "")


class TestSubmitAndCache:
    def test_submit_runs_and_caches(self, make_server):
        server = make_server()
        job = server.submit(_sources_payload())
        assert job.finished.wait(timeout=10)
        assert job.state == JobState.DONE
        assert job.result["parallel_count"] >= 2
        metrics = server.metrics.to_json()
        assert metrics["repro_cache_misses_total"] == 1
        assert metrics["repro_cache_hits_total"] == 0

        # identical resubmission: answered from the cache, no new run
        repeat = server.submit(_sources_payload())
        assert repeat.state == JobState.DONE
        assert repeat.cached
        assert repeat.result == job.result
        metrics = server.metrics.to_json()
        assert metrics["repro_cache_hits_total"] == 1
        assert metrics["repro_jobs_submitted_total"] == 1  # only one ran

    def test_different_config_is_a_different_job(self, make_server):
        server = make_server()
        a = server.submit(_sources_payload())
        payload = dict(_sources_payload(), config="none")
        b = server.submit(payload)
        assert a.digest != b.digest
        assert a.finished.wait(10) and b.finished.wait(10)
        assert a.result["output"] != b.result["output"]

    def test_inflight_dedup(self, make_server):
        server = make_server()
        payload = _probe("sleep", seconds=0.3)
        first = server.submit(payload)
        second = server.submit(payload)  # same digest, still in flight
        assert second is first
        assert server.metrics.to_json()["repro_jobs_deduped_total"] == 1
        assert first.finished.wait(timeout=5)

    def test_phase_latency_histograms_populated(self, make_server):
        server = make_server()
        job = server.submit(_sources_payload())
        assert job.finished.wait(timeout=10)
        metrics = server.metrics.to_json()
        assert metrics["repro_phase_dependence_seconds"]["count"] >= 1
        assert metrics["repro_job_latency_seconds"]["count"] == 1


class TestBackpressure:
    def test_full_queue_rejected_not_hung(self, make_server):
        server = make_server(jobs=1, queue_capacity=1)
        running = server.submit(_probe("sleep", seconds=0.6, tag="a"))
        assert _wait_state(server, running, JobState.RUNNING)
        queued = server.submit(_probe("sleep", seconds=0.0, tag="b"))
        response = server.handle_request(
            {"op": "submit",
             "payload": _probe("sleep", seconds=0.0, tag="c")})
        assert response["ok"] is False
        assert response["code"] == "backpressure"
        assert "full" in response["error"]
        assert server.metrics.to_json()["repro_jobs_rejected_total"] == 1
        assert queued.finished.wait(timeout=5)  # backlog still drains

    def test_deadline_expires_while_queued(self, make_server):
        server = make_server(jobs=1)
        server.submit(_probe("sleep", seconds=0.4, tag="busy"))
        late = server.submit(_probe("echo", tag="late"), deadline=0.05)
        assert late.finished.wait(timeout=5)
        assert late.state == JobState.TIMEOUT
        assert "queued" in late.error


class TestCrashRetry:
    def test_inline_crash_is_retried_and_completes(self, make_server,
                                                   tmp_path):
        server = make_server(jobs=1)
        marker = tmp_path / "crash.marker"
        job = server.submit(_probe("crash-once", marker=str(marker)),
                            max_retries=2)
        assert job.finished.wait(timeout=10)
        assert job.state == JobState.DONE
        assert job.result == {"recovered": True}
        assert job.attempts == 2
        assert server.metrics.to_json()["repro_jobs_retried_total"] == 1

    def test_retries_exhausted_fails(self, make_server, tmp_path):
        server = make_server(jobs=1)
        # no marker cleanup between attempts is needed: max_retries=0
        # means the first crash is final
        marker = tmp_path / "crash2.marker"
        job = server.submit(_probe("crash-once", marker=str(marker)),
                            max_retries=0)
        assert job.finished.wait(timeout=10)
        assert job.state == JobState.FAILED
        assert "crashed" in job.error

    def test_pool_worker_killed_is_retried(self, make_server, tmp_path):
        server = make_server(jobs=1, inline=False)
        if server.pool.inline:
            pytest.skip("process pool unavailable in this sandbox")
        marker = tmp_path / "kill.marker"
        # first attempt SIGKILLs the worker mid-run; the pool is rebuilt
        # and the retry completes
        job = server.submit(_probe("crash-once", marker=str(marker)),
                            max_retries=2)
        assert job.finished.wait(timeout=30)
        assert job.state == JobState.DONE
        assert job.result == {"recovered": True}
        assert job.attempts >= 2

    def test_deterministic_failure_not_retried(self, make_server):
        server = make_server(jobs=1)
        job = server.submit({"kind": "benchmark",
                             "benchmark": "no-such-benchmark"})
        assert job.finished.wait(timeout=10)
        assert job.state == JobState.FAILED
        assert job.attempts == 1


class TestDeadlines:
    def test_running_job_times_out_in_pool_mode(self, make_server):
        server = make_server(jobs=1, inline=False)
        if server.pool.inline:
            pytest.skip("process pool unavailable in this sandbox")
        job = server.submit(_probe("sleep", seconds=1.2), deadline=0.2)
        assert job.finished.wait(timeout=10)
        assert job.state == JobState.TIMEOUT
        assert "running" in job.error
        # the pool was recycled: the next job still runs
        after = server.submit(_probe("echo", value="ok"))
        assert after.finished.wait(timeout=10)
        assert after.state == JobState.DONE


class TestProtocolOps:
    def test_unknown_op(self, make_server):
        server = make_server()
        response = server.handle_request({"op": "frobnicate"})
        assert response["ok"] is False and response["code"] == "bad-op"

    def test_submit_requires_payload(self, make_server):
        server = make_server()
        response = server.handle_request({"op": "submit"})
        assert response["ok"] is False and response["code"] == "bad-request"

    def test_status_unknown_job(self, make_server):
        server = make_server()
        response = server.handle_request({"op": "status",
                                          "job_id": "job-999999"})
        assert response["ok"] is False and response["code"] == "not-found"

    def test_submit_status_result_flow(self, make_server):
        server = make_server()
        submitted = server.handle_request(
            {"op": "submit", "payload": _probe(value=7), "wait": True,
             "wait_timeout": 10})
        assert submitted["ok"] and submitted["state"] == "done"
        assert submitted["result"] == {"echo": 7}
        job_id = submitted["job_id"]
        status = server.handle_request({"op": "status", "job_id": job_id})
        assert status["ok"] and status["state"] == "done"
        result = server.handle_request({"op": "result", "job_id": job_id})
        assert result["ok"] and result["result"] == {"echo": 7}

    def test_result_of_unfinished_job(self, make_server):
        server = make_server(jobs=1)
        job = server.submit(_probe("sleep", seconds=0.5))
        response = server.handle_request({"op": "result",
                                          "job_id": job.id})
        assert response["ok"] is False
        assert response["code"] in ("not-ready",)

    def test_cancel_queued_job(self, make_server):
        server = make_server(jobs=1)
        busy = server.submit(_probe("sleep", seconds=0.5, tag="busy"))
        assert _wait_state(server, busy, JobState.RUNNING)
        queued = server.submit(_probe("echo", tag="victim"))
        response = server.handle_request({"op": "cancel",
                                          "job_id": queued.id})
        assert response["ok"] and response["canceled"] is True
        assert queued.state == JobState.CANCELED
        assert busy.finished.wait(timeout=5)
        time.sleep(0.1)  # dispatcher must skip, not run, the canceled job
        assert queued.state == JobState.CANCELED

    def test_cancel_finished_job_refused(self, make_server):
        server = make_server()
        job = server.submit(_probe(value=1))
        assert job.finished.wait(timeout=5)
        response = server.handle_request({"op": "cancel",
                                          "job_id": job.id})
        assert response["canceled"] is False

    def test_health(self, make_server):
        server = make_server()
        health = server.handle_request({"op": "health"})
        assert health["ok"]
        assert health["workers"] == 2
        assert health["queue_capacity"] == 64
        assert health["pool_mode"] == "inline"

    def test_metrics_formats(self, make_server):
        server = make_server()
        json_form = server.handle_request({"op": "metrics"})
        assert json_form["ok"]
        assert "repro_jobs_submitted_total" in json_form["metrics"]
        prom = server.handle_request({"op": "metrics",
                                      "format": "prometheus"})
        assert "# TYPE repro_jobs_submitted_total counter" in prom["text"]
        bad = server.handle_request({"op": "metrics", "format": "xml"})
        assert bad["ok"] is False


class TestSocketEndToEnd:
    """The acceptance path: real daemon, real sockets, real client."""

    def test_submit_twice_second_is_cache_hit(self, make_server):
        server = make_server(jobs=2)
        host, port = server.address
        client = ServiceClient(host=host, port=port)

        first = client.submit(_sources_payload(), wait=True,
                              wait_timeout=30)
        assert first["state"] == "done" and not first["cached"]
        second = client.submit(_sources_payload(), wait=True,
                               wait_timeout=30)
        assert second["state"] == "done" and second["cached"]
        # the identical artifact came back without re-analysis
        assert second["result"] == first["result"]
        metrics = client.metrics()["metrics"]
        assert metrics["repro_cache_hits_total"] == 1
        assert metrics["repro_jobs_submitted_total"] == 1

    def test_concurrent_identical_submits_dedup(self, make_server):
        server = make_server(jobs=2)
        host, port = server.address
        payload = _probe("sleep", seconds=0.3, tag="concurrent")
        responses = []

        def submit():
            client = ServiceClient(host=host, port=port)
            responses.append(client.submit(payload, wait=True,
                                           wait_timeout=10))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert len(responses) == 2
        assert responses[0]["job_id"] == responses[1]["job_id"]
        metrics = server.metrics.to_json()
        assert metrics["repro_jobs_deduped_total"] >= 1
        assert metrics["repro_jobs_submitted_total"] == 1

    def test_backpressure_over_the_wire(self, make_server):
        server = make_server(jobs=1, queue_capacity=1)
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        running = client.submit(_probe("sleep", seconds=0.6, tag="r"),
                                wait=False)
        job = server.get_job(running["job_id"])
        assert _wait_state(server, job, JobState.RUNNING)
        client.submit(_probe("sleep", seconds=0.0, tag="q"), wait=False)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(_probe("sleep", seconds=0.0, tag="rejected"),
                          wait=False)
        assert excinfo.value.code == "backpressure"

    def test_client_error_for_unreachable_server(self):
        client = ServiceClient(port=1, timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "unreachable"

    def test_shutdown_op_stops_server(self, make_server):
        server = make_server()
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        response = client.shutdown()
        assert response["ok"] and response["stopping"]
        assert "_shutdown" not in response  # internal marker never leaks
        assert server.wait(timeout=10)
        assert not server.running

    def test_benchmark_twice_with_two_process_workers(self, make_server):
        """ISSUE acceptance: same benchmark twice, 2 workers — first
        populates the cache, second is served from it (via metrics)."""
        server = make_server(jobs=2, inline=None)
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        first = client.submit_benchmark("adm", wait=True,
                                        wait_timeout=60)
        assert first["state"] == "done"
        assert first["result"]["parallel_count"] > 0
        second = client.submit_benchmark("adm", wait=True,
                                         wait_timeout=60)
        assert second["state"] == "done" and second["cached"]
        assert second["result"] == first["result"]
        metrics = client.metrics()["metrics"]
        assert metrics["repro_cache_hits_total"] == 1


class TestDrain:
    """Graceful drain: a drain shutdown loses no accepted job."""

    @staticmethod
    def _submit_retrying(client, payload):
        # the accept loop can drop the very first connection under heavy
        # machine load; a reset before the submit is accepted is safe to
        # retry (nothing was enqueued yet)
        for _ in range(20):
            try:
                return client.submit(payload, wait=False)
            except ServiceError as error:
                if error.code != "unreachable":
                    raise
                time.sleep(0.05)
        return client.submit(payload, wait=False)

    def test_shutdown_drain_finishes_accepted_jobs(self, make_server):
        server = make_server(jobs=2)
        host, port = server.address
        client = ServiceClient(host=host, port=port)
        accepted = [self._submit_retrying(
                        client, _probe("sleep", seconds=0.3,
                                       tag=f"drain-{i}"))
                    for i in range(4)]
        response = client.shutdown(drain=True, drain_timeout=10)
        assert response["ok"] and response["draining"]
        assert server.wait(timeout=15)
        for submitted in accepted:
            job = server.get_job(submitted["job_id"])
            assert job.state == JobState.DONE, \
                f"job {job.id} lost in drain: {job.state}"

    def test_draining_rejects_new_submits(self, make_server):
        server = make_server(jobs=1)
        server.submit(_probe("sleep", seconds=0.2, tag="inflight"))
        server._draining.set()
        with pytest.raises(Exception, match="draining"):
            server.submit(_probe(value="late"))
        assert server.metrics.to_json()["repro_jobs_rejected_total"] == 1
        server._draining.clear()  # let the fixture stop() cleanly

class TestTracedJobs:
    def _traced_payload(self):
        return dict(_sources_payload(tag="traced"), trace=True)

    def test_trace_attached_but_stripped_by_default(self, make_server):
        server = make_server()
        submitted = server.handle_request(
            {"op": "submit", "payload": self._traced_payload(),
             "wait": True, "wait_timeout": 30})
        assert submitted["ok"] and submitted["state"] == "done"
        assert "trace" not in submitted["result"]
        # the stored result still has it, on request
        result = server.handle_request(
            {"op": "result", "job_id": submitted["job_id"],
             "include_trace": True})
        trace = result["result"]["trace"]
        assert trace["events"], "traced job produced no span events"

    def test_trace_decisions_match_parallel_count(self, make_server):
        from repro.trace import LoopDecision, count_parallel
        server = make_server()
        response = server.handle_request(
            {"op": "submit", "payload": self._traced_payload(),
             "wait": True, "wait_timeout": 30, "include_trace": True})
        result = response["result"]
        decisions = [LoopDecision.from_dict(d)
                     for d in result["trace"]["decisions"]]
        counts = count_parallel(decisions)
        assert sum(counts.values()) == result["parallel_count"]

    def test_untraced_payload_carries_no_trace(self, make_server):
        server = make_server()
        response = server.handle_request(
            {"op": "submit", "payload": _sources_payload(tag="plain"),
             "wait": True, "wait_timeout": 30, "include_trace": True})
        assert response["state"] == "done"
        assert "trace" not in response["result"]

    def test_phase_and_request_metrics_populated(self, make_server):
        server = make_server()
        server.handle_request(
            {"op": "submit", "payload": self._traced_payload(),
             "wait": True, "wait_timeout": 30})
        metrics = server.metrics.to_json()
        assert metrics["repro_requests_total"] == {'{op="submit"}': 1}
        assert metrics["repro_request_seconds"]["count"] == 1
        assert metrics["repro_loops_parallel_total"] >= 1
        health = server.handle_request({"op": "health"})
        assert health["cache_stats"]["misses"] == 1
