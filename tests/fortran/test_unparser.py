"""Unparser unit tests and parse/unparse round-trip properties."""

from hypothesis import given, settings

from repro.fortran import ast
from repro.fortran.parser import parse_expression, parse_source
from repro.fortran.unparser import expr_to_str, unparse
from tests.strategies import exprs, program_units


def roundtrip(src: str) -> None:
    """parse -> unparse -> parse must be a fixed point."""
    tree = parse_source(src)
    text = unparse(tree)
    tree2 = parse_source(text)
    assert tree2.units == tree.units, text


class TestExprUnparse:
    def test_minimal_parens(self):
        assert expr_to_str(parse_expression("A+B*C")) == "A+B*C"
        assert expr_to_str(parse_expression("(A+B)*C")) == "(A+B)*C"
        assert expr_to_str(parse_expression("A-(B-C)")) == "A-(B-C)"
        assert expr_to_str(parse_expression("A/(B*C)")) == "A/(B*C)"

    def test_power_assoc(self):
        assert expr_to_str(parse_expression("A**B**C")) == "A**B**C"
        assert expr_to_str(parse_expression("(A**B)**C")) == "(A**B)**C"

    def test_relational_f77_spelling(self):
        assert expr_to_str(parse_expression("I.GT.0")) == "I.GT.0"

    def test_unary_minus(self):
        assert expr_to_str(parse_expression("-A+B")) == "-A+B"
        assert expr_to_str(parse_expression("B*(-A)")) == "B*(-A)"

    def test_double_literal_spelling_preserved(self):
        assert expr_to_str(parse_expression("2.D0")) == "2.D0"

    def test_array_ref(self):
        assert expr_to_str(parse_expression("T(IX(7)+I)")) == "T(IX(7)+I)"

    @given(exprs())
    @settings(max_examples=200)
    def test_expr_roundtrip(self, e):
        assert parse_expression(expr_to_str(e)) == e


class TestSourceRoundtrip:
    def test_paper_figure2(self):
        roundtrip(
            "      SUBROUTINE PCINIT(X2,Y2,Z2)\n"
            "      DIMENSION X2(*),Y2(*),Z2(*)\n"
            "      DO 200 N = 1, NTYPES\n"
            "        NSP = NSPECI(N)\n"
            "        DO 200 J = 1, NSP\n"
            "          I = I + 1\n"
            "          X2(I) = FX(I)*TSTEP**2/2.D0/DSUMM(N)\n"
            "  200 CONTINUE\n"
            "      END\n")

    def test_paper_figure6(self):
        roundtrip(
            "      SUBROUTINE FSMP(ID, IDE)\n"
            "      CALL GETCR(ID)\n"
            "      IRECT = IEGEOM(ID)\n"
            "      ISTRES = 0\n"
            "      CALL SHAPE1\n"
            "      IF (IDEDON(IDE).EQ.0) THEN\n"
            "        IDEDON(IDE) = 1\n"
            "        CALL FORMF(FE(1,IDE))\n"
            "        IF (IERR.NE.0) THEN\n"
            "          WRITE(6,*) IDE\n"
            "          STOP 'F SINGULAR'\n"
            "        END IF\n"
            "      END IF\n"
            "      CALL GETLD(ID)\n"
            "      RETURN\n"
            "      END\n")

    def test_omp_loop(self):
        src = ("      SUBROUTINE S\n"
               "!$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(T1)\n"
               "      DO I = 1, N\n"
               "        A(I) = T1\n"
               "      END DO\n"
               "!$OMP END PARALLEL DO\n"
               "      END\n")
        roundtrip(src)
        text = unparse(parse_source(src))
        assert "!$OMP PARALLEL DO" in text
        assert "PRIVATE(T1)" in text

    def test_tagged_block(self):
        roundtrip(
            "      SUBROUTINE S\n"
            "C@INLINE BEGIN MATMLT 3 PP(1,1,KS-1)|PHIT(1,1)|TM1(1,1)\n"
            "      DO JN = 1, 4\n"
            "        TM1(JN,JN) = 0.0\n"
            "      END DO\n"
            "C@INLINE END 3\n"
            "      END\n")

    def test_declarations(self):
        roundtrip(
            "      PROGRAM MAIN\n"
            "      IMPLICIT NONE\n"
            "      INTEGER I, N\n"
            "      DOUBLE PRECISION A(100), B(10,20), C(0:9)\n"
            "      COMMON /BLK/ A, B\n"
            "      PARAMETER (N=100)\n"
            "      DATA I /0/\n"
            "      SAVE C\n"
            "      DO 10 I = 1, N\n"
            "        A(I) = 0.0\n"
            "   10 CONTINUE\n"
            "      END\n")

    def test_long_line_continuation(self):
        # a statement long enough to require continuation lines
        terms = "+".join(f"LONGNAME{i}" for i in range(12))
        roundtrip("      SUBROUTINE S\n"
                  f"      RESULT = {terms}\n"
                  "      END\n")

    def test_goto_label(self):
        roundtrip("      SUBROUTINE S\n"
                  "      GO TO 300\n"
                  "      X = 1\n"
                  "  300 CONTINUE\n"
                  "      END\n")

    def test_function_unit(self):
        roundtrip("      DOUBLE PRECISION FUNCTION F(X)\n"
                  "      F = X*2.0\n"
                  "      RETURN\n"
                  "      END\n")

    @given(program_units())
    @settings(max_examples=60, deadline=None)
    def test_unit_roundtrip(self, unit):
        text = unparse(unit)
        reparsed = parse_source(text)
        assert reparsed.units == [unit]
