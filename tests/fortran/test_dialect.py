"""Dialect-construct goldens: parsing and unparsing of EQUIVALENCE,
full DATA, computed/assigned GOTO, ENTRY, alternate returns and
CHARACTER operations through the strict frontend."""

from repro.fortran import ast
from repro.fortran.parser import parse_source
from repro.fortran.unparser import unparse


def roundtrip(src):
    tree = parse_source(src)
    text = unparse(tree)
    assert parse_source(text).units == tree.units, text
    return tree, text


def main_of(src):
    return parse_source(src).units[0]


def wrap(*stmts):
    return ("      PROGRAM P\n"
            + "".join(f"      {s}\n" for s in stmts)
            + "      END\n")


class TestEquivalence:
    def test_parse_groups(self):
        unit = main_of("      PROGRAM P\n"
                       "      REAL A(4), B(4)\n"
                       "      EQUIVALENCE (A(1), B(2)), (X, Y)\n"
                       "      END\n")
        eq = [d for d in unit.decls
              if isinstance(d, ast.EquivalenceDecl)][0]
        assert len(eq.groups) == 2
        first = eq.groups[0]
        assert isinstance(first[0], ast.ArrayRef) and first[0].name == "A"
        assert isinstance(first[1], ast.ArrayRef) and first[1].name == "B"
        assert [v.name for v in eq.groups[1]] == ["X", "Y"]

    def test_unparse_golden(self):
        _, text = roundtrip("      PROGRAM P\n"
                            "      REAL A(4), B(4)\n"
                            "      EQUIVALENCE (A(1), B(2)), (X, Y)\n"
                            "      END\n")
        assert "EQUIVALENCE (A(1),B(2)),(X,Y)" in text


class TestData:
    def test_repeat_counts_expand(self):
        unit = main_of("      PROGRAM P\n"
                       "      REAL A(4)\n"
                       "      DATA A /2*1.0, 2*2.0/\n"
                       "      END\n")
        data = [d for d in unit.decls if isinstance(d, ast.DataDecl)][0]
        assert [v.value for v in data.values] == [1.0, 1.0, 2.0, 2.0]

    def test_implied_do_expands(self):
        unit = main_of("      PROGRAM P\n"
                       "      REAL B(4)\n"
                       "      DATA (B(I), I = 1, 4) /4*0.5/\n"
                       "      END\n")
        data = [d for d in unit.decls if isinstance(d, ast.DataDecl)][0]
        assert len(data.targets) == 4
        assert all(isinstance(t, ast.ArrayRef) for t in data.targets)
        assert data.targets[2].subs[0] == ast.IntLit(3)

    def test_unparse_golden(self):
        _, text = roundtrip("      PROGRAM P\n"
                            "      REAL A(4)\n"
                            "      DATA A /2*1.0, 2*2.0/\n"
                            "      END\n")
        assert "DATA A/1.0,1.0,2.0,2.0/" in text


class TestComputedGoto:
    SRC = wrap("K = 2",
               "GO TO (10, 20, 30), K",
               "X = 9.0") + ""

    def test_parse(self):
        unit = main_of(wrap("K = 2", "GO TO (10, 20, 30), K"))
        cg = unit.body[1]
        assert isinstance(cg, ast.ComputedGoto)
        assert cg.targets == (10, 20, 30)
        assert cg.index == ast.Var("K")

    def test_unparse_golden(self):
        _, text = roundtrip(wrap("K = 2", "GO TO (10, 20, 30), K"))
        assert "GO TO (10,20,30), K" in text


class TestAssignedGoto:
    def test_parse_assign_and_goto(self):
        unit = main_of("      PROGRAM P\n"
                       "      ASSIGN 40 TO IGO\n"
                       "      GO TO IGO, (40, 50)\n"
                       "   40 CONTINUE\n"
                       "   50 CONTINUE\n"
                       "      END\n")
        la, ag = unit.body[0], unit.body[1]
        assert isinstance(la, ast.LabelAssign)
        assert (la.target_label, la.var) == (40, "IGO")
        assert isinstance(ag, ast.AssignedGoto)
        assert (ag.var, ag.targets) == ("IGO", (40, 50))

    def test_goto_without_target_list(self):
        unit = main_of("      PROGRAM P\n"
                       "      ASSIGN 40 TO IGO\n"
                       "      GO TO IGO\n"
                       "   40 CONTINUE\n"
                       "      END\n")
        ag = unit.body[1]
        assert isinstance(ag, ast.AssignedGoto)
        assert ag.targets == ()

    def test_unparse_golden(self):
        _, text = roundtrip("      PROGRAM P\n"
                            "      ASSIGN 40 TO IGO\n"
                            "      GO TO IGO, (40, 50)\n"
                            "   40 CONTINUE\n"
                            "   50 CONTINUE\n"
                            "      END\n")
        assert "ASSIGN 40 TO IGO" in text
        assert "GO TO IGO, (40,50)" in text


class TestEntryAndAlternateReturn:
    SRC = ("      PROGRAM P\n"
           "      REAL A(4)\n"
           "      CALL SUB(A, *10)\n"
           "   10 CONTINUE\n"
           "      END\n"
           "      SUBROUTINE SUB(V, *)\n"
           "      REAL V(4)\n"
           "      ENTRY SUB2(V)\n"
           "      RETURN 1\n"
           "      END\n")

    def test_parse(self):
        tree = parse_source(self.SRC)
        call = tree.units[0].body[0]
        assert isinstance(call.args[1], ast.AltReturn)
        assert call.args[1].target == 10
        sub = tree.units[1]
        assert sub.params == ["V", "*"]
        entry = [s for s in sub.body if isinstance(s, ast.EntryStmt)][0]
        assert (entry.name, entry.params) == ("SUB2", ("V",))
        ret = [s for s in sub.body if isinstance(s, ast.Return)][0]
        assert ret.alt == ast.IntLit(1)

    def test_unparse_golden(self):
        _, text = roundtrip(self.SRC)
        assert "CALL SUB(A,*10)" in text
        assert "SUBROUTINE SUB(V,*)" in text
        assert "ENTRY SUB2(V)" in text
        assert "RETURN 1" in text


class TestCharacterOps:
    def test_concat_and_substring(self):
        unit = main_of("      PROGRAM P\n"
                       "      CHARACTER*8 NAME\n"
                       "      NAME = 'AB' // 'CD'\n"
                       "      NAME(3:4) = 'ZZ'\n"
                       "      END\n")
        concat = unit.body[0].value
        assert isinstance(concat, ast.BinOp) and concat.op == "//"
        sub = unit.body[1].target
        # substring target lowers to a ranged reference on NAME
        assert getattr(sub, "name", None) == "NAME"

    def test_unparse_golden(self):
        _, text = roundtrip("      PROGRAM P\n"
                            "      CHARACTER*8 NAME\n"
                            "      NAME = 'AB' // 'CD'\n"
                            "      NAME(3:4) = 'ZZ'\n"
                            "      END\n")
        assert "NAME = 'AB'//'CD'" in text
        assert "NAME(3:4) = 'ZZ'" in text
