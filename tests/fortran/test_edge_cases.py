"""Edge-case and error-path tests for the frontend."""

import pytest

from repro.errors import LexError, ParseError, SemanticError
from repro.fortran import ast
from repro.fortran.parser import parse_expression, parse_source
from repro.fortran.symbols import (build_symbol_table, expr_type,
                                   implicit_type, resolve_calls)
from repro.fortran.unparser import expr_to_str, unparse


class TestParserErrorPaths:
    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      IF (A.GT.(B THEN\n"
                         "      END\n")

    def test_mercury_bug_semantics(self):
        # "DO 10 I = 1" (no comma) is legally an assignment to the
        # variable DO10I — the famous fixed-form trap.  The frontend must
        # honour it, not reject it.
        unit = parse_source("      SUBROUTINE S\n      DO 10 I = 1\n"
                            "   10 CONTINUE\n      END\n").units[0]
        assign = unit.body[0]
        assert isinstance(assign, ast.Assign)
        assert assign.target == ast.Var("DO10I")

    def test_else_without_if(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      ELSE\n      END\n")

    def test_enddo_without_do(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      END DO\n      END\n")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      FROBNICATE X\n"
                         "      END\n")

    def test_missing_final_end(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      X = 1\n")

    def test_bad_parameter(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      PARAMETER (N=1) X\n"
                         "      END\n")

    def test_call_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_source("      SUBROUTINE S\n      CALL F(1)X\n"
                         "      END\n")


class TestParserCornerCases:
    def test_empty_units(self):
        f = parse_source("      SUBROUTINE S\n      END\n"
                         "      PROGRAM P\n      END\n")
        assert [u.name for u in f.units] == ["S", "P"]
        assert f.units[0].body == []

    def test_labelled_assignment_as_do_terminator(self):
        body = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(10)\n"
            "      DO 10 I = 1, 10\n"
            "   10 A(I) = 0.0\n"
            "      END\n").units[0].body
        loop = body[0]
        assert isinstance(loop.body[-1], ast.Assign)
        assert loop.body[-1].label == 10

    def test_deeply_nested_ifs(self):
        depth = 12
        src = "      SUBROUTINE S\n"
        for k in range(depth):
            src += f"      IF (X.GT.{k}.0) THEN\n"
        src += "      X = 0.0\n"
        for _ in range(depth):
            src += "      END IF\n"
        src += "      END\n"
        unit = parse_source(src).units[0]
        node = unit.body[0]
        for _ in range(depth - 1):
            assert isinstance(node, ast.IfBlock)
            node = node.arms[0][1][0]

    def test_triple_shared_terminator(self):
        body = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(8,8,8)\n"
            "      DO 10 I = 1, 8\n"
            "      DO 10 J = 1, 8\n"
            "      DO 10 K = 1, 8\n"
            "   10 A(I,J,K) = 0.0\n"
            "      END\n").units[0].body
        li = body[0]
        lj = li.body[-1]
        lk = lj.body[-1]
        assert (li.var, lj.var, lk.var) == ("I", "J", "K")
        assert isinstance(lk.body[-1], ast.Assign)

    def test_negative_literals_in_data(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(2)\n"
            "      DATA A /-1.5, -2/\n"
            "      END\n").units[0]
        d = unit.find_decls(ast.DataDecl)[0]
        assert d.values[0] == ast.UnOp("-", ast.RealLit(1.5))

    def test_lower_bound_declarations(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(-5:5, 0:9)\n"
            "      END\n").units[0]
        dims = unit.find_decls(ast.DimensionDecl)[0].entities[0].dims
        assert dims[0].lower == ast.UnOp("-", ast.IntLit(5))
        assert dims[1].lower == ast.IntLit(0)

    def test_blank_insensitivity(self):
        a = parse_source("      SUBROUTINE S\n      DO10I=1,5\n"
                         "   10 CONTINUE\n      END\n")
        b = parse_source("      SUBROUTINE S\n      DO 10 I = 1, 5\n"
                         "   10 CONTINUE\n      END\n")
        assert a.units == b.units


class TestSymbols:
    def test_implicit_typing_rule(self):
        for ch in "IJKLMN":
            assert implicit_type(ch + "X") == "INTEGER"
        for ch in "ABCHOZ":
            assert implicit_type(ch + "X") == "REAL"

    def test_implicit_none_enforced(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      IMPLICIT NONE\n"
            "      END\n").units[0]
        table = build_symbol_table(unit)
        with pytest.raises(SemanticError):
            table.info("UNDECLARED")

    def test_expr_type_promotion(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DOUBLE PRECISION D\n"
            "      INTEGER I\n"
            "      END\n").units[0]
        table = build_symbol_table(unit)
        assert expr_type(parse_expression("I + 1"), table) == "INTEGER"
        assert expr_type(parse_expression("I + 1.0"), table) == "REAL"
        assert expr_type(parse_expression("D*I"), table) \
            == "DOUBLE PRECISION"
        assert expr_type(parse_expression("I .GT. 1"), table) == "LOGICAL"

    def test_conflicting_dimensions_rejected(self):
        unit = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION A(10)\n"
            "      REAL A(20)\n"
            "      END\n").units[0]
        with pytest.raises(SemanticError):
            build_symbol_table(unit)

    def test_resolution_prefers_declared_array(self):
        f = parse_source(
            "      SUBROUTINE S\n"
            "      DIMENSION MAX(10)\n"
            "      X = MAX(3)\n"
            "      END\n")
        resolve_calls(f)
        assign = f.units[0].body[0]
        assert isinstance(assign.value, ast.ArrayRef)  # not the intrinsic


class TestUnparserEdges:
    def test_very_long_expression_roundtrip(self):
        # built via the AST (a raw 60-term source line would be truncated
        # at column 72, which is correct fixed-form behaviour)
        value = ast.Var("V0")
        for i in range(1, 60):
            value = ast.BinOp("+", value, ast.Var(f"V{i}"))
        unit = ast.ProgramUnit("SUBROUTINE", "S", [], [],
                               [ast.Assign(ast.Var("X"), value)])
        text = unparse(unit)
        assert any(line.startswith("     &") for line in text.splitlines())
        assert parse_source(text).units == [unit]

    def test_column_72_truncation_is_real(self):
        terms = "+".join(f"V{i}" for i in range(60))
        src = f"      SUBROUTINE S\n      X = {terms}\n      END\n"
        with pytest.raises(ParseError):
            parse_source(src)  # chopped mid-expression at column 72

    def test_deep_nesting_roundtrip(self):
        e = parse_expression("((((((A+B))))))*C")
        assert expr_to_str(e) == "(A+B)*C"

    def test_relational_inside_arith_error(self):
        # logical values are not arithmetic operands in our subset; the
        # unparser still renders them, the parser reparses equivalently
        e = ast.BinOp(".AND.", ast.BinOp(">", ast.Var("A"), ast.Var("B")),
                      ast.BinOp("<", ast.Var("C"), ast.Var("D")))
        assert parse_expression(expr_to_str(e)) == e
