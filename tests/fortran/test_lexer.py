"""Unit tests for the fixed-form reader and the statement tokenizer."""

import pytest

from repro.errors import LexError
from repro.fortran.lexer import tokenize
from repro.fortran.source import condense, read_logical_lines
from repro.fortran.tokens import TokenType


def types(stmt):
    return [t.type for t in tokenize(condense(stmt))][:-1]


def values(stmt):
    return [t.value for t in tokenize(condense(stmt))][:-1]


class TestCondense:
    def test_blanks_removed(self):
        assert condense("DO 200 J = 1, NSP") == "DO200J=1,NSP"

    def test_case_folded(self):
        assert condense("call foo(x)") == "CALLFOO(X)"

    def test_string_preserved(self):
        assert condense("WRITE(6,*) ' F ELEMENT '") == "WRITE(6,*)' F ELEMENT '"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            condense("X = 'oops")


class TestTokenizer:
    def test_names_and_ops(self):
        assert values("X2(I)=FX(I)*TSTEP**2/2.D0/DSUMM(N)") == [
            "X2", "(", "I", ")", "=", "FX", "(", "I", ")", "*", "TSTEP",
            "**", "2", "/", "2.D0", "/", "DSUMM", "(", "N", ")"]

    def test_dot_operators(self):
        assert values("IF(IERR.NE.0)") == ["IF", "(", "IERR", ".NE.", "0", ")"]

    def test_logical_literals(self):
        toks = tokenize("X=.TRUE..AND..NOT.Y")
        assert [t.value for t in toks][:-1] == \
            ["X", "=", ".TRUE.", ".AND.", ".NOT.", "Y"]
        assert toks[2].type is TokenType.LOGICAL

    def test_real_vs_dot_op_ambiguity(self):
        # 1.EQ.2 must lex as INT .EQ. INT, not REAL(1.) E Q . 2
        assert values("1.EQ.2") == ["1", ".EQ.", "2"]

    def test_real_literals(self):
        for text, ttype in [("1.5", TokenType.REAL), ("2.D0", TokenType.REAL),
                            (".5", TokenType.REAL), ("3.", TokenType.REAL),
                            ("1E6", TokenType.REAL), ("42", TokenType.INT)]:
            toks = tokenize(text)
            assert toks[0].type is ttype, text
            assert toks[0].value == text

    def test_double_exponent(self):
        toks = tokenize("TSTEP**2/2.D0")
        assert toks[4].value == "2.D0"
        assert toks[4].type is TokenType.REAL

    def test_signed_exponent(self):
        assert values("1.0E-3")[0] == "1.0E-3"

    def test_f90_relationals(self):
        assert values("A<=B") == ["A", "<=", "B"]

    def test_stray_char(self):
        with pytest.raises(LexError):
            tokenize("A?B")


class TestReader:
    def test_labels_and_continuation(self):
        src = (
            "      SUBROUTINE F(X)\n"
            "C a plain comment\n"
            "  200 X = 1 +\n"
            "     &    2\n"
            "      END\n")
        lines = read_logical_lines(src)
        assert [l.label for l in lines] == [None, 200, None]
        assert condense(lines[1].text) == "X=1+2"

    def test_comment_styles(self):
        src = "C one\nc two\n* three\n! four\n      X = 1\n      END\n"
        lines = read_logical_lines(src)
        assert len(lines) == 2

    def test_inline_comment_stripped(self):
        lines = read_logical_lines("      X = 1 ! trailing\n")
        assert condense(lines[0].text) == "X=1"

    def test_bang_in_string_not_comment(self):
        lines = read_logical_lines("      S = 'a!b'\n")
        assert "'a!b'" in lines[0].text

    def test_omp_directive_attached(self):
        src = ("!$OMP PARALLEL DO\n"
               "      DO 10 I = 1, N\n"
               "   10 CONTINUE\n")
        lines = read_logical_lines(src)
        assert lines[0].leading[0].kind == "omp"
        assert lines[0].leading[0].text.startswith("PARALLEL DO")

    def test_inline_tag_attached(self):
        src = ("C@INLINE BEGIN MATMLT 3 PP(1,1,KS-1)|PHIT(1,1)\n"
               "      X = 1\n"
               "C@INLINE END 3\n"
               "      Y = 2\n")
        lines = read_logical_lines(src)
        assert lines[0].leading[0].kind == "tag"
        assert lines[1].leading[0].kind == "tag"

    def test_column_73_ignored(self):
        stmt = "      X = 1" + " " * 61 + "XXXX"
        lines = read_logical_lines(stmt + "\n")
        assert condense(lines[0].text) == "X=1"

    def test_continuation_without_statement(self):
        with pytest.raises(LexError):
            read_logical_lines("     & X\n")

    def test_bad_label(self):
        with pytest.raises(LexError):
            read_logical_lines("  2X3 CONTINUE\n")
