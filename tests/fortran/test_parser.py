"""Unit tests for the Fortran 77 parser."""

import pytest

from repro.errors import ParseError
from repro.fortran import ast
from repro.fortran.parser import parse_expression, parse_source


def parse_body(stmts: str):
    src = "      SUBROUTINE T\n" + stmts + "      END\n"
    return parse_source(src).units[0].body


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("A+B*C")
        assert e == ast.BinOp("+", ast.Var("A"),
                              ast.BinOp("*", ast.Var("B"), ast.Var("C")))

    def test_power_right_assoc(self):
        e = parse_expression("A**B**C")
        assert e == ast.BinOp("**", ast.Var("A"),
                              ast.BinOp("**", ast.Var("B"), ast.Var("C")))

    def test_unary_minus_below_power(self):
        # -A**2 parses as -(A**2)
        e = parse_expression("-A**2")
        assert isinstance(e, ast.UnOp) and e.op == "-"
        assert isinstance(e.operand, ast.BinOp) and e.operand.op == "**"

    def test_relational_canonicalized(self):
        e = parse_expression("I .GT. 0")
        assert e == ast.BinOp(">", ast.Var("I"), ast.IntLit(0))

    def test_logical_precedence(self):
        e = parse_expression("A.LT.B .AND. .NOT. C.GT.D .OR. E.EQ.F")
        assert isinstance(e, ast.BinOp) and e.op == ".OR."

    def test_subscripted_subscript(self):
        e = parse_expression("T(IX(7)+I)")
        assert e == ast.ArrayRef(
            "T", (ast.BinOp("+", ast.ArrayRef("IX", (ast.IntLit(7),)),
                            ast.Var("I")),))

    def test_nested_parens(self):
        e = parse_expression("((A))")
        assert e == ast.Var("A")

    def test_double_literal(self):
        e = parse_expression("2.D0")
        assert e == ast.RealLit(2.0, "DOUBLE", "2.D0")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("A)B")


class TestStatements:
    def test_assignment(self):
        body = parse_body("      X2(I) = FX(I)*2.0\n")
        assert isinstance(body[0], ast.Assign)
        assert body[0].target == ast.ArrayRef("X2", (ast.Var("I"),))

    def test_call_no_args(self):
        body = parse_body("      CALL SHAPE1\n")
        assert body[0] == ast.CallStmt("SHAPE1", ())

    def test_call_with_args(self):
        body = parse_body("      CALL FSMP(ID, IDE)\n")
        assert body[0] == ast.CallStmt(
            "FSMP", (ast.Var("ID"), ast.Var("IDE")))

    def test_logical_if(self):
        body = parse_body("      IF (IERR.NE.0) STOP 'BAD'\n")
        s = body[0]
        assert isinstance(s, ast.IfBlock)
        assert len(s.arms) == 1
        assert s.arms[0][1] == [ast.Stop("BAD")]

    def test_block_if_else(self):
        body = parse_body(
            "      IF (A.GT.B) THEN\n"
            "        X = 1\n"
            "      ELSE IF (A.LT.B) THEN\n"
            "        X = 2\n"
            "      ELSE\n"
            "        X = 3\n"
            "      END IF\n")
        s = body[0]
        assert isinstance(s, ast.IfBlock)
        assert len(s.arms) == 3
        assert s.arms[2][0] is None

    def test_do_enddo(self):
        body = parse_body(
            "      DO I = 1, N\n"
            "        A(I) = 0.0\n"
            "      END DO\n")
        loop = body[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.term_label is None
        assert loop.var == "I" and len(loop.body) == 1

    def test_do_with_step(self):
        body = parse_body("      DO 10 I = 1, N, 2\n   10 CONTINUE\n")
        loop = body[0]
        assert loop.step == ast.IntLit(2)
        assert loop.term_label == 10

    def test_label_terminated_do(self):
        body = parse_body(
            "      DO 100 I = 1, N\n"
            "        A(I) = 0.0\n"
            "  100 CONTINUE\n")
        loop = body[0]
        assert loop.term_label == 100
        assert isinstance(loop.body[-1], ast.Continue)
        assert loop.body[-1].label == 100

    def test_shared_terminator_nest(self):
        # the paper's Figure 2 idiom: two DOs sharing label 200
        body = parse_body(
            "      DO 200 N = 1, NTYPES\n"
            "        NSP = NSPECI(N)\n"
            "        DO 200 J = 1, NSP\n"
            "          I = I + 1\n"
            "  200 CONTINUE\n")
        outer = body[0]
        assert isinstance(outer, ast.DoLoop) and outer.var == "N"
        inner = outer.body[-1]
        assert isinstance(inner, ast.DoLoop) and inner.var == "J"
        assert isinstance(inner.body[-1], ast.Continue)
        assert inner.body[-1].label == 200

    def test_goto(self):
        body = parse_body("      GO TO 300\n  300 CONTINUE\n")
        assert body[0] == ast.Goto(300)

    def test_write(self):
        body = parse_body("      WRITE(6,*) IDE, X\n")
        s = body[0]
        assert isinstance(s, ast.IoStmt)
        assert s.kind == "WRITE" and s.control == "6,*"
        assert s.items == (ast.Var("IDE"), ast.Var("X"))

    def test_print(self):
        body = parse_body("      PRINT *, X\n")
        assert body[0].kind == "PRINT"

    def test_format_dropped(self):
        body = parse_body("  900 FORMAT(1X,I5)\n      X = 1\n")
        assert len(body) == 1

    def test_stop_plain(self):
        body = parse_body("      STOP\n")
        assert body[0] == ast.Stop(None)

    def test_missing_endif(self):
        with pytest.raises(ParseError):
            parse_body("      IF (A.GT.B) THEN\n      X = 1\n")

    def test_missing_do_terminator(self):
        with pytest.raises(ParseError):
            parse_body("      DO 10 I=1,N\n      X = 1\n")


class TestDeclarations:
    def test_type_and_dimension(self):
        src = ("      SUBROUTINE S(X2,Y2)\n"
               "      DOUBLE PRECISION X2(*), Y2(*)\n"
               "      DIMENSION FX(1000)\n"
               "      INTEGER NSPECI(50)\n"
               "      END\n")
        unit = parse_source(src).units[0]
        types = unit.find_decls(ast.TypeDecl)
        assert types[0].typename == "DOUBLE PRECISION"
        assert types[0].entities[0].dims[0].upper is None  # assumed size
        dims = unit.find_decls(ast.DimensionDecl)
        assert dims[0].entities[0].dims[0].upper == ast.IntLit(1000)

    def test_common(self):
        src = ("      SUBROUTINE S\n"
               "      COMMON /BLK/ T(100000), IX(64)\n"
               "      COMMON A, B\n"
               "      END\n")
        unit = parse_source(src).units[0]
        commons = unit.find_decls(ast.CommonDecl)
        assert commons[0].block == "BLK"
        assert commons[0].entities[1].name == "IX"
        assert commons[1].block == ""

    def test_parameter(self):
        src = ("      SUBROUTINE S\n"
               "      PARAMETER (N=10, PI=3.14159)\n"
               "      END\n")
        unit = parse_source(src).units[0]
        p = unit.find_decls(ast.ParameterDecl)[0]
        assert p.assignments[0] == ("N", ast.IntLit(10))

    def test_data_with_repeat(self):
        src = ("      SUBROUTINE S\n"
               "      DIMENSION A(3)\n"
               "      DATA A /3*0.0/, B /1.5/\n"
               "      END\n")
        unit = parse_source(src).units[0]
        d = unit.find_decls(ast.DataDecl)[0]
        assert len(d.values) == 4
        assert d.targets[1] == ast.Var("B")

    def test_implicit_none(self):
        src = ("      SUBROUTINE S\n"
               "      IMPLICIT NONE\n"
               "      END\n")
        unit = parse_source(src).units[0]
        assert unit.find_decls(ast.ImplicitDecl)[0].text == "NONE"

    def test_real_star_8(self):
        src = ("      SUBROUTINE S\n"
               "      REAL*8 X\n"
               "      END\n")
        unit = parse_source(src).units[0]
        assert unit.find_decls(ast.TypeDecl)[0].typename == "DOUBLE PRECISION"


class TestUnits:
    def test_program_and_subroutine(self):
        src = ("      PROGRAM MAIN\n"
               "      CALL S(1)\n"
               "      END\n"
               "      SUBROUTINE S(I)\n"
               "      RETURN\n"
               "      END\n")
        f = parse_source(src)
        assert [u.kind for u in f.units] == ["PROGRAM", "SUBROUTINE"]
        assert f.units[1].params == ["I"]

    def test_typed_function(self):
        src = ("      DOUBLE PRECISION FUNCTION F(X)\n"
               "      F = X*2\n"
               "      END\n")
        unit = parse_source(src).units[0]
        assert unit.kind == "FUNCTION"
        assert unit.result_type == "DOUBLE PRECISION"

    def test_statement_outside_unit(self):
        with pytest.raises(ParseError):
            parse_source("      X = 1\n      END\n")


class TestOmpAndTags:
    def test_parallel_do_parsing(self):
        src = ("      SUBROUTINE S\n"
               "!$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(T1,T2) "
               "REDUCTION(+:SUM1)\n"
               "      DO 10 I = 1, N\n"
               "        SUM1 = SUM1 + A(I)\n"
               "   10 CONTINUE\n"
               "!$OMP END PARALLEL DO\n"
               "      END\n")
        body = parse_source(src).units[0].body
        omp = body[0]
        assert isinstance(omp, ast.OmpParallelDo)
        assert omp.private == ("T1", "T2")
        assert omp.reductions == (("+", "SUM1"),)

    def test_tagged_block_roundtrip_parse(self):
        src = ("      SUBROUTINE S\n"
               "C@INLINE BEGIN MATMLT 3 PP(1,1,KS-1)|PHIT(1,1)|TM1(1,1)\n"
               "      DO JN = 1, 4\n"
               "        TM1(JN,JN) = 0.0\n"
               "      END DO\n"
               "C@INLINE END 3\n"
               "      END\n")
        body = parse_source(src).units[0].body
        tb = body[0]
        assert isinstance(tb, ast.TaggedBlock)
        assert tb.callee == "MATMLT" and tb.site_id == 3
        assert len(tb.actuals) == 3
        assert isinstance(tb.body[0], ast.DoLoop)

    def test_tag_mismatch_rejected(self):
        src = ("      SUBROUTINE S\n"
               "C@INLINE BEGIN F 1\n"
               "      X = 1\n"
               "C@INLINE END 2\n"
               "      END\n")
        with pytest.raises(ParseError):
            parse_source(src)
