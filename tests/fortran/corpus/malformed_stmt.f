      PROGRAM BADSTM
      REAL A(16)
      INTEGER I
      THIS LINE IS NOT FORTRAN AT ALL %%%
      DO 10 I = 1, 16
         A(I) = REAL(I) * 3.0
   10 CONTINUE
      WRITE(6,*) A(8)
      END
