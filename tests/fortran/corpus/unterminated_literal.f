      PROGRAM UNTERM
      CHARACTER*12 MSG
      REAL A(8)
      INTEGER I
      MSG = 'NO CLOSING QUOTE
      DO 10 I = 1, 8
         A(I) = 0.75
   10 CONTINUE
      WRITE(6,*) A(1)
      END
