      PROGRAM SUBSTR
      CHARACTER*64 BUF
      REAL A(8)
      INTEGER I
      BUF = ' '
      DO 10 I = 1, 8
         BUF(I:I) = '*'
         A(I) = REAL(I)
   10 CONTINUE
      WRITE(6,*) BUF, A(4)
      END
