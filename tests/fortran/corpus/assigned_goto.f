      PROGRAM AGOTO
      REAL A(16)
      INTEGER I, LAB
      ASSIGN 20 TO LAB
      GO TO LAB, (10, 20)
   10 A(1) = 1.0
   20 CONTINUE
      DO 30 I = 1, 16
         A(I) = A(I) + 2.0
   30 CONTINUE
      WRITE(6,*) A(2)
      END
