      PROGRAM ENTRYP
      REAL A(16)
      INTEGER I
      DO 10 I = 1, 16
         CALL FIRST(A(I))
   10 CONTINUE
      WRITE(6,*) A(7)
      END
      SUBROUTINE FIRST(X)
      REAL X
      X = X + 1.0
      RETURN
      ENTRY SECOND(X)
      X = X - 1.0
      RETURN
      END
