      PROGRAM BADLAB
      REAL A(8)
      INTEGER I
      DO 10 I = 1, 8
         A(I) = 1.5
   10 CONTINUE
  X9Z A(1) = A(1) + 1.0
      WRITE(6,*) A(1)
      END
