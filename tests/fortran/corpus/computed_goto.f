      PROGRAM CGOTO
      REAL A(32)
      INTEGER I, K
      K = 2
      GO TO (10, 20, 30), K
   10 K = K + 7
      GO TO 40
   20 K = K + 11
      GO TO 40
   30 K = K + 13
   40 CONTINUE
      DO 50 I = 1, 32
         A(I) = REAL(I) * 0.5
   50 CONTINUE
      WRITE(6,*) A(3), K
      END
