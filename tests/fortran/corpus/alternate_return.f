      PROGRAM ALTRET
      REAL A(8)
      INTEGER I
      DO 10 I = 1, 8
         CALL CHECKD(A(I), *30)
   10 CONTINUE
      GO TO 40
   30 A(1) = -1.0
   40 CONTINUE
      WRITE(6,*) A(1)
      END
      SUBROUTINE CHECKD(X, *)
      REAL X
      IF (X .GT. 1000.0) RETURN 1
      X = X * 0.5
      RETURN
      END
