      PROGRAM COMRED
      COMMON /SHARED/ V(48), TOTAL
      REAL V, TOTAL
      INTEGER I
      DO 10 I = 1, 48
         V(I) = REAL(I) * 0.5
   10 CONTINUE
      TOTAL = 0.0
      DO 20 I = 1, 48
         TOTAL = TOTAL + V(I)
   20 CONTINUE
      WRITE(6,*) TOTAL
      END
