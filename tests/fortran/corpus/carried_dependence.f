      PROGRAM CARRY
      REAL A(65)
      INTEGER I
      DATA A /65*0.0/
      A(1) = 1.0
      DO 10 I = 1, 64
         A(I+1) = A(I) * 1.5
   10 CONTINUE
      WRITE(6,*) A(65)
      END
