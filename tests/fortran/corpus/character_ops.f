      PROGRAM CHAROP
      CHARACTER*8 NAME
      CHARACTER*16 TITLE
      REAL A(24)
      INTEGER I
      NAME = 'RESULT'
      TITLE = NAME // ': OK'
      NAME(1:3) = 'OUT'
      DO 10 I = 1, 24
         A(I) = REAL(I) + 0.25
   10 CONTINUE
      WRITE(6,*) NAME, TITLE, A(5)
      END
