      PROGRAM NOENDO
      REAL A(16)
      INTEGER I
      DO I = 1, 16
         A(I) = REAL(I) * 0.5
      WRITE(6,*) A(3)
      END
