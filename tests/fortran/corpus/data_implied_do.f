      PROGRAM DATAID
      REAL W(12), A(12)
      INTEGER I
      DATA (W(I), I = 1, 6) /6*1.5/
      DATA (W(I), I = 7, 12) /2.0, 2.5, 3.0, 3.5, 4.0, 4.5/
      DO 10 I = 1, 12
         A(I) = W(I) * 2.0
   10 CONTINUE
      WRITE(6,*) A(1), A(12)
      END
