      X = 99.0
      PROGRAM STRAYS
      REAL A(8)
      INTEGER I
      DO 10 I = 1, 8
         A(I) = 2.5
   10 CONTINUE
      WRITE(6,*) A(5)
      END
