      PROGRAM NOENIF
      REAL X
      X = 2.0
      IF (X .GT. 1.0) THEN
         X = X - 1.0
      WRITE(6,*) X
      END
