     &X = 3.0
      PROGRAM ORPHAN
      REAL X
      X = 2.0
      X = X * 2.0
      WRITE(6,*) X
      END
