      PROGRAM NOEND
      REAL A(8)
      INTEGER I
      DO 10 I = 1, 8
         A(I) = 4.0
   10 CONTINUE
      WRITE(6,*) A(2)
