      PROGRAM STRAYC
      REAL X
      X = 1.0
      ENDIF
      X = X + 1.0
      WRITE(6,*) X
      END
