      PROGRAM INTERP
      REAL A(64), B(64)
      INTEGER I
      DO 10 I = 1, 64
         A(I) = REAL(I)
         B(I) = 0.0
   10 CONTINUE
      DO 20 I = 1, 64
         CALL SCALE1(A(I), B(I))
   20 CONTINUE
      WRITE(6,*) B(32)
      END
      SUBROUTINE SCALE1(X, Y)
      REAL X, Y
      Y = X * 2.0 + 1.0
      RETURN
      END
