      PROGRAM DATARP
      REAL W(10)
      INTEGER I
      DATA W /10*0.5/
      DO 10 I = 1, 10
         W(I) = W(I) + REAL(I)
   10 CONTINUE
      WRITE(6,*) W(10)
      END
