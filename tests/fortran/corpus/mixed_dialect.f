      PROGRAM MIXED
      REAL A(64), B(64), C(64), D(64)
      CHARACTER*8 TAG
      INTEGER I, K
      EQUIVALENCE (A(1), B(1))
      DATA C /64*1.0/
      TAG = 'MIXED'
      TAG(6:8) = 'RUN'
      K = 1
      GO TO (10, 20), K
   10 K = K + 1
      GO TO 30
   20 K = K + 2
   30 CONTINUE
      DO 40 I = 1, 64
         A(I) = B(I) + C(I)
   40 CONTINUE
      DO 50 I = 1, 64
         D(I) = C(I) * 2.0 + REAL(I)
   50 CONTINUE
      WRITE(6,*) TAG, A(1), D(64), K
      END
