      PROGRAM EQUIV
      REAL A(64), B(64), C(64)
      INTEGER I
      EQUIVALENCE (A(1), B(1))
      DO 10 I = 1, 64
         A(I) = B(I) + 1.0
   10 CONTINUE
      DO 20 I = 1, 64
         C(I) = 2.0 * C(I)
   20 CONTINUE
      WRITE(6,*) A(1), C(1)
      END
