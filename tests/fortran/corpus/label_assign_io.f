      PROGRAM LABIO
      REAL A(16)
      INTEGER I, HOP
      ASSIGN 30 TO HOP
      DO 10 I = 1, 16
         A(I) = REAL(I) * 0.125
   10 CONTINUE
      GO TO HOP, (20, 30)
   20 WRITE(6,*) 'NOT TAKEN'
   30 WRITE(6,*) A(16)
      END
