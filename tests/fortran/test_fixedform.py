"""Tolerant fixed-form frontend: card repair, statement recovery,
implicit block closing, and the never-uncaught corpus property."""

import glob
import os

import pytest

from repro.fortran import ast
from repro.fortran.fixedform import (SEVERITIES, Diagnostic,
                                     parallelize_source,
                                     parse_source_tolerant)
from repro.fortran.parser import parse_source
from repro.program import Program

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS, "*.f")))
CORPUS_IDS = [os.path.basename(p) for p in CORPUS_FILES]


def parse(text):
    return parse_source_tolerant(text, "t.f")


def records(text):
    _, diags = parse(text)
    return [(d.code, d.line, d.severity) for d in diags]


class TestCleanInput:
    def test_no_diagnostics(self):
        src = ("      PROGRAM P\n"
               "      X = 1.0\n"
               "      END\n")
        sf, diags = parse(src)
        assert diags == []
        assert sf.units == parse_source(src).units

    def test_tolerant_matches_strict_on_dialect(self):
        # the strict parser accepts the dialect constructs too; the
        # tolerant layer must produce the identical tree for them
        src = ("      PROGRAM P\n"
               "      REAL A(4), B(4)\n"
               "      EQUIVALENCE (A(1), B(2))\n"
               "      DATA A /2*1.0, 2*2.0/\n"
               "      K = 2\n"
               "      GO TO (10, 20), K\n"
               "   10 CONTINUE\n"
               "   20 CONTINUE\n"
               "      END\n")
        sf, diags = parse(src)
        assert diags == []
        assert sf.units == parse_source(src).units


class TestStatementRecovery:
    def test_malformed_statement_boxed_as_opaque(self):
        sf, diags = parse("      PROGRAM P\n"
                          "      X = = 1.0\n"
                          "      Y = 2.0\n"
                          "      END\n")
        assert records("      PROGRAM P\n"
                       "      X = = 1.0\n"
                       "      Y = 2.0\n"
                       "      END\n") == [("parse-error", 2, "recovered")]
        box = sf.units[0].body[0]
        assert isinstance(box, ast.Opaque)
        assert box.text == "X = = 1.0"
        assert box.reason == "parse-error"
        # recovery resumes on the very next statement
        assert isinstance(sf.units[0].body[1], ast.Assign)

    def test_diagnostic_carries_location_and_excerpt(self):
        _, diags = parse("      PROGRAM P\n"
                         "      X = = 1.0\n"
                         "      END\n")
        (d,) = diags
        assert d.file == "t.f"
        assert d.line == 2
        assert "= =" in d.excerpt or "X = = 1.0" in d.excerpt
        assert d.severity in SEVERITIES

    def test_opaque_unparses_verbatim(self):
        src = ("      PROGRAM P\n"
               "      X = = 1.0\n"
               "      END\n")
        sf, _ = parse(src)
        prog = Program([sf], "t")
        prog.resolve()
        out = "".join(prog.unparse().values())
        assert "X = = 1.0" in out


class TestImplicitClose:
    def test_missing_do_label(self):
        assert records("      PROGRAM P\n"
                       "      DO 10 I = 1, 4\n"
                       "      X = 1.0\n"
                       "      END\n") == [("missing-do-label", 2, "note")]

    def test_missing_endif(self):
        src = ("      PROGRAM P\n"
               "      IF (X .GT. 0) THEN\n"
               "      X = 1.0\n"
               "      END\n")
        assert records(src) == [("missing-endif", 2, "note")]
        sf, _ = parse(src)
        assert isinstance(sf.units[0].body[0], ast.IfBlock)

    def test_missing_end(self):
        src = ("      PROGRAM P\n"
               "      X = 1.0\n")
        assert records(src) == [("missing-end", 1, "note")]
        sf, _ = parse(src)
        assert [u.name for u in sf.units] == ["P"]


class TestSkips:
    def test_stray_closer_dropped(self):
        src = ("      PROGRAM P\n"
               "      X = 1.0\n"
               "      ENDIF\n"
               "      END\n")
        assert records(src) == [("stray-closer", 3, "skipped")]
        sf, _ = parse(src)
        assert len(sf.units[0].body) == 1

    def test_orphan_continuation(self):
        src = ("     &X = 3.0\n"
               "      PROGRAM P\n"
               "      X = 1.0\n"
               "      END\n")
        assert records(src) == [("orphan-continuation", 1, "recovered"),
                                ("stray-statement", 1, "skipped")]

    def test_bad_label_field(self):
        src = ("  X9Z X = 1.0\n"
               "      PROGRAM P\n"
               "      Y = 1.0\n"
               "      END\n")
        assert records(src) == [("bad-label", 1, "recovered"),
                                ("stray-statement", 1, "skipped")]


class TestDiagnosticSchema:
    def test_dict_roundtrip(self):
        d = Diagnostic(code="parse-error", message="boom", file="a.f",
                       line=3, column=7, excerpt="X = =", severity="recovered")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_describe_mentions_code_and_position(self):
        d = Diagnostic(code="bad-label", message="label field junk",
                       file="a.f", line=3, severity="recovered")
        text = d.describe()
        assert "bad-label" in text
        assert "a.f" in text and "3" in text

    def test_severities_are_closed(self):
        assert set(SEVERITIES) == {"recovered", "skipped", "note"}


@pytest.mark.parametrize("path", CORPUS_FILES, ids=CORPUS_IDS)
class TestCorpusProperty:
    """Every corpus program parses clean or yields only recoverable
    diagnostics — never an uncaught exception."""

    def test_never_uncaught(self, path):
        with open(path) as fh:
            text = fh.read()
        result = parallelize_source({os.path.basename(path): text})
        for d in result["diagnostics"]:
            assert d["severity"] in SEVERITIES, d
        assert result["units"], "no program units recovered"
        assert result["output"].strip()

    def test_unparse_fixpoint(self, path):
        with open(path) as fh:
            text = fh.read()
        name = os.path.basename(path)
        sf, _ = parse_source_tolerant(text, name)
        prog = Program([sf], "fixpoint")
        prog.resolve()
        once = "".join(prog.unparse().values())
        sf2, _ = parse_source_tolerant(once, name)
        prog2 = Program([sf2], "fixpoint")
        prog2.resolve()
        assert "".join(prog2.unparse().values()) == once
