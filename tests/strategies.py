"""Hypothesis strategies generating random Fortran ASTs and source programs.

Used by the round-trip property tests (parse . unparse == id) and by the
dependence-test soundness suite.
"""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.fortran import ast

_NAMES = ["X", "Y", "Z", "A2", "FX", "TSTEP", "IDX", "N", "I", "J", "K"]
_ARRAYS = ["T", "B", "FE", "XY", "PP"]


@st.composite
def var_names(draw):
    first = draw(st.sampled_from(string.ascii_uppercase))
    rest = draw(st.text(string.ascii_uppercase + string.digits,
                        min_size=0, max_size=4))
    return first + rest


def int_lits():
    return st.integers(min_value=0, max_value=9999).map(ast.IntLit)


def real_lits():
    # generated spelling-free literals (text=None) so the unparser formats
    return st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False).map(lambda v: ast.RealLit(v))


def simple_vars():
    return st.sampled_from(_NAMES).map(ast.Var)


@st.composite
def exprs(draw, depth: int = 3, logical: bool = False):
    """Random expression; arithmetic unless ``logical``."""
    if logical:
        left = draw(exprs(depth=min(depth, 2)))
        right = draw(exprs(depth=min(depth, 2)))
        op = draw(st.sampled_from(["==", "/=", "<", "<=", ">", ">="]))
        base = ast.BinOp(op, left, right)
        if depth > 0 and draw(st.booleans()):
            other = draw(exprs(depth=depth - 1, logical=True))
            lop = draw(st.sampled_from([".AND.", ".OR."]))
            return ast.BinOp(lop, base, other)
        return base
    if depth <= 0:
        return draw(st.one_of(int_lits(), simple_vars()))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return draw(int_lits())
    if choice == 1:
        return draw(simple_vars())
    if choice == 2:
        name = draw(st.sampled_from(_ARRAYS))
        nsubs = draw(st.integers(1, 3))
        subs = tuple(draw(exprs(depth=depth - 1)) for _ in range(nsubs))
        return ast.ArrayRef(name, subs)
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "/", "**"]))
        return ast.BinOp(op, draw(exprs(depth=depth - 1)),
                         draw(exprs(depth=depth - 1)))
    if choice == 4:
        return ast.UnOp("-", draw(exprs(depth=depth - 1)))
    return draw(real_lits())


@st.composite
def assigns(draw, depth: int = 2):
    if draw(st.booleans()):
        target = draw(simple_vars())
    else:
        name = draw(st.sampled_from(_ARRAYS))
        subs = tuple(draw(exprs(depth=1))
                     for _ in range(draw(st.integers(1, 2))))
        target = ast.ArrayRef(name, subs)
    return ast.Assign(target, draw(exprs(depth=depth)))


@st.composite
def stmts(draw, depth: int = 2):
    if depth <= 0:
        return draw(assigns())
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(assigns())
    if choice == 1:
        cond = draw(exprs(logical=True))
        nthen = draw(st.integers(1, 2))
        arms = [(cond, [draw(stmts(depth=depth - 1)) for _ in range(nthen)])]
        if draw(st.booleans()):
            arms.append((None, [draw(stmts(depth=depth - 1))]))
        return ast.IfBlock(arms)
    if choice == 2:
        var = draw(st.sampled_from(["I", "J", "K"]))
        body = [draw(stmts(depth=depth - 1))
                for _ in range(draw(st.integers(1, 3)))]
        return ast.DoLoop(var, draw(exprs(depth=1)), draw(exprs(depth=1)),
                          None, body)
    if choice == 3:
        nargs = draw(st.integers(0, 3))
        return ast.CallStmt("SUB" + draw(st.sampled_from("ABC")),
                            tuple(draw(exprs(depth=1)) for _ in range(nargs)))
    return ast.Continue()


@st.composite
def program_units(draw):
    nbody = draw(st.integers(1, 5))
    body = [draw(stmts()) for _ in range(nbody)]
    decls = [ast.DimensionDecl([ast.Entity(a, (ast.Dim.upto(ast.IntLit(100)),
                                               ast.Dim.upto(ast.IntLit(10)),
                                               ast.Dim.upto(ast.IntLit(10))))])
             for a in _ARRAYS]
    return ast.ProgramUnit("SUBROUTINE", "TESTSUB", ["X", "Y"], decls, body)
