"""Hypothesis strategies generating random Fortran ASTs and source programs.

Used by the round-trip property tests (parse . unparse == id), the
dependence-test soundness suite, and the executable-program semantics
properties.

The *executable* strategies at the bottom build on the shared
program-building primitives of :mod:`repro.fuzz.generator` (COMMON
geometry, bounded affine subscripts, deterministic initialization), so
the hypothesis properties and the differential fuzzer exercise the same
program shapes and cannot drift apart.
"""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.fortran import ast
from repro.fuzz.generator import (ARRAYS, N, affine_subscript, common_decls,
                                  init_statements, make_program, wrap_main)

_NAMES = ["X", "Y", "Z", "A2", "FX", "TSTEP", "IDX", "N", "I", "J", "K"]
_ARRAYS = ["T", "B", "FE", "XY", "PP"]


@st.composite
def var_names(draw):
    first = draw(st.sampled_from(string.ascii_uppercase))
    rest = draw(st.text(string.ascii_uppercase + string.digits,
                        min_size=0, max_size=4))
    return first + rest


def int_lits():
    return st.integers(min_value=0, max_value=9999).map(ast.IntLit)


def real_lits():
    # generated spelling-free literals (text=None) so the unparser formats
    return st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False).map(lambda v: ast.RealLit(v))


def simple_vars():
    return st.sampled_from(_NAMES).map(ast.Var)


@st.composite
def exprs(draw, depth: int = 3, logical: bool = False):
    """Random expression; arithmetic unless ``logical``."""
    if logical:
        left = draw(exprs(depth=min(depth, 2)))
        right = draw(exprs(depth=min(depth, 2)))
        op = draw(st.sampled_from(["==", "/=", "<", "<=", ">", ">="]))
        base = ast.BinOp(op, left, right)
        if depth > 0 and draw(st.booleans()):
            other = draw(exprs(depth=depth - 1, logical=True))
            lop = draw(st.sampled_from([".AND.", ".OR."]))
            return ast.BinOp(lop, base, other)
        return base
    if depth <= 0:
        return draw(st.one_of(int_lits(), simple_vars()))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return draw(int_lits())
    if choice == 1:
        return draw(simple_vars())
    if choice == 2:
        name = draw(st.sampled_from(_ARRAYS))
        nsubs = draw(st.integers(1, 3))
        subs = tuple(draw(exprs(depth=depth - 1)) for _ in range(nsubs))
        return ast.ArrayRef(name, subs)
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "/", "**"]))
        return ast.BinOp(op, draw(exprs(depth=depth - 1)),
                         draw(exprs(depth=depth - 1)))
    if choice == 4:
        return ast.UnOp("-", draw(exprs(depth=depth - 1)))
    return draw(real_lits())


@st.composite
def assigns(draw, depth: int = 2):
    if draw(st.booleans()):
        target = draw(simple_vars())
    else:
        name = draw(st.sampled_from(_ARRAYS))
        subs = tuple(draw(exprs(depth=1))
                     for _ in range(draw(st.integers(1, 2))))
        target = ast.ArrayRef(name, subs)
    return ast.Assign(target, draw(exprs(depth=depth)))


@st.composite
def stmts(draw, depth: int = 2):
    if depth <= 0:
        return draw(assigns())
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(assigns())
    if choice == 1:
        cond = draw(exprs(logical=True))
        nthen = draw(st.integers(1, 2))
        arms = [(cond, [draw(stmts(depth=depth - 1)) for _ in range(nthen)])]
        if draw(st.booleans()):
            arms.append((None, [draw(stmts(depth=depth - 1))]))
        return ast.IfBlock(arms)
    if choice == 2:
        var = draw(st.sampled_from(["I", "J", "K"]))
        body = [draw(stmts(depth=depth - 1))
                for _ in range(draw(st.integers(1, 3)))]
        return ast.DoLoop(var, draw(exprs(depth=1)), draw(exprs(depth=1)),
                          None, body)
    if choice == 3:
        nargs = draw(st.integers(0, 3))
        return ast.CallStmt("SUB" + draw(st.sampled_from("ABC")),
                            tuple(draw(exprs(depth=1)) for _ in range(nargs)))
    return ast.Continue()


@st.composite
def program_units(draw):
    nbody = draw(st.integers(1, 5))
    body = [draw(stmts()) for _ in range(nbody)]
    decls = [ast.DimensionDecl([ast.Entity(a, (ast.Dim.upto(ast.IntLit(100)),
                                               ast.Dim.upto(ast.IntLit(10)),
                                               ast.Dim.upto(ast.IntLit(10))))])
             for a in _ARRAYS]
    return ast.ProgramUnit("SUBROUTINE", "TESTSUB", ["X", "Y"], decls, body)


# ---------------------------------------------------------------------------
# executable random programs (shared shapes with repro.fuzz.generator)
# ---------------------------------------------------------------------------

@st.composite
def subscripts(draw, var: str):
    """In-bounds subscript over loop variable ``var``: c1*var + c2 with
    c1 in 0..2 (c1=0 -> constant) and c2 in 1..8."""
    return affine_subscript(var, draw(st.integers(0, 2)),
                            draw(st.integers(1, N)))


@st.composite
def rhs_exprs(draw, var: str, depth: int = 2):
    if depth <= 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return ast.RealLit(float(draw(st.integers(1, 9))) / 2.0)
        if choice == 1:
            return ast.Var(var)
        return ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                            (draw(subscripts(var)),))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return ast.BinOp(op, draw(rhs_exprs(var, depth - 1)),
                     draw(rhs_exprs(var, depth - 1)))


@st.composite
def loop_bodies(draw, var: str):
    body = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            # scalar temporary then use (privatization fodder)
            body.append(ast.Assign(ast.Var("T"),
                                   draw(rhs_exprs(var, 1))))
            body.append(ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                ast.BinOp("+", ast.Var("T"), draw(rhs_exprs(var, 0)))))
        elif kind == 1:
            body.append(ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                draw(rhs_exprs(var, 2))))
        elif kind == 2:
            # reduction fodder
            body.append(ast.Assign(
                ast.Var("S"),
                ast.BinOp("+", ast.Var("S"), draw(rhs_exprs(var, 1)))))
        else:
            cond = ast.BinOp(">", draw(rhs_exprs(var, 1)),
                             ast.RealLit(2.0))
            body.append(ast.IfBlock([(cond, [ast.Assign(
                ast.ArrayRef(draw(st.sampled_from(ARRAYS)),
                             (draw(subscripts(var)),)),
                draw(rhs_exprs(var, 1)))])]))
    return body


@st.composite
def induction_loops(draw):
    """A loop with the K = K + c induction idiom, for the normalize
    property."""
    var = "J"
    amount = draw(st.integers(1, 3))
    writes = [
        ast.Assign(ast.Var("K"), ast.BinOp("+", ast.Var("K"),
                                           ast.IntLit(amount))),
        ast.Assign(ast.ArrayRef("A", (ast.Var("K"),)),
                   draw(rhs_exprs(var, 1))),
    ]
    if draw(st.booleans()):
        writes.reverse()
    loop = ast.DoLoop(var, ast.IntLit(1), ast.IntLit(draw(
        st.integers(2, 6))), None, writes)
    # K starts >= 1: the A(K) write may precede the first increment
    return [ast.Assign(ast.Var("K"), ast.IntLit(draw(st.integers(1, 4)))),
            loop]


@st.composite
def programs(draw, with_induction: bool = False):
    """A complete executable PROGRAM over the shared COMMON /D/ state."""
    body = init_statements()
    if with_induction:
        body.extend(draw(induction_loops()))
    nloops = draw(st.integers(1, 3))
    for _ in range(nloops):
        body.append(ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None,
                               draw(loop_bodies("I"))))
    return make_program([wrap_main(body)])


@st.composite
def callee_programs(draw):
    """A driver loop invoking a generated leaf subroutine with scalar,
    whole-array and array-element actuals."""
    callee_body = draw(loop_bodies("K"))
    # wrap accesses: the callee works on its formal V (assumed size) and
    # a scalar formal X
    def remap(e: ast.Expr):
        if isinstance(e, ast.ArrayRef) and e.name in ("B", "C"):
            return ast.ArrayRef("V", e.subs)
        if isinstance(e, ast.Var) and e.name == "T":
            return ast.Var("X")
        return None
    callee_body = ast.map_stmt_exprs(ast.clone(callee_body), remap)
    callee_body = [ast.Assign(ast.Var("S"), ast.RealLit(0.0))] \
        + callee_body
    callee = ast.ProgramUnit(
        "SUBROUTINE", "WORK", ["V", "X", "K"],
        [ast.DimensionDecl([ast.Entity("V", (ast.Dim(ast.IntLit(1),
                                                     None),))]),
         ast.CommonDecl("D", [
             ast.Entity("A", (ast.Dim.upto(ast.IntLit(64)),)),
             ast.Entity("S")])],
        callee_body)

    offset = draw(st.integers(1, 16))
    actual = draw(st.sampled_from(["whole", "element"]))
    arg0 = ast.Var("A") if actual == "whole" else \
        ast.ArrayRef("A", (ast.IntLit(offset),))
    main_body = [
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(64), None, [
            ast.Assign(ast.ArrayRef("A", (ast.Var("I"),)),
                       ast.BinOp("*", ast.Var("I"), ast.RealLit(0.25)))]),
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.CallStmt("WORK", (ast.clone(arg0),
                                  ast.RealLit(
                                      float(draw(st.integers(1, 5)))),
                                  ast.Var("I")))]),
    ]
    main = ast.ProgramUnit(
        "PROGRAM", "P", [],
        [ast.CommonDecl("D", [
            ast.Entity("A", (ast.Dim.upto(ast.IntLit(64)),)),
            ast.Entity("S")])],
        main_body)
    return make_program([main, callee])
