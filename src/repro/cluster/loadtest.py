"""``repro loadtest`` — concurrent-session replay against the service.

Drives N simultaneous client sessions (each its own TCP connection on
one asyncio loop, speaking the real wire protocol) against a gateway or
single-node daemon, then reports what the paper's batch numbers cannot
show: p50/p99 submit-to-result latency, saturation throughput,
error/retry counts, and dedup/shard hit rates.

Correctness is checked, not assumed: every returned result is compared
against a locally computed :func:`~repro.service.execution.execute_payload`
reference for its payload (volatile keys like per-run ``timings``
excluded), so a loadtest pass means *zero lost and zero incorrect jobs*
— byte-identical answers to a single-node run.

``--gate`` appends a ``loadtest`` suite record to ``BENCH_history.jsonl``
so the obs dashboard plots the latency trajectory alongside the
``table2``/``figure20`` bench lines.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.service import protocol
from repro.service.execution import execute_payload
from repro.service.jobs import payload_digest

_log = obs_logging.get_logger("repro.cluster.loadtest")

#: result keys excluded from the byte-identical comparison (wall-clock
#: measurements legitimately differ between runs)
VOLATILE_RESULT_KEYS = frozenset({"timings"})

#: history suite name the dashboard plots
HISTORY_SUITE = "loadtest"


def build_payloads(distinct: int, kind: str = "probe",
                   benchmark: str = "tref", config: str = "annotation"
                   ) -> List[Dict[str, Any]]:
    """``distinct`` deterministic payloads for a run.

    ``probe`` payloads (default) are instant echoes — they measure the
    *service* (framing, dedup, queueing, shard routing), not the
    pipeline.  ``benchmark`` payloads run the real pipeline on distinct
    configurations for an end-to-end soak.
    """
    if kind == "probe":
        return [{"kind": "probe", "probe": "echo",
                 "value": f"loadtest-{i:05d}"} for i in range(distinct)]
    if kind == "benchmark":
        configs = ("none", "conventional", "annotation")
        return [{"kind": "benchmark", "benchmark": benchmark,
                 "config": configs[i % len(configs)],
                 # a distinct no-op tag so dedup behaves as in `probe`
                 "tag": i // len(configs)}
                for i in range(distinct)]
    raise ValueError(f"unknown loadtest payload kind {kind!r}")


def reference_results(payloads: List[Dict[str, Any]]
                      ) -> Dict[str, Dict[str, Any]]:
    """Locally computed expected result per payload digest."""
    out = {}
    for payload in payloads:
        out[payload_digest(payload)] = _comparable(
            execute_payload(dict(payload)))
    return out


def _comparable(result: Optional[Dict[str, Any]]
                ) -> Optional[Dict[str, Any]]:
    if not isinstance(result, dict):
        return result
    return {k: v for k, v in result.items()
            if k not in VOLATILE_RESULT_KEYS}


async def _session(host: str, port: int, payloads: List[Dict[str, Any]],
                   wait_timeout: float, samples: List[Dict[str, Any]],
                   start_gate: asyncio.Event,
                   trace_ctx: Optional[Dict[str, Any]] = None) -> None:
    """One client session: connect, then submit-and-wait each payload."""
    await start_gate.wait()
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        for _ in payloads:
            samples.append({"ok": False, "code": "connect",
                            "error": str(exc)})
        return
    try:
        for payload in payloads:
            t0 = time.perf_counter()
            message = {"op": "submit", "payload": payload, "wait": True,
                       "wait_timeout": wait_timeout}
            if trace_ctx is not None:
                message["trace_ctx"] = trace_ctx
            try:
                await protocol.write_message_async(writer, message)
                response = await protocol.read_message_async(reader)
            except (OSError, protocol.ProtocolError) as exc:
                samples.append({"ok": False, "code": "connection",
                                "error": str(exc)})
                return
            samples.append({
                "ok": bool(response.get("ok")),
                "latency": time.perf_counter() - t0,
                "state": response.get("state"),
                "code": response.get("code"),
                "deduped": bool(response.get("deduped")),
                "cached": bool(response.get("cached")),
                "digest": response.get("digest"),
                "result": response.get("result"),
            })
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass


async def _drive(host: str, port: int,
                 plans: List[List[Dict[str, Any]]],
                 wait_timeout: float,
                 trace_ctx: Optional[Dict[str, Any]] = None) -> tuple:
    samples: List[Dict[str, Any]] = []
    start_gate = asyncio.Event()
    tasks = [asyncio.ensure_future(
        _session(host, port, plan, wait_timeout, samples, start_gate,
                 trace_ctx=trace_ctx))
        for plan in plans]
    await asyncio.sleep(0)      # let every session reach the gate
    start_gate.set()            # ...then open the floodgate together
    t0 = time.perf_counter()
    await asyncio.gather(*tasks)
    return samples, time.perf_counter() - t0


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear interpolation between closest ranks (numpy's default).

    ``round()`` banker's-rounds half-way ranks (p50 of two samples
    picked the *smaller* one), so interpolate instead: the q-quantile
    of n samples sits at fractional rank ``q * (n - 1)``.
    """
    if not sorted_values:
        return 0.0
    pos = min(1.0, max(0.0, q)) * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _service_stats(host: str, port: int) -> Dict[str, Any]:
    """One synchronous peek at the service's health + metrics ops."""
    from repro.service.client import ServiceClient
    stats: Dict[str, Any] = {}
    try:
        client = ServiceClient(host, port)
        stats["health"] = client.health()
        flat = client.metrics().get("metrics", {})
        for key in ("repro_jobs_retried_total",
                    "repro_cluster_steals_total",
                    "repro_cluster_dead_nodes_total",
                    "repro_jobs_deduped_total",
                    "repro_cache_hits_total",
                    "repro_cache_misses_total"):
            value = flat.get(key)
            if isinstance(value, (int, float)):
                stats[key] = value
    except Exception as exc:
        stats["error"] = f"{type(exc).__name__}: {exc}"
    return stats


def run_loadtest(host: str, port: int, sessions: int = 1000,
                 jobs_per_session: int = 1, distinct: int = 64,
                 kind: str = "probe", benchmark: str = "tref",
                 wait_timeout: float = 120.0,
                 verify: bool = True,
                 trace: bool = False) -> Dict[str, Any]:
    """Run the loadtest and return the report dict (see module doc).

    ``trace=True`` opens one distributed trace for the whole run: every
    submission carries the run's root context, so gateway, worker, and
    shard spans all land under a single trace id — collect the stitched
    timeline afterwards with ``repro trace-collect``.
    """
    distinct = max(1, min(distinct, sessions * jobs_per_session))
    payloads = build_payloads(distinct, kind=kind, benchmark=benchmark)
    expected = reference_results(payloads) if verify else {}

    trace_ctx = trace_id = None
    if trace:
        from repro.obs.distributed import TraceContext, new_trace_id
        root = TraceContext(new_trace_id())
        trace_id = root.trace_id
        trace_ctx = {"traceparent": root.to_traceparent()}

    # deterministic round-robin: session s starts at payload s, so with
    # distinct << sessions the dedup/cache paths get heavy concurrency
    plans = [[payloads[(s + j) % distinct]
              for j in range(jobs_per_session)]
             for s in range(sessions)]
    _log.info("loadtest-start", host=host, port=port, sessions=sessions,
              jobs=sessions * jobs_per_session, distinct=distinct,
              kind=kind, trace_id=trace_id)
    samples, duration = asyncio.run(
        _drive(host, port, plans, wait_timeout, trace_ctx=trace_ctx))

    latencies = sorted(s["latency"] for s in samples if "latency" in s)
    outcomes: Dict[str, int] = {}
    mismatches = lost = deduped = cached = 0
    for sample in samples:
        if sample.get("ok") and sample.get("state") == "done":
            outcomes["done"] = outcomes.get("done", 0) + 1
            deduped += bool(sample.get("deduped"))
            cached += bool(sample.get("cached"))
            if verify:
                want = expected.get(sample.get("digest"))
                if _comparable(sample.get("result")) != want:
                    mismatches += 1
        else:
            label = str(sample.get("code") or sample.get("state")
                        or "error")
            outcomes[label] = outcomes.get(label, 0) + 1
            lost += 1

    total_jobs = len(samples)
    report = {
        "host": host, "port": port,
        "sessions": sessions,
        "jobs_per_session": jobs_per_session,
        "jobs": total_jobs,
        "distinct_payloads": distinct,
        "payload_kind": kind,
        "duration_seconds": round(duration, 4),
        "throughput_jobs_per_sec": round(total_jobs / duration, 2)
            if duration > 0 else 0.0,
        "latency": {
            "p50": round(_percentile(latencies, 0.50), 4),
            "p90": round(_percentile(latencies, 0.90), 4),
            "p99": round(_percentile(latencies, 0.99), 4),
            "mean": round(sum(latencies) / len(latencies), 4)
                if latencies else 0.0,
            "max": round(latencies[-1], 4) if latencies else 0.0,
        },
        "outcomes": outcomes,
        "deduped": deduped,
        "cached": cached,
        "lost": lost,
        "mismatches": mismatches,
        "verified": verify,
        "ok": lost == 0 and mismatches == 0,
        "trace_id": trace_id,
        "service": _service_stats(host, port),
    }
    _observe(report)
    _log.info("loadtest-finish", ok=report["ok"], lost=lost,
              mismatches=mismatches, p99=report["latency"]["p99"],
              throughput=report["throughput_jobs_per_sec"])
    return report


def _observe(report: Dict[str, Any]) -> None:
    """Land the headline numbers in the obs registry (dashboard feed)."""
    g = obs_metrics.gauge
    g("repro_loadtest_sessions", "sessions in the last loadtest"
      ).set(report["sessions"])
    g("repro_loadtest_throughput_jobs_per_sec",
      "saturation throughput of the last loadtest"
      ).set(report["throughput_jobs_per_sec"])
    g("repro_loadtest_p50_seconds", "p50 latency of the last loadtest"
      ).set(report["latency"]["p50"])
    g("repro_loadtest_p99_seconds", "p99 latency of the last loadtest"
      ).set(report["latency"]["p99"])
    c = obs_metrics.counter
    c("repro_loadtest_jobs_total", "loadtest jobs driven, by outcome")
    for outcome, count in report["outcomes"].items():
        obs_metrics.counter("repro_loadtest_jobs_total").inc(
            count, outcome=outcome)
    if report["mismatches"]:
        c("repro_loadtest_mismatches_total",
          "loadtest results differing from the local reference"
          ).inc(report["mismatches"])


def append_history(report: Dict[str, Any],
                   path: str = "BENCH_history.jsonl") -> None:
    """Append a ``loadtest`` suite record the dashboard can plot
    (same JSONL stream as the bench gate's table2/figure20 records)."""
    record = {
        "ts": round(time.time(), 3),
        "mode": "loadtest",
        "suite": HISTORY_SUITE,
        # the trajectory chart plots p99 latency for this suite — the
        # number a service regression moves first.  A dedicated field:
        # aliasing it into total_seconds (a wall-clock elsewhere) made
        # the dashboard label latency as run time.
        "p99_seconds": report["latency"]["p99"],
        "phases": {"p50": report["latency"]["p50"],
                   "p90": report["latency"]["p90"],
                   "p99": report["latency"]["p99"]},
        "throughput_jobs_per_sec": report["throughput_jobs_per_sec"],
        "sessions": report["sessions"],
        "jobs": report["jobs"],
        "lost": report["lost"],
        "mismatches": report["mismatches"],
        "passed": report["ok"],
    }
    if isinstance(report.get("slo"), dict):
        # the gate's SLO evaluation rides along so the dashboard can
        # show the latest objective/burn-rate table without re-running
        record["slo"] = report["slo"]
    if report.get("trace_id"):
        record["trace_id"] = report["trace_id"]
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        _log.info("loadtest-history", path=os.path.abspath(path))
    except OSError as exc:
        _log.warning("loadtest-history-failed", path=path,
                     error=str(exc))
