"""Consistent-hash ring with virtual nodes.

The cluster partitions the result cache by payload digest.  A naive
``hash(key) % N`` remaps nearly *every* key when N changes; a consistent
ring only remaps the arc between a joining/leaving node's points — about
``1/N`` of the key space per change — so growing the cache tier doesn't
flush it.

Each physical node owns ``replicas`` points on the ring (virtual nodes),
placed by hashing ``"{node}#{i}"``; a key routes to the first point at
or clockwise after its own hash.  More replicas smooth the load spread
(the default 96 keeps the max/mean shard imbalance under ~1.3 for small
clusters) at the cost of a wider sorted-points array; lookups stay
``O(log(N * replicas))`` via :func:`bisect.bisect_right`.

Hashes come from SHA-256, so placement is deterministic across
processes, machines, and Python versions — the gateway and an external
operator tool always agree where a digest lives.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional

DEFAULT_REPLICAS = 96


def _point(label: str) -> int:
    """Ring coordinate of a label: the first 8 bytes of its SHA-256."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []      # sorted ring coordinates
        self._owners: List[str] = []      # node name per point (parallel)
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------

    def add_node(self, node: str) -> None:
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        points = []
        for i in range(self.replicas):
            point = _point(f"{node}#{i}")
            idx = bisect.bisect_left(self._points, point)
            # SHA-256 collisions on 64-bit prefixes are vanishingly
            # rare; keep first-come ownership deterministic if one shows
            if idx < len(self._points) and self._points[idx] == point:
                continue
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
            points.append(point)
        self._nodes[node] = points

    def remove_node(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            if idx < len(self._points) and self._points[idx] == point \
                    and self._owners[idx] == node:
                del self._points[idx]
                del self._owners[idx]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- routing -----------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        idx = bisect.bisect_right(self._points, _point(key))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._owners[idx]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (load-balance audits)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts
