"""The result cache, partitioned across cache-shard nodes.

A shard node is a tiny threaded TCP server (:class:`CacheShardServer`)
wrapping one existing :class:`repro.service.cache.ResultCache` — LRU
memory tier, bounded JSON disk tier, corrupt-entry sweep — behind the
same length-prefixed JSON protocol the rest of the system speaks
(``cache-get`` / ``cache-put`` / ``cache-stats`` / ``health`` /
``shutdown``).

:class:`ShardedCache` is the client the gateway holds: it routes each
payload digest over a :class:`repro.cluster.ring.HashRing` to one shard
backend and mirrors the single-node ``ResultCache`` interface
(``get``/``put``/``stats``), so the gateway's dedup/cache logic is the
same code as the single-node daemon's.  Backends are either in-process
(:class:`LocalShard`, unit tests and single-box deployments) or remote
(:class:`RemoteShard`, a persistent reconnecting socket).

Failure model: the cache is an optimization, never a correctness
dependency.  A shard that is down makes ``get`` a miss and ``put`` a
no-op for its arc of the ring — jobs recompute, the cluster stays
correct — and every such failure is counted per shard
(``repro_cluster_shard_requests_total{shard=...,outcome=error}``).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.distributed import TraceContext
from repro.service import protocol
from repro.service.cache import ResultCache

_log = obs_logging.get_logger("repro.cluster.shard")


def _cache_span(node: str, name: str, trace_ctx, t0_wall: float,
                duration: float, **args) -> Optional[Dict]:
    """One distributed span dict for a cache operation, or None when the
    carried ``trace_ctx`` is absent/malformed (tracing must never make a
    cache op fail)."""
    try:
        parent = TraceContext.from_dict(trace_ctx)
    except ValueError:
        return None
    if parent is None:
        return None
    ctx = parent.child()
    return {"name": name, "cat": "shard", "node": node,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_id": parent.span_id, "ts_wall": t0_wall,
            "dur": max(0.0, duration), "args": args}


class ShardError(Exception):
    """A shard backend could not serve a request (node down, bad frame)."""


# ---------------------------------------------------------------------------
# shard backends
# ---------------------------------------------------------------------------

class LocalShard:
    """In-process shard: wraps a ResultCache directly."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 capacity: int = 128, directory: Optional[str] = None):
        self.cache = cache if cache is not None \
            else ResultCache(capacity, directory=directory)

    def get(self, digest: str, trace_ctx: Optional[Dict] = None
            ) -> Optional[Dict]:
        return self.cache.get(digest)

    def put(self, digest: str, result: Dict,
            trace_ctx: Optional[Dict] = None) -> None:
        self.cache.put(digest, result)

    def stats(self) -> Dict[str, object]:
        return {"entries": len(self.cache), **self.cache.stats()}

    def close(self) -> None:
        pass


class RemoteShard:
    """A shard reached over the wire: persistent socket, one reconnect
    attempt per request, :class:`ShardError` on failure."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        #: callable(spans, remote_wall) receiving spans the shard node
        #: piggybacked on a traced response (set by the gateway)
        self.on_spans = None

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        return sock

    def request(self, message: Dict) -> Dict:
        with self._lock:
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    protocol.send_message(self._sock, message)
                    return protocol.recv_message(self._sock)
                except (OSError, protocol.ProtocolError) as exc:
                    # drop the (possibly half-dead) connection; retry
                    # once with a fresh one before giving up
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        except OSError:
                            pass
                        self._sock = None
                    if attempt:
                        raise ShardError(
                            f"shard {self.host}:{self.port} unreachable "
                            f"({exc})") from None

    def _harvest_spans(self, response: Dict) -> None:
        spans = response.get("spans")
        if isinstance(spans, list) and spans and self.on_spans is not None:
            try:
                self.on_spans(spans, response.get("wall"))
            except Exception:
                pass  # span delivery must never fail a cache op

    def get(self, digest: str, trace_ctx: Optional[Dict] = None
            ) -> Optional[Dict]:
        message = {"op": "cache-get", "digest": digest}
        if trace_ctx is not None:
            message["trace_ctx"] = trace_ctx
        response = self.request(message)
        if not response.get("ok"):
            raise ShardError(response.get("error", "cache-get failed"))
        self._harvest_spans(response)
        return response.get("result") if response.get("found") else None

    def put(self, digest: str, result: Dict,
            trace_ctx: Optional[Dict] = None) -> None:
        message = {"op": "cache-put", "digest": digest, "result": result}
        if trace_ctx is not None:
            message["trace_ctx"] = trace_ctx
        response = self.request(message)
        if not response.get("ok"):
            raise ShardError(response.get("error", "cache-put failed"))
        self._harvest_spans(response)

    def stats(self) -> Dict[str, object]:
        response = self.request({"op": "cache-stats"})
        if not response.get("ok"):
            raise ShardError(response.get("error", "cache-stats failed"))
        return {"entries": response.get("entries", 0),
                **response.get("stats", {})}

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None


def parse_shard_spec(spec: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``:port`` = 127.0.0.1) -> address tuple."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad shard spec {spec!r}; expected host:port")
    return host or "127.0.0.1", int(port)


# ---------------------------------------------------------------------------
# the sharded client
# ---------------------------------------------------------------------------

class ShardedCache:
    """Digest-partitioned result cache over a consistent-hash ring.

    Mirrors the single-node ``ResultCache`` surface (``get``/``put``/
    ``stats``) so the gateway treats one box and a shard fleet the same
    way.  All methods are thread-safe (backends carry their own locks;
    ring membership changes take the membership lock).
    """

    def __init__(self, shards: Optional[Dict[str, object]] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 registry: Optional[obs_metrics.MetricsRegistry] = None):
        self._lock = threading.Lock()
        self._shards: Dict[str, object] = {}
        self._ring = HashRing(replicas=replicas)
        registry = registry or obs_metrics.get_registry()
        self._m_requests = registry.counter(
            "repro_cluster_shard_requests_total",
            "shard cache requests by shard and outcome "
            "(hit/miss/put/error)")
        self._span_sink = None
        for name, backend in (shards or {}).items():
            self.add_shard(name, backend)

    def set_span_sink(self, sink) -> None:
        """Route distributed spans to ``sink(spans, remote_wall)``.

        Remote shards piggyback their own spans (recorded on the shard
        node's clock — ``remote_wall`` lets the receiver estimate the
        offset); local shards get a client-side span recorded here with
        ``remote_wall=None`` (same clock, no skew)."""
        with self._lock:
            self._span_sink = sink
            for backend in self._shards.values():
                if hasattr(backend, "on_spans"):
                    backend.on_spans = sink

    @classmethod
    def from_specs(cls, specs: List[str], timeout: float = 10.0,
                   replicas: int = DEFAULT_REPLICAS,
                   registry=None) -> "ShardedCache":
        """Build from ``host:port`` strings (the gateway CLI path)."""
        shards = {}
        for spec in specs:
            host, port = parse_shard_spec(spec)
            shards[f"{host}:{port}"] = RemoteShard(host, port,
                                                   timeout=timeout)
        return cls(shards, replicas=replicas, registry=registry)

    # -- membership --------------------------------------------------

    def add_shard(self, name: str, backend) -> None:
        with self._lock:
            self._shards[name] = backend
            self._ring.add_node(name)
            if self._span_sink is not None \
                    and hasattr(backend, "on_spans"):
                backend.on_spans = self._span_sink

    def remove_shard(self, name: str) -> None:
        with self._lock:
            backend = self._shards.pop(name, None)
            self._ring.remove_node(name)
        if backend is not None:
            backend.close()

    @property
    def shard_names(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    @property
    def replicas(self) -> int:
        return self._ring.replicas

    def _route(self, digest: str):
        with self._lock:
            name = self._ring.node_for(digest)
            return name, self._shards.get(name)

    # -- the ResultCache surface -------------------------------------

    def _local_span(self, name: str, op: str, trace_ctx,
                    t0_wall: float, duration: float, **args) -> None:
        """Record a client-side span for a backend that cannot piggyback
        its own (in-process LocalShard)."""
        if trace_ctx is None or self._span_sink is None:
            return
        span = _cache_span(f"shard:{name}", op, trace_ctx, t0_wall,
                           duration, **args)
        if span is not None:
            try:
                self._span_sink([span], None)
            except Exception:
                pass

    def get(self, digest: str,
            trace_ctx: Optional[Dict] = None) -> Optional[Dict]:
        name, shard = self._route(digest)
        if shard is None:
            return None
        remote = hasattr(shard, "on_spans")
        t0_wall, t0 = time.time(), time.perf_counter()
        try:
            if trace_ctx is not None:
                result = shard.get(digest, trace_ctx=trace_ctx)
            else:
                result = shard.get(digest)
        except ShardError as exc:
            self._m_requests.inc(shard=name, outcome="error")
            _log.warning("shard-get-failed", shard=name, error=str(exc))
            return None
        if not remote:
            self._local_span(name, "cache-get", trace_ctx, t0_wall,
                             time.perf_counter() - t0,
                             hit=result is not None)
        self._m_requests.inc(shard=name,
                             outcome="hit" if result is not None else "miss")
        return result

    def put(self, digest: str, result: Dict,
            trace_ctx: Optional[Dict] = None) -> None:
        name, shard = self._route(digest)
        if shard is None:
            return
        remote = hasattr(shard, "on_spans")
        t0_wall, t0 = time.time(), time.perf_counter()
        try:
            if trace_ctx is not None:
                shard.put(digest, result, trace_ctx=trace_ctx)
            else:
                shard.put(digest, result)
        except ShardError as exc:
            self._m_requests.inc(shard=name, outcome="error")
            _log.warning("shard-put-failed", shard=name, error=str(exc))
            return
        if not remote:
            self._local_span(name, "cache-put", trace_ctx, t0_wall,
                             time.perf_counter() - t0)
        self._m_requests.inc(shard=name, outcome="put")

    def stats(self) -> Dict[str, int]:
        """Aggregate lookup counters across reachable shards (the
        single-node ``health`` shape)."""
        totals = {"hits": 0, "disk_hits": 0, "misses": 0, "evictions": 0}
        for stats in self.shard_stats().values():
            for key in totals:
                value = stats.get(key)
                if isinstance(value, int):
                    totals[key] += value
        return totals

    def shard_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-shard stats; unreachable shards report ``alive: False``."""
        with self._lock:
            shards = dict(self._shards)
        out: Dict[str, Dict[str, object]] = {}
        for name, shard in sorted(shards.items()):
            try:
                out[name] = {"alive": True, **shard.stats()}
            except ShardError as exc:
                out[name] = {"alive": False, "error": str(exc)}
        return out

    def ring_info(self) -> Dict[str, object]:
        with self._lock:
            return {"replicas": self._ring.replicas,
                    "shards": self._ring.nodes}

    def close(self) -> None:
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.close()


# ---------------------------------------------------------------------------
# the shard node server
# ---------------------------------------------------------------------------

class CacheShardServer:
    """One cache-shard node: a ResultCache behind the wire protocol.

    Deliberately tiny — no queue, no workers, no job table.  Each
    accepted connection gets a handler thread (the gateway holds one
    persistent connection per shard, so thread count stays small).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 capacity: int = 512, directory: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 name: Optional[str] = None):
        self.cache = ResultCache(capacity, directory=directory,
                                 max_bytes=max_bytes)
        self.host = host
        self.port = port
        self.name = name
        self.address: Optional[Tuple[str, int]] = None
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    def start(self) -> Tuple[str, int]:
        swept = self.cache.sweep()
        if swept:
            _log.warning("shard-sweep", removed=swept)
        self._sock = socket.create_server((self.host, self.port))
        self.address = self._sock.getsockname()[:2]
        if self.name is None:
            self.name = f"shard:{self.address[0]}:{self.address[1]}"
        t = threading.Thread(target=self._accept_loop,
                             name="repro-shard-accept", daemon=True)
        t.start()
        self._threads.append(t)
        return self.address

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stop.wait(timeout=timeout)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            t = threading.Thread(target=self._serve_connection,
                                 args=(conn,), daemon=True)
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request = protocol.recv_message(conn)
                except protocol.ProtocolError:
                    return
                try:
                    response = self.handle_request(request)
                except Exception as exc:
                    response = protocol.error_response(
                        f"{type(exc).__name__}: {exc}", code="internal")
                shutdown = response.pop("_shutdown", False)
                try:
                    protocol.send_message(conn, response)
                except (OSError, protocol.ProtocolError):
                    return
                if shutdown:
                    threading.Thread(target=self.stop,
                                     daemon=True).start()
                    return

    def handle_request(self, request: Dict) -> Dict:
        op = request.get("op")
        trace_ctx = request.get("trace_ctx")
        if op == "cache-get":
            digest = request.get("digest")
            if not isinstance(digest, str):
                return protocol.error_response("cache-get needs a "
                                               "'digest'", "bad-request")
            t0_wall, t0 = time.time(), time.perf_counter()
            result = self.cache.get(digest)
            response = {"ok": True, "found": result is not None,
                        "result": result}
            self._attach_span(response, "cache-get", trace_ctx, t0_wall,
                              time.perf_counter() - t0,
                              hit=result is not None)
            return response
        if op == "cache-put":
            digest = request.get("digest")
            result = request.get("result")
            if not isinstance(digest, str) or not isinstance(result, dict):
                return protocol.error_response(
                    "cache-put needs 'digest' and a 'result' object",
                    "bad-request")
            t0_wall, t0 = time.time(), time.perf_counter()
            self.cache.put(digest, result)
            response = {"ok": True, "stored": True}
            self._attach_span(response, "cache-put", trace_ctx, t0_wall,
                              time.perf_counter() - t0)
            return response
        if op in ("cache-stats", "health"):
            return {"ok": True, "role": "cache-shard",
                    "entries": len(self.cache),
                    "capacity": self.cache.capacity,
                    "max_bytes": self.cache.max_bytes,
                    "directory": self.cache.directory,
                    "stats": self.cache.stats()}
        if op == "shutdown":
            return {"ok": True, "stopping": True, "_shutdown": True}
        return protocol.error_response(
            f"unknown op {op!r}; expected cache-get/cache-put/"
            f"cache-stats/health/shutdown", code="bad-op")

    def _attach_span(self, response: Dict, op: str, trace_ctx,
                     t0_wall: float, duration: float, **args) -> None:
        """Piggyback this operation's span (stamped with *this* node's
        wall clock) on the response; the caller's ``wall`` sample feeds
        its clock-offset estimate for our lane."""
        if trace_ctx is None:
            return
        span = _cache_span(self.name or f"shard:{self.host}:{self.port}",
                           op, trace_ctx, t0_wall, duration, **args)
        if span is not None:
            response["spans"] = [span]
            response["wall"] = time.time()
