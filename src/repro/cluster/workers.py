"""Worker nodes: the execution fleet behind the cluster gateway.

A :class:`WorkerNode` is a separate process (usually a separate machine)
that pulls leased jobs from the gateway, executes them in its own
crash-isolated :class:`~repro.experiments.executor.WorkerPool`, and
reports outcomes back — the distributed mirror of the single-node
daemon's dispatcher threads:

* each executor thread owns a private gateway connection and loops
  ``work-pull`` (long-poll) → ``work-start`` (lease check) → execute →
  ``work-done``/``work-fail``, so a slow job on one thread never blocks
  another thread's round trips;
* pool-worker crashes surface as ``work-fail kind=crash`` and the
  *gateway* owns the retry/backoff bookkeeping — a node can die
  mid-retry without losing the count;
* a heartbeat thread ships liveness plus a metrics-registry delta and
  any buffered distributed spans, tagged with a monotonic sequence
  number and this process's ``boot`` id.  The same ``(seq, delta,
  spans)`` triple is resent until the gateway acknowledges it, and the
  gateway merges each seq at most once — metric/span transfer is
  exactly-once even across lost responses (the cross-node extension of
  the PR 5 export/delta/merge arithmetic).  The boot id lets the
  gateway distinguish a *restarted* node (sequence counter reset to
  zero — accept from scratch) from a replayed heartbeat (drop);
* each heartbeat carries the node's wall clock, giving the gateway a
  stream of clock-offset samples for cross-node trace stitching;
* when the gateway reports ``stopping`` (or the link stays dead past
  the failure budget) the node shuts itself down.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.executor import (WorkerCrashError, WorkerPool,
                                        WorkerTimeout, resolve_jobs)
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.distributed import SpanRecorder, TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.service import protocol
from repro.service.execution import run_job_observed

_log = obs_logging.get_logger("repro.cluster.worker")


class GatewayUnreachable(Exception):
    """The gateway link failed and could not be re-established."""


class GatewayLink:
    """One persistent request/response connection to the gateway.

    Not shared across threads — every executor thread and the heartbeat
    thread carry their own link, so a long-poll on one never serializes
    another's reports.  Each request retries once on a fresh socket
    before raising :class:`GatewayUnreachable`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        for attempt in (0, 1):
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout)
                protocol.send_message(self._sock, message)
                return protocol.recv_message(self._sock)
            except (OSError, protocol.ProtocolError) as exc:
                self.close()
                if attempt:
                    raise GatewayUnreachable(
                        f"gateway {self.host}:{self.port} unreachable "
                        f"({exc})") from None

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class WorkerNode:
    """One member of the worker fleet (see module docstring)."""

    def __init__(self, gateway_host: str, gateway_port: int,
                 name: Optional[str] = None,
                 threads: int = 1, jobs: Optional[int] = None,
                 pull_wait: float = 1.0,
                 heartbeat_interval: float = 1.0,
                 link_failure_budget: int = 5,
                 inline: Optional[bool] = None):
        self.gateway = (gateway_host, gateway_port)
        self.name = name or f"worker-{socket.gethostname()}-{os.getpid()}"
        self.threads = max(1, threads)
        self.pull_wait = pull_wait
        self.heartbeat_interval = heartbeat_interval
        self.link_failure_budget = link_failure_budget
        self.pool = WorkerPool(resolve_jobs(jobs if jobs is not None
                                            else self.threads),
                               inline=inline)
        self._stop = threading.Event()
        self._threads: list = []
        self.jobs_done = 0
        self.jobs_failed = 0
        self._count_lock = threading.Lock()
        #: distinguishes this process incarnation in heartbeats, so a
        #: restart (sequence counter back to zero) is not mistaken for
        #: a replay by the gateway's exactly-once merge
        self.boot = uuid.uuid4().hex[:12]
        #: distributed spans recorded while executing traced jobs,
        #: shipped with the heartbeat stream
        self.spans = SpanRecorder(self.name)
        # exactly-once metrics+span shipping state (heartbeat thread only)
        self._last_export = obs_metrics.get_registry().export()
        self._seq = 0
        self._pending_ship: Optional[Tuple[int, Dict, Dict, List]] = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        _log.info("worker-start", node=self.name, threads=self.threads,
                  gateway=f"{self.gateway[0]}:{self.gateway[1]}")
        for i in range(self.threads):
            t = threading.Thread(target=self._executor_loop,
                                 name=f"repro-worker-exec-{i}",
                                 daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._heartbeat_loop,
                             name="repro-worker-heartbeat", daemon=True)
        t.start()
        self._threads.append(t)

    def stop(self) -> None:
        self._stop.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the node stops; True when it did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            budget = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            t.join(timeout=budget)
        self.pool.shutdown()
        return not any(t.is_alive() for t in self._threads)

    def run(self) -> None:
        """Start and block until the node stops (the CLI foreground)."""
        self.start()
        while not self._stop.is_set():
            self._stop.wait(timeout=0.2)
        self.wait(timeout=10.0)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the executor loop -------------------------------------------

    def _executor_loop(self) -> None:
        link = GatewayLink(*self.gateway)
        failures = 0
        try:
            while not self._stop.is_set():
                try:
                    response = link.request(
                        {"op": "work-pull", "node": self.name,
                         "max_jobs": 1, "wait": self.pull_wait})
                except GatewayUnreachable:
                    failures += 1
                    if failures >= self.link_failure_budget:
                        _log.warning("worker-link-dead", node=self.name)
                        self._stop.set()
                        return
                    self._stop.wait(timeout=0.5)
                    continue
                failures = 0
                if response.get("stopping"):
                    self._stop.set()
                    return
                for descriptor in response.get("jobs") or []:
                    self._run_one(link, descriptor)
        finally:
            link.close()

    def _run_one(self, link: GatewayLink,
                 descriptor: Dict[str, Any]) -> None:
        job_id = descriptor.get("job_id")
        payload = descriptor.get("payload") or {}
        ctx = descriptor.get("ctx") or {}
        trace_parent = None
        try:
            trace_parent = TraceContext.from_dict(
                descriptor.get("trace_ctx"))
        except ValueError:
            pass  # malformed context: run untraced rather than fail
        try:
            start = link.request({"op": "work-start", "node": self.name,
                                  "job_id": job_id})
        except GatewayUnreachable:
            return  # lease times out gateway-side; job is re-assigned
        if not start.get("granted"):
            _log.info("lease-refused", node=self.name, job_id=job_id,
                      reason=start.get("reason"))
            return
        report: Dict[str, Any]
        outcome = "done"
        t0_wall, t0 = time.time(), time.perf_counter()
        with obs_logging.log_context(job_id=job_id, **ctx):
            try:
                result, delta = self.pool.run(
                    run_job_observed, (payload, ctx),
                    timeout=start.get("remaining"))
            except WorkerTimeout:
                outcome = "timeout"
                report = {"op": "work-fail", "kind": "timeout",
                          "error": "deadline expired while running"}
            except WorkerCrashError as exc:
                outcome = "crash"
                report = {"op": "work-fail", "kind": "crash",
                          "error": str(exc)}
            except Exception as exc:
                outcome = "error"
                report = {"op": "work-fail", "kind": "error",
                          "error": f"{type(exc).__name__}: {exc}"}
            else:
                if delta:
                    obs_metrics.get_registry().merge(delta)
                report = {"op": "work-done", "result": result}
        if trace_parent is not None:
            self.spans.record(
                "execute", trace_parent.child(), cat="worker",
                start_wall=t0_wall,
                duration=time.perf_counter() - t0,
                parent_id=trace_parent.span_id, job_id=job_id,
                digest=descriptor.get("digest"), outcome=outcome,
                attempt=start.get("attempts"))
        report.update(node=self.name, job_id=job_id)
        with self._count_lock:
            if report["op"] == "work-done":
                self.jobs_done += 1
            else:
                self.jobs_failed += 1
        try:
            link.request(report)
        except GatewayUnreachable:
            # the gateway will declare this node dead and retry the job;
            # dedup/caching keeps the re-run cheap and correct
            _log.warning("report-lost", node=self.name, job_id=job_id)

    # -- heartbeats + exactly-once metric/span shipping --------------

    def _capture_ship(self) -> Tuple[int, Dict, Dict, List]:
        if self._pending_ship is None:
            export = obs_metrics.get_registry().export()
            delta = MetricsRegistry.delta(self._last_export, export)
            # spans drain into the pending ship and stay there until the
            # gateway acks the seq — a lost response resends the same
            # batch, and the gateway's seq check drops the replay
            self._pending_ship = (self._seq + 1, delta or {}, export,
                                  self.spans.drain())
        return self._pending_ship

    def _heartbeat_message(self) -> Tuple[Dict[str, Any], int, Dict]:
        seq, delta, export, spans = self._capture_ship()
        with self._count_lock:
            info = {"pid": os.getpid(), "threads": self.threads,
                    "pool_mode": "inline" if self.pool.inline
                                 else "process",
                    "boot": self.boot,
                    "jobs_done": self.jobs_done,
                    "jobs_failed": self.jobs_failed}
        message = {"op": "heartbeat", "node": self.name,
                   "boot": self.boot, "wall": time.time(),
                   "seq": seq, "metrics": delta, "info": info}
        if spans:
            message["spans"] = spans
        return message, seq, export

    def _heartbeat_loop(self) -> None:
        link = GatewayLink(*self.gateway)
        failures = 0
        try:
            while not self._stop.wait(timeout=self.heartbeat_interval):
                message, seq, export = self._heartbeat_message()
                try:
                    response = link.request(message)
                except GatewayUnreachable:
                    failures += 1
                    if failures >= self.link_failure_budget:
                        _log.warning("heartbeat-link-dead",
                                     node=self.name)
                        self._stop.set()
                        return
                    continue
                failures = 0
                if response.get("ok"):
                    # acked: advance the baseline; replays of this seq
                    # (had the response been lost) are no-ops gateway-side
                    self._seq = seq
                    self._last_export = export
                    self._pending_ship = None
                if response.get("stopping"):
                    self._stop.set()
                    return
        finally:
            # best-effort final flush so the last jobs' spans/metrics
            # reach the gateway before this process exits
            try:
                message, seq, export = self._heartbeat_message()
                response = link.request(message)
                if response and response.get("ok"):
                    self._seq = seq
                    self._last_export = export
                    self._pending_ship = None
            except (GatewayUnreachable, Exception):
                pass
            link.close()
