"""The cluster gateway: an asyncio front door for the parallelization
service.

One :class:`ClusterGateway` multiplexes thousands of concurrent client
sessions over a single event loop while speaking exactly the protocol of
the single-node daemon — the synchronous
:class:`repro.service.client.ServiceClient` works unchanged, frame for
frame (``submit``/``status``/``result``/``cancel``/``health``/
``metrics``/``shutdown``).

Scale-out happens behind that front door:

* the result cache is a :class:`repro.cluster.shardcache.ShardedCache` —
  payload digests route over a consistent-hash ring to cache-shard
  nodes;
* execution happens on a worker fleet (:mod:`repro.cluster.workers`)
  speaking five extra ops: ``work-pull`` (batched lease of queued jobs,
  long-poll), ``work-start`` (lease validity check — refused when the
  job was stolen, canceled, or re-assigned after a presumed death),
  ``work-done``, ``work-fail`` (kind: ``crash``/``error``/``timeout``),
  and ``heartbeat`` (liveness + a metrics-registry delta tagged with a
  monotonic sequence number, merged exactly once);
* an idle puller facing an empty queue *steals* an unstarted leased job
  from the node with the largest backlog — the victim's later
  ``work-start`` for it is refused, so a job never runs twice;
* a sweeper declares nodes dead after ``heartbeat_timeout`` silent
  seconds: their unstarted leases re-enter the queue immediately and
  their running jobs take the crash-retry path (exponential backoff,
  attempts respected) — the same semantics PR 2 gave in-process worker
  crashes;
* an observability plane: traced submissions (a ``trace_ctx`` beside
  the payload, like ``ctx``) open gateway spans for the cache lookup,
  queue wait, execution, and the whole job; worker/shard spans arrive
  piggybacked on heartbeats and cache responses together with remote
  wall clocks that feed a per-node :class:`ClockModel`; a ``telemetry``
  op streams merged metric snapshots + health events, and a
  ``trace-export`` op hands everything to ``repro trace-collect`` for
  cross-node stitching.

Concurrency model: all mutable state (job table, queue, leases, node
table) is owned by the event loop and touched only from coroutines, so
there are no locks; the only blocking work — shard-cache socket I/O and
the optional embedded worker pool — is pushed through
``asyncio.to_thread``, with dedup re-checked after every ``await`` that
could have admitted a competitor.

A gateway with ``local_workers > 0`` embeds its own executor fleet
driven through the *same* lease machinery as remote nodes, so one
process can serve a full cluster surface (tests, small deployments).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.shardcache import LocalShard, ShardedCache
from repro.experiments.executor import (WorkerCrashError, WorkerPool,
                                        WorkerTimeout, resolve_jobs)
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.distributed import (ClockModel, SpanRecorder, TraceContext)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SpanStore, TelemetryStore
from repro.service import ops, protocol
from repro.service.execution import PAYLOAD_KINDS, run_job_observed
from repro.service.jobs import (FINAL_STATES, Job, JobState, payload_digest)

_log = obs_logging.get_logger("repro.cluster.gateway")

_LIVE_STATES = (JobState.QUEUED, JobState.RUNNING)

#: a node silent for this many seconds is declared dead
DEFAULT_HEARTBEAT_TIMEOUT = 5.0


class _Node:
    """Loop-owned view of one worker node (remote or embedded)."""

    __slots__ = ("name", "local", "last_seen", "last_seq", "boot",
                 "unstarted", "running", "lease_at", "done", "failed",
                 "stolen_from", "info")

    def __init__(self, name: str, local: bool = False):
        self.name = name
        self.local = local
        self.last_seen = time.monotonic()
        self.last_seq = 0            # highest merged metrics/span seq
        self.boot: Optional[str] = None  # node process incarnation id
        self.unstarted: set = set()  # leased job ids not yet started
        self.running: set = set()    # leased job ids executing
        self.lease_at: Dict[str, float] = {}  # job id -> lease monotonic
        self.done = 0
        self.failed = 0
        self.stolen_from = 0
        self.info: Dict[str, Any] = {}


class ClusterGateway:
    """Asyncio gateway: client front door + worker-fleet coordinator.

    ``port=0`` binds an ephemeral port; read ``gateway.address`` after
    start.  With no ``shards`` a single in-process shard backs the
    cache, so a bare gateway still dedups and caches.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 shards: Optional[ShardedCache] = None,
                 queue_capacity: int = 256,
                 default_deadline: Optional[float] = None,
                 max_retries: int = 1, retry_backoff: float = 0.5,
                 drain_timeout: float = 30.0,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 local_workers: int = 0,
                 inline: Optional[bool] = None,
                 telemetry_dir: Optional[str] = None,
                 telemetry_interval: float = 2.0,
                 run_id: Optional[str] = None):
        self.host = host
        self.port = port
        self.queue_capacity = queue_capacity
        self.default_deadline = default_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.drain_timeout = drain_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.local_workers = local_workers
        self.telemetry_interval = telemetry_interval
        self.metrics = MetricsRegistry()
        self.cache = shards if shards is not None else ShardedCache(
            {"local": LocalShard()}, registry=self.metrics)
        self.pool = WorkerPool(resolve_jobs(local_workers or 1),
                               inline=inline) if local_workers else None

        # observability plane: spans recorded here + shipped from
        # workers/shards, wall-clock offsets per node, periodic
        # snapshots/events (persisted when telemetry_dir is given)
        self.run_id = run_id or f"gw-{os.getpid()}"
        self.clock = ClockModel()
        self.spans = SpanRecorder("gateway")
        self.span_store = SpanStore(telemetry_dir, self.run_id)
        self.telemetry = TelemetryStore(telemetry_dir, self.run_id)
        self._traced: Dict[str, Dict[str, Any]] = {}  # job id -> trace
        self.cache.set_span_sink(self._ingest_spans)

        self.address: Optional[Tuple[str, int]] = None
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, str] = {}
        self._pending: deque = deque()            # job ids awaiting lease
        self._waiters: Dict[str, asyncio.Event] = {}
        self._nodes: Dict[str, _Node] = {}

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._work_available: Optional[asyncio.Event] = None
        self._stopped_async: Optional[asyncio.Event] = None
        self._tasks: List[asyncio.Task] = []
        self._draining = False
        self._stopping = False
        self._started_at: Optional[float] = None
        self._ready = threading.Event()    # address bound (background mode)
        self._finished = threading.Event()  # loop exited (background mode)
        self._thread: Optional[threading.Thread] = None

        m = self.metrics
        self._m_submitted = m.counter(
            "repro_jobs_submitted_total", "jobs accepted into the queue")
        self._m_rejected = m.counter(
            "repro_jobs_rejected_total", "submissions rejected (queue full)")
        self._m_deduped = m.counter(
            "repro_jobs_deduped_total", "submissions joined to an "
            "in-flight job with the same digest")
        self._m_retried = m.counter(
            "repro_jobs_retried_total", "crash retries re-enqueued")
        self._m_completed = m.counter(
            "repro_jobs_completed_total", "jobs reaching a final state, "
            "by state")
        self._m_cache_hits = m.counter(
            "repro_cache_hits_total", "submissions answered from the "
            "result cache")
        self._m_cache_misses = m.counter(
            "repro_cache_misses_total", "submissions that had to run")
        self._m_depth = m.gauge(
            "repro_queue_depth", "jobs waiting in the queue")
        self._m_running = m.gauge(
            "repro_jobs_running", "jobs currently executing")
        self._m_uptime = m.gauge(
            "repro_uptime_seconds", "seconds since the gateway started")
        self._m_latency = m.histogram(
            "repro_job_latency_seconds", "submit-to-finish wall clock")
        self._m_requests = m.counter(
            "repro_requests_total", "protocol requests handled, by op")
        self._m_sessions = m.gauge(
            "repro_cluster_sessions", "connected protocol sessions")
        self._m_pulls = m.counter(
            "repro_cluster_pulls_total", "work-pull requests, by outcome "
            "(jobs/steal/empty)")
        self._m_steals = m.counter(
            "repro_cluster_steals_total", "jobs stolen from a busy "
            "node's unstarted backlog")
        self._m_dead = m.counter(
            "repro_cluster_dead_nodes_total", "worker nodes declared "
            "dead after missed heartbeats")
        self._m_heartbeats = m.counter(
            "repro_cluster_heartbeats_total", "worker heartbeats received")
        self._m_loops_parallel = m.counter(
            "repro_loops_parallel_total", "loops parallelized by "
            "finished jobs")
        self._m_loops_serial = m.counter(
            "repro_loops_serial_total", "loops left serial by finished "
            "jobs, by reason")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start_async(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._work_available = asyncio.Event()
        self._stopped_async = asyncio.Event()
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        self._tasks.append(asyncio.ensure_future(self._sweep_loop()))
        self._tasks.append(asyncio.ensure_future(self._telemetry_loop()))
        for i in range(self.local_workers):
            self._tasks.append(asyncio.ensure_future(
                self._local_worker_loop(f"local-{i}")))
        _log.info("gateway-start", host=self.address[0],
                  port=self.address[1], local_workers=self.local_workers,
                  shards=len(self.cache.shard_names))
        self._ready.set()
        return self.address

    async def run(self) -> None:
        """Start and serve until a shutdown request stops the gateway."""
        await self.start_async()
        await self._stopped_async.wait()

    async def stop_async(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        _log.info("gateway-stop", pending=self.pending_jobs())
        if self._server is not None:
            self._server.close()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        if self.pool is not None:
            self.pool.shutdown()
        await asyncio.to_thread(self.cache.close)
        self._stopped_async.set()

    async def _shutdown_task(self, drain: bool,
                             drain_timeout: Optional[float]) -> None:
        if drain and not self._stopping:
            self._draining = True
            budget = self.drain_timeout if drain_timeout is None \
                else float(drain_timeout)
            deadline = time.monotonic() + max(0.0, budget)
            _log.info("drain-start", pending=self.pending_jobs())
            while self.pending_jobs() and time.monotonic() < deadline \
                    and not self._stopping:
                await asyncio.sleep(0.02)
            _log.info("drain-finish", pending=self.pending_jobs())
        await self.stop_async()

    # -- background (thread) mode: sync callers, tests, the CLI --------

    def start_background(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Run the gateway's event loop in a daemon thread; returns the
        bound address.  Pair with :meth:`stop` / :meth:`wait`."""
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-gateway", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("gateway failed to start within "
                               f"{timeout}s")
        assert self.address is not None
        return self.address

    def _thread_main(self) -> None:
        try:
            asyncio.run(self.run())
        finally:
            self._finished.set()

    def stop(self, drain: bool = False,
             drain_timeout: Optional[float] = None) -> None:
        """Thread-safe shutdown request (background mode)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(
                    self._shutdown_task(drain, drain_timeout)))
        except RuntimeError:
            pass  # loop already gone

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._started_at is not None and not self._stopping

    @property
    def draining(self) -> bool:
        return self._draining

    def uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def pending_jobs(self) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.state not in FINAL_STATES)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._m_sessions.inc()
        try:
            while not self._stopping:
                try:
                    request = await protocol.read_message_async(reader)
                except protocol.ProtocolError:
                    return
                try:
                    response = await self.handle_request(request)
                except Exception as exc:
                    response = protocol.error_response(
                        f"{type(exc).__name__}: {exc}", code="internal")
                shutdown = response.pop("_shutdown", False)
                drain = response.pop("_drain", False)
                drain_timeout = response.pop("_drain_timeout", None)
                try:
                    await protocol.write_message_async(writer, response)
                except protocol.ProtocolError as exc:
                    # response exceeds the frame limit: tell the client
                    # instead of silently dropping the connection
                    try:
                        await protocol.write_message_async(
                            writer, protocol.error_response(
                                f"response too large for one frame: {exc}",
                                code="oversize"))
                    except (OSError, protocol.ProtocolError):
                        return
                except (OSError, ConnectionResetError):
                    return
                if shutdown:
                    asyncio.ensure_future(
                        self._shutdown_task(drain, drain_timeout))
                    return
        except asyncio.CancelledError:
            return  # loop teardown mid-request (e.g. a worker long-poll)
        finally:
            self._m_sessions.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError,
                    asyncio.CancelledError):
                pass

    async def handle_request(self, request: Dict[str, Any]
                             ) -> Dict[str, Any]:
        """Answer one protocol request (also the unit-test entry point)."""
        op = request.get("op")
        handler = self._OPS.get(op) if isinstance(op, str) else None
        if handler is None:
            self._m_requests.inc(op="unknown")
            return protocol.error_response(
                f"unknown op {op!r}; expected submit/status/result/cancel/"
                f"health/metrics/telemetry/trace-export/shutdown or "
                f"work-pull/work-start/work-done/work-fail/heartbeat",
                code="bad-op")
        self._m_requests.inc(op=op)
        return await handler(self, request)

    # ------------------------------------------------------------------
    # client-facing ops (the single-node surface)
    # ------------------------------------------------------------------

    async def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = request.get("payload")
        if not isinstance(payload, dict):
            return protocol.error_response(
                "submit needs a 'payload' object", code="bad-request")
        kind = payload.get("kind")
        if kind not in PAYLOAD_KINDS:
            return protocol.error_response(
                f"unknown payload kind {kind!r}; expected one of "
                f"{PAYLOAD_KINDS}", code="bad-request")
        ctx = request.get("ctx")
        ctx_problem = ops.validate_ctx(ctx)
        if ctx_problem:
            return protocol.error_response(ctx_problem, code="bad-request")
        trace_ctx = request.get("trace_ctx")
        trace_problem = ops.validate_trace_ctx(trace_ctx)
        if trace_problem:
            return protocol.error_response(trace_problem,
                                           code="bad-request")
        trace = self._open_trace(trace_ctx)
        if self._draining or self._stopping:
            self._m_rejected.inc()
            return protocol.error_response(
                "service is draining before shutdown; no new jobs "
                "accepted", code="backpressure")

        digest = payload_digest(payload)
        job, deduped = self._live_job(digest), True
        if job is None:
            # probe the shard tier off-loop; competitors may admit the
            # same digest while we wait, so re-check dedup afterwards.
            # When traced, the cache carries the job span's context and
            # the shard piggybacks its own span on the response.
            cached = await asyncio.to_thread(
                self.cache.get, digest,
                None if trace is None
                else {"traceparent": trace["span"].to_traceparent()})
            job = self._live_job(digest)
            if job is not None:
                self._m_deduped.inc()
            elif self._draining or self._stopping:
                self._m_rejected.inc()
                return protocol.error_response(
                    "service is draining before shutdown; no new jobs "
                    "accepted", code="backpressure")
            else:
                deduped = False
                job = self._admit(digest, payload, request, ctx, cached,
                                  trace=trace)
                if job is None:
                    self._m_rejected.inc()
                    return protocol.error_response(
                        f"queue is full ({self.queue_capacity} jobs "
                        f"waiting); retry after the backlog drains",
                        code="backpressure")
        else:
            self._m_deduped.inc()
        if request.get("wait"):
            await self._wait_finished(job, request.get("wait_timeout"))
        return ops.job_response(
            job, deduped=deduped,
            include_result=bool(request.get("wait")),
            include_trace=bool(request.get("include_trace")))

    def _open_trace(self, trace_ctx: Any) -> Optional[Dict[str, Any]]:
        """Open the gateway-side 'job' span for a traced submission.

        Returns None for untraced submits (the overwhelmingly common
        case — one dict lookup and an ``is None`` test is the whole
        cost of tracing being off).
        """
        if trace_ctx is None:
            return None
        try:
            root = TraceContext.from_dict(trace_ctx)
        except ValueError:
            return None  # validated earlier; defensive
        if root is None:
            return None
        return {"root": root, "span": root.child(),
                "submit_wall": time.time()}

    def _live_job(self, digest: str) -> Optional[Job]:
        live_id = self._by_digest.get(digest)
        if live_id is None:
            return None
        live = self._jobs[live_id]
        if live.state in _LIVE_STATES:
            return live
        del self._by_digest[digest]  # stale index entry
        return None

    def _admit(self, digest: str, payload: Dict[str, Any],
               request: Dict[str, Any], ctx: Optional[Dict[str, Any]],
               cached: Optional[Dict[str, Any]],
               trace: Optional[Dict[str, Any]] = None) -> Optional[Job]:
        deadline = request.get("deadline")
        if deadline is None:
            deadline = self.default_deadline
        max_retries = request.get("max_retries")
        if max_retries is None:
            max_retries = self.max_retries
        job = Job(digest=digest, payload=payload, deadline=deadline,
                  max_retries=max_retries, ctx=dict(ctx or {}))
        if trace is not None:
            # workers receive the *job span's* context, so worker-side
            # execute spans nest under the gateway's job span
            job.trace_ctx = {"traceparent": trace["span"].to_traceparent()}
            self._traced[job.id] = trace
        if cached is not None:
            self._m_cache_hits.inc()
            job.cached = True
            job.finish(JobState.DONE, result=cached)
            self._m_completed.inc(state=JobState.DONE)
            self._jobs[job.id] = job
            if trace is not None:
                self._record_job_span(job, trace)
            return job
        self._m_cache_misses.inc()
        if len(self._pending) >= self.queue_capacity:
            self._traced.pop(job.id, None)
            return None
        self._m_submitted.inc()
        self._jobs[job.id] = job
        self._by_digest[digest] = job.id
        self._waiters[job.id] = asyncio.Event()
        self._enqueue(job.id)
        return job

    def _enqueue(self, job_id: str, front: bool = False) -> None:
        if front:
            self._pending.appendleft(job_id)
        else:
            self._pending.append(job_id)
        self._m_depth.set(len(self._pending))
        if self._work_available is not None:
            self._work_available.set()

    async def _wait_finished(self, job: Job,
                             timeout: Optional[float]) -> None:
        if job.state in FINAL_STATES:
            return
        event = self._waiters.get(job.id)
        if event is None:
            return
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except TimeoutError:
            pass

    def _lookup(self, request: Dict[str, Any]):
        job_id = request.get("job_id")
        job = self._jobs.get(job_id) if job_id else None
        if job is None:
            return None, protocol.error_response(
                f"unknown job {job_id!r}", code="not-found")
        return job, None

    async def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        return err if err else ops.job_response(job)

    async def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        if err:
            return err
        if request.get("wait"):
            await self._wait_finished(job, request.get("wait_timeout"))
        if job.state == JobState.DONE:
            return ops.job_response(
                job, include_result=True,
                include_trace=bool(request.get("include_trace")))
        if job.state in FINAL_STATES:
            return protocol.error_response(
                f"job {job.id} finished as {job.state}: {job.error}",
                code=job.state)
        return protocol.error_response(
            f"job {job.id} is still {job.state}", code="not-ready")

    async def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        if err:
            return err
        if job.state != JobState.QUEUED:
            ok, reason = False, f"job is {job.state}, not queued"
        else:
            # drop any unstarted lease so a later work-start is refused
            for node in self._nodes.values():
                node.unstarted.discard(job.id)
                node.lease_at.pop(job.id, None)
            self._finish_job(job, JobState.CANCELED,
                             error="canceled by client")
            ok, reason = True, "canceled"
        response = ops.job_response(job)
        response["canceled"] = ok
        response["detail"] = reason
        return response

    async def _op_health(self, request: Dict[str, Any]) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        now = time.monotonic()
        workers = {}
        for name, node in sorted(self._nodes.items()):
            age = now - node.last_seen
            leases = {job_id: round(now - at, 3)
                      for job_id, at in sorted(node.lease_at.items())}
            workers[name] = {
                "local": node.local,
                "alive": node.local or age <= self.heartbeat_timeout,
                "heartbeat_age": round(age, 3),
                "last_heartbeat_age": round(age, 3),
                "boot": node.boot,
                "unstarted": len(node.unstarted),
                "running": len(node.running),
                "leases": leases,
                "oldest_lease_age": max(leases.values(), default=None),
                "done": node.done,
                "failed": node.failed,
                "info": node.info,
            }
        shard_stats = await asyncio.to_thread(self.cache.shard_stats)
        return {
            "ok": True,
            "tier": "cluster",
            "uptime": self.uptime(),
            "draining": self.draining,
            "workers": self.local_workers,
            "pool_mode": ("inline" if self.pool.inline else "process")
                         if self.pool is not None else "fleet",
            "queue_depth": len(self._pending),
            "queue_capacity": self.queue_capacity,
            "jobs_by_state": states,
            "cache_entries": sum(
                s.get("entries", 0) for s in shard_stats.values()
                if s.get("alive")),
            "cache_stats": self.cache.stats(),
            "cluster": {
                "ring": self.cache.ring_info(),
                "shards": shard_stats,
                "worker_nodes": workers,
                "workers_alive": sum(
                    1 for w in workers.values() if w["alive"]),
                "gateway_uptime": self.uptime(),
                "run_id": self.run_id,
                "clock_offsets": self.clock.to_dict(),
            },
        }

    def _exported_metrics(self) -> MetricsRegistry:
        combined = MetricsRegistry()
        combined.merge(self.metrics.export())
        combined.merge(obs_metrics.get_registry().export())
        return combined

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._m_uptime.set(self.uptime())
        fmt = request.get("format", "json")
        if fmt == "prometheus":
            return {"ok": True, "format": "prometheus",
                    "text": self._exported_metrics().to_prometheus()}
        if fmt != "json":
            return protocol.error_response(
                f"unknown metrics format {fmt!r}", code="bad-request")
        return {"ok": True, "format": "json",
                "metrics": self._exported_metrics().to_json()}

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        drain = bool(request.get("drain"))
        if drain:
            self._draining = True
        return {"ok": True, "stopping": True, "draining": drain,
                "_shutdown": True,
                "_drain": drain,
                "_drain_timeout": request.get("drain_timeout")}

    # ------------------------------------------------------------------
    # worker-fleet ops
    # ------------------------------------------------------------------

    def _touch_node(self, name: str, local: bool = False) -> _Node:
        node = self._nodes.get(name)
        if node is None:
            node = _Node(name, local=local)
            self._nodes[name] = node
            _log.info("node-join", node=name, local=local)
            self.telemetry.add_event("node-join", node=name, local=local)
        node.last_seen = time.monotonic()
        return node

    def _job_descriptor(self, job: Job) -> Dict[str, Any]:
        descriptor = {"job_id": job.id, "digest": job.digest,
                      "payload": job.payload, "ctx": job.ctx,
                      "attempts": job.attempts,
                      "max_retries": job.max_retries,
                      "remaining": job.remaining()}
        if job.trace_ctx is not None:
            descriptor["trace_ctx"] = job.trace_ctx
        return descriptor

    def _claim_jobs(self, node: _Node, limit: int) -> List[Job]:
        """Lease up to ``limit`` queued jobs to ``node``, finalizing any
        canceled/expired entries encountered on the way."""
        claimed: List[Job] = []
        while self._pending and len(claimed) < limit:
            job_id = self._pending.popleft()
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                continue  # canceled while queued
            if job.expired():
                self._finish_job(job, JobState.TIMEOUT,
                                 error="deadline expired while queued")
                continue
            node.unstarted.add(job.id)
            node.lease_at[job.id] = time.monotonic()
            claimed.append(job)
        self._m_depth.set(len(self._pending))
        if not self._pending and self._work_available is not None:
            self._work_available.clear()
        return claimed

    def _steal_job(self, thief: _Node) -> Optional[Job]:
        """Move one unstarted lease from the most-backlogged other node."""
        victim = None
        for node in self._nodes.values():
            if node is thief or not node.unstarted:
                continue
            if victim is None or len(node.unstarted) > len(victim.unstarted):
                victim = node
        if victim is None:
            return None
        for job_id in sorted(victim.unstarted):
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                victim.unstarted.discard(job_id)
                continue
            victim.unstarted.discard(job_id)
            victim.lease_at.pop(job_id, None)
            victim.stolen_from += 1
            thief.unstarted.add(job_id)
            thief.lease_at[job_id] = time.monotonic()
            self._m_steals.inc()
            _log.info("job-stolen", job_id=job_id, victim=victim.name,
                      thief=thief.name)
            self.telemetry.add_event("job-stolen", job_id=job_id,
                                     victim=victim.name, thief=thief.name)
            return job
        return None

    async def _op_work_pull(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        name = request.get("node")
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                "work-pull needs a 'node' name", code="bad-request")
        node = self._touch_node(name)
        if self._work_available is None:  # handler used without start_async
            self._work_available = asyncio.Event()
        limit = max(1, int(request.get("max_jobs", 1)))
        budget = float(request.get("wait", 0.0))
        deadline = time.monotonic() + budget
        claimed = self._claim_jobs(node, limit)
        while not claimed and not self._stopping:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(self._work_available.wait(),
                                       min(remaining, 0.5))
            except TimeoutError:
                pass
            node.last_seen = time.monotonic()
            claimed = self._claim_jobs(node, limit)
        outcome = "jobs"
        if not claimed:
            stolen = self._steal_job(node)
            if stolen is not None:
                claimed = [stolen]
                outcome = "steal"
            else:
                outcome = "empty"
        self._m_pulls.inc(outcome=outcome)
        return {"ok": True, "draining": self._draining,
                "stopping": self._stopping,
                "jobs": [self._job_descriptor(job) for job in claimed]}

    async def _op_work_start(self, request: Dict[str, Any]
                             ) -> Dict[str, Any]:
        name = request.get("node")
        job_id = request.get("job_id")
        node = self._touch_node(name) if isinstance(name, str) and name \
            else None
        if node is None or not isinstance(job_id, str):
            return protocol.error_response(
                "work-start needs 'node' and 'job_id'", code="bad-request")
        job = self._jobs.get(job_id)
        if job is None or job_id not in node.unstarted:
            return {"ok": True, "granted": False,
                    "reason": "lease moved (stolen, reassigned, or "
                              "unknown job)"}
        node.unstarted.discard(job_id)
        if job.state != JobState.QUEUED:
            node.lease_at.pop(job_id, None)
            return {"ok": True, "granted": False,
                    "reason": f"job is {job.state}"}
        if job.expired():
            node.lease_at.pop(job_id, None)
            self._finish_job(job, JobState.TIMEOUT,
                             error="deadline expired while queued")
            return {"ok": True, "granted": False, "reason": "job timed out"}
        job.state = JobState.RUNNING
        job.started_at = time.monotonic()
        job.attempts += 1
        node.running.add(job_id)
        self._m_running.inc()
        trace = self._traced.get(job_id)
        if trace is not None:
            # submit -> first execution start = queue wait (includes any
            # lease hand-offs); crash retries open a second segment
            now = time.time()
            self.spans.record(
                "queue-wait", trace["span"].child(), cat="gateway",
                start_wall=trace.get("last_wait", trace["submit_wall"]),
                duration=max(0.0, now - trace.get("last_wait",
                                                  trace["submit_wall"])),
                parent_id=trace["span"].span_id, job_id=job_id,
                node=node.name, attempt=job.attempts)
            trace["last_wait"] = now
        _log.info("job-start", job_id=job_id, node=node.name,
                  attempt=job.attempts, digest=job.digest[:12])
        return {"ok": True, "granted": True, "attempts": job.attempts,
                "remaining": job.remaining()}

    def _validate_report(self, request: Dict[str, Any]):
        name = request.get("node")
        job_id = request.get("job_id")
        if not isinstance(name, str) or not name \
                or not isinstance(job_id, str):
            return None, None, protocol.error_response(
                "worker reports need 'node' and 'job_id'",
                code="bad-request")
        node = self._touch_node(name)
        job = self._jobs.get(job_id)
        if job is None or job_id not in node.running \
                or job.state != JobState.RUNNING:
            # stale report: the node was declared dead and its lease
            # re-assigned, or the job finished another way
            return node, None, None
        return node, job, None

    async def _op_work_done(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        node, job, err = self._validate_report(request)
        if err:
            return err
        if job is None:
            return {"ok": True, "accepted": False, "reason": "stale lease"}
        result = request.get("result")
        if not isinstance(result, dict):
            return protocol.error_response(
                "work-done needs a 'result' object", code="bad-request")
        node.running.discard(job.id)
        node.lease_at.pop(job.id, None)
        node.done += 1
        self._m_running.dec()
        await asyncio.to_thread(self.cache.put, job.digest, result,
                                job.trace_ctx)
        self._finish_job(job, JobState.DONE, result=result)
        _log.info("job-done", job_id=job.id, node=node.name,
                  latency=round(job.latency() or 0.0, 4))
        return {"ok": True, "accepted": True}

    async def _op_work_fail(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        node, job, err = self._validate_report(request)
        if err:
            return err
        if job is None:
            return {"ok": True, "accepted": False, "reason": "stale lease"}
        kind = request.get("kind", "error")
        error = str(request.get("error", ""))
        node.running.discard(job.id)
        node.lease_at.pop(job.id, None)
        node.failed += 1
        self._m_running.dec()
        if kind == "timeout":
            self._finish_job(job, JobState.TIMEOUT,
                             error=error or "deadline expired while "
                                            "running")
        elif kind == "crash":
            self._handle_crash(job, error or "worker crashed")
        else:
            self._finish_job(job, JobState.FAILED,
                             error=error or "job failed")
        _log.warning("job-fail", job_id=job.id, node=node.name,
                     kind=kind, error=error)
        return {"ok": True, "accepted": True}

    async def _op_heartbeat(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        name = request.get("node")
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                "heartbeat needs a 'node' name", code="bad-request")
        node = self._touch_node(name)
        self._m_heartbeats.inc()
        info = request.get("info")
        if isinstance(info, dict):
            node.info = info
        boot = request.get("boot")
        if isinstance(boot, str) and boot and boot != node.boot:
            if node.boot is not None:
                # the node process restarted: its sequence counter is
                # back at zero, so accept its stream from scratch — a
                # replayed heartbeat from the *old* incarnation carries
                # the old boot id and never reaches this branch
                _log.info("node-reboot", node=name, boot=boot,
                          previous=node.boot)
                self.telemetry.add_event("node-restart", node=name,
                                         boot=boot, previous=node.boot)
                node.last_seq = 0
            node.boot = boot
        wall = request.get("wall")
        if isinstance(wall, (int, float)):
            # one clock-offset sample per heartbeat: the worker's wall
            # clock vs ours, biased by one-way delay — the ClockModel's
            # min-filter keeps the least-delayed sample
            self.clock.observe(name, float(wall))
        seq = request.get("seq")
        delta = request.get("metrics")
        merged = False
        if isinstance(seq, int) and isinstance(delta, dict) \
                and seq > node.last_seq:
            # exactly-once: deltas are cumulative per ship, tagged with a
            # monotonic sequence; replays (worker retrying a heartbeat it
            # never saw acked) never double-count.  Spans ride the same
            # sequence, so they inherit the same guarantee.
            obs_metrics.get_registry().merge(delta)
            spans = request.get("spans")
            if isinstance(spans, list) and spans:
                self._ingest_spans(spans)
            node.last_seq = seq
            merged = True
        return {"ok": True, "draining": self._draining,
                "stopping": self._stopping, "merged": merged,
                "seq": node.last_seq}

    # ------------------------------------------------------------------
    # telemetry plane: spans, snapshots, trace export
    # ------------------------------------------------------------------

    def _ingest_spans(self, spans: List[Dict[str, Any]],
                      remote_wall: Optional[float] = None) -> None:
        """Accept spans recorded on another node's clock.

        ``remote_wall`` (the sender's clock at response/heartbeat time)
        contributes one offset sample per distinct span node, so the
        stitcher can rebase those lanes onto gateway time.
        """
        if remote_wall is not None:
            local = time.time()
            for node in {s.get("node") for s in spans
                         if isinstance(s, dict)}:
                if isinstance(node, str) and node:
                    self.clock.observe(node, float(remote_wall), local)
        self.span_store.add(spans)

    async def _snapshot_telemetry(self) -> Dict[str, Any]:
        """One merged metric+health snapshot (also drains gateway spans
        into the store so ``trace-export`` sees them)."""
        self._m_uptime.set(self.uptime())
        self.span_store.add(self.spans.drain())
        metrics = self._exported_metrics().export()
        health = await self._op_health({})
        health.pop("ok", None)
        return self.telemetry.add_snapshot(metrics, health)

    async def _telemetry_loop(self) -> None:
        interval = max(0.2, self.telemetry_interval)
        while True:
            await asyncio.sleep(interval)
            try:
                await self._snapshot_telemetry()
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # telemetry must never take the gateway down

    async def _op_telemetry(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        snapshot = await self._snapshot_telemetry()
        since = request.get("events_since")
        events = self.telemetry.events_since(
            since if isinstance(since, int) else 0)
        return {"ok": True, "tier": "cluster", "run_id": self.run_id,
                "snapshot": snapshot, "events": events,
                "event_seq": self.telemetry.event_seq(),
                "spans_stored": len(self.span_store)}

    async def _op_trace_export(self, request: Dict[str, Any]
                               ) -> Dict[str, Any]:
        """Everything ``repro trace-collect`` needs to stitch one run:
        all stored spans (every tier), per-node clock offsets, and the
        decision records of finished traced jobs stamped with the span
        ids that produced them."""
        from repro.trace.tracer import Tracer
        self.span_store.add(self.spans.drain())
        trace_id = request.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            return protocol.error_response(
                "'trace_id' must be a string", code="bad-request")
        spans = self.span_store.spans(trace_id)
        seen: set = set()
        decisions: List[Dict[str, Any]] = []
        site_decisions: List[Dict[str, Any]] = []
        for job_id, trace in list(self._traced.items()):
            job = self._jobs.get(job_id)
            if job is None or not isinstance(job.result, dict):
                continue
            if trace_id and trace["span"].trace_id != trace_id:
                continue
            export = job.result.get("trace")
            if not isinstance(export, dict):
                continue
            link = {"job_id": job.id, "digest": job.digest,
                    "span_id": trace["span"].span_id,
                    "trace_id": trace["span"].trace_id}
            for kind, field, out in (
                    ("loop", "decisions", decisions),
                    ("site", "site_decisions", site_decisions)):
                for d in export.get(field) or ():
                    if not isinstance(d, dict):
                        continue
                    # same identity rule as Tracer.merge: a crash-retried
                    # job's re-exported decisions count exactly once
                    key = Tracer._decision_key(job.digest, kind, d)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append({**d, **link})
        return {"ok": True, "run_id": self.run_id, "spans": spans,
                "clock_offsets": self.clock.to_dict(),
                "trace_ids": self.span_store.trace_ids(),
                "decisions": decisions,
                "site_decisions": site_decisions,
                "dropped": self.span_store.dropped + self.spans.dropped}

    # ------------------------------------------------------------------
    # crash retry + dead-node sweeping
    # ------------------------------------------------------------------

    def _handle_crash(self, job: Job, error: str) -> None:
        if job.attempts > job.max_retries:
            self._finish_job(
                job, JobState.FAILED,
                error=f"worker crashed {job.attempts} times "
                      f"(retries exhausted): {error}")
            return
        self._m_retried.inc()
        job.state = JobState.QUEUED
        delay = self.retry_backoff * (2 ** (job.attempts - 1))
        remaining = job.remaining()
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))

        def requeue() -> None:
            if self._stopping:
                self._finish_job(job, JobState.FAILED,
                                 error="service stopped during crash "
                                       "retry")
                return
            if job.state == JobState.QUEUED:
                self._enqueue(job.id, front=True)

        loop = self._loop
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = None
        if delay <= 0 or loop is None:
            requeue()
        else:
            loop.call_later(delay, requeue)

    def _record_job_span(self, job: Job,
                         trace: Dict[str, Any]) -> None:
        """The whole-job span: submit to finish, child of the client's
        root context, parent of queue-wait/execute/cache spans."""
        if trace.get("recorded"):
            return
        trace["recorded"] = True
        self.spans.record(
            "job", trace["span"], cat="gateway",
            start_wall=trace["submit_wall"],
            duration=job.latency() or 0.0,
            parent_id=trace["root"].span_id,
            job_id=job.id, digest=job.digest, state=job.state,
            cached=job.cached, attempts=job.attempts)

    def _finish_job(self, job: Job, state: str,
                    result: Optional[Dict[str, Any]] = None,
                    error: str = "") -> None:
        job.finish(state, result=result, error=error)
        self._m_completed.inc(state=state)
        trace = self._traced.get(job.id)
        if trace is not None:
            self._record_job_span(job, trace)
        if self._by_digest.get(job.digest) == job.id:
            del self._by_digest[job.digest]
        event = self._waiters.get(job.id)
        if event is not None:
            event.set()
        latency = job.latency()
        if latency is not None:
            self._m_latency.observe(latency)
        if result is not None:
            for phase, seconds in result.get("timings", {}).items():
                self.metrics.histogram(
                    f"repro_phase_{phase}_seconds",
                    f"wall clock of the {phase} phase").observe(seconds)
            count = result.get("parallel_count")
            if isinstance(count, int):
                self._m_loops_parallel.inc(count)
            for reason, n in result.get("serial_reasons", {}).items():
                self._m_loops_serial.inc(n, reason=reason)

    async def _sweep_loop(self) -> None:
        interval = max(0.1, self.heartbeat_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            self._sweep_dead_nodes()

    def _sweep_dead_nodes(self) -> None:
        now = time.monotonic()
        for name in list(self._nodes):
            node = self._nodes[name]
            if node.local:
                continue
            if now - node.last_seen <= self.heartbeat_timeout:
                continue
            if not node.unstarted and not node.running:
                # silent but idle: just forget it (it can re-join)
                del self._nodes[name]
                continue
            self._m_dead.inc()
            _log.warning("node-dead", node=name,
                         unstarted=len(node.unstarted),
                         running=len(node.running),
                         silent=round(now - node.last_seen, 3))
            self.telemetry.add_event(
                "node-dead", node=name, unstarted=len(node.unstarted),
                running=len(node.running),
                silent=round(now - node.last_seen, 3))
            for job_id in sorted(node.unstarted):
                job = self._jobs.get(job_id)
                if job is not None and job.state == JobState.QUEUED:
                    self._enqueue(job_id, front=True)
            for job_id in sorted(node.running):
                job = self._jobs.get(job_id)
                if job is not None and job.state == JobState.RUNNING:
                    self._m_running.dec()
                    self._handle_crash(
                        job, f"worker node {name} stopped heartbeating")
            del self._nodes[name]

    # ------------------------------------------------------------------
    # embedded local workers (one-process cluster)
    # ------------------------------------------------------------------

    async def _local_worker_loop(self, name: str) -> None:
        """An embedded worker driven through the same lease machinery as
        a remote node, so local and fleet execution share code paths."""
        node = self._touch_node(name, local=True)
        while not self._stopping:
            node.last_seen = time.monotonic()
            claimed = self._claim_jobs(node, 1)
            if not claimed:
                stolen = self._steal_job(node)
                if stolen is not None:
                    claimed = [stolen]
            if not claimed:
                try:
                    await asyncio.wait_for(self._work_available.wait(),
                                           0.2)
                except TimeoutError:
                    pass
                continue
            job = claimed[0]
            start = await self._op_work_start(
                {"node": name, "job_id": job.id})
            if not start.get("granted"):
                continue
            outcome = "done"
            t0_wall, t0 = time.time(), time.perf_counter()
            try:
                result, delta = await asyncio.to_thread(
                    self.pool.run, run_job_observed,
                    (job.payload, job.ctx), timeout=job.remaining())
            except WorkerTimeout:
                outcome = "timeout"
                await self._op_work_fail(
                    {"node": name, "job_id": job.id, "kind": "timeout",
                     "error": "deadline expired while running"})
            except WorkerCrashError as exc:
                outcome = "crash"
                await self._op_work_fail(
                    {"node": name, "job_id": job.id, "kind": "crash",
                     "error": str(exc)})
            except Exception as exc:
                outcome = "error"
                await self._op_work_fail(
                    {"node": name, "job_id": job.id, "kind": "error",
                     "error": f"{type(exc).__name__}: {exc}"})
            else:
                if delta:
                    obs_metrics.get_registry().merge(delta)
                await self._op_work_done(
                    {"node": name, "job_id": job.id, "result": result})
            trace = self._traced.get(job.id)
            if trace is not None:
                self.spans.record(
                    "execute", trace["span"].child(), cat="worker",
                    start_wall=t0_wall,
                    duration=time.perf_counter() - t0,
                    parent_id=trace["span"].span_id, job_id=job.id,
                    digest=job.digest, node=name, outcome=outcome,
                    attempt=job.attempts)

    # op dispatch table (client surface + worker surface)
    _OPS = {
        "submit": _op_submit,
        "status": _op_status,
        "result": _op_result,
        "cancel": _op_cancel,
        "health": _op_health,
        "metrics": _op_metrics,
        "shutdown": _op_shutdown,
        "work-pull": _op_work_pull,
        "work-start": _op_work_start,
        "work-done": _op_work_done,
        "work-fail": _op_work_fail,
        "heartbeat": _op_heartbeat,
        "telemetry": _op_telemetry,
        "trace-export": _op_trace_export,
    }
