"""Experiment execution backed by the service/cluster tier.

:func:`table2_rows_via_service` assembles Table II from *service
submissions* instead of an in-process executor pool: every
``(benchmark, configuration)`` pipeline run becomes one ``submit``
against a daemon or cluster gateway, results stream back as jobs
finish, and the rows are assembled with the exact same
:func:`~repro.experiments.table2._assemble_row` logic — so the rendered
table is byte-identical to a local run while the work fans out across
however many worker nodes the cluster has (and repeat runs are answered
straight from the shard cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.pipeline import CONFIGS
from repro.experiments.table2 import (ConfigOutcome, Table2Row,
                                      _assemble_row)
from repro.obs import logging as obs_logging
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.service.client import DEFAULT_PORT, ServiceClient, ServiceError

_log = obs_logging.get_logger("repro.cluster.backend")


def _outcome_from_summary(kind: str, summary: Dict) -> ConfigOutcome:
    """A worker's JSON result summary, reshaped into the picklable
    per-config outcome row assembly expects."""
    return ConfigOutcome(
        kind=kind,
        origins=frozenset(summary.get("parallel_origins", ())),
        code_lines=int(summary.get("code_lines", 0)),
        timings=dict(summary.get("timings", {})),
    )


def table2_rows_via_service(host: str = "127.0.0.1",
                            port: int = DEFAULT_PORT,
                            benchmarks: Optional[List[Benchmark]] = None,
                            wait_timeout: Optional[float] = 600.0,
                            annotations: str = "hand") -> List[Table2Row]:
    """Table II rows computed by the service (see module docstring).

    Submits every ``(benchmark, config)`` job up front (the service
    dedups and fans them across its workers), then collects results in
    deterministic benchmark-major/config-minor order.  Raises
    :class:`ServiceError` when the service is unreachable or a job ends
    in a non-``done`` state.
    """
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    client = ServiceClient(host, port)
    submitted = []  # (benchmark name, config kind, job id)
    for benchmark in benchmarks:
        for kind in CONFIGS:
            payload = {"kind": "benchmark", "benchmark": benchmark.name,
                       "config": kind}
            if annotations != "hand":
                payload["annotations_mode"] = annotations
            response = client.submit(payload, wait=False)
            submitted.append((benchmark.name, kind, response["job_id"]))
    _log.info("table2-submitted", jobs=len(submitted),
              service=f"{host}:{port}")

    outcomes: Dict[str, List[ConfigOutcome]] = {b.name: []
                                                for b in benchmarks}
    for name, kind, job_id in submitted:
        response = client.result(job_id, wait=True,
                                 wait_timeout=wait_timeout)
        state = response.get("state")
        if state != "done" or "result" not in response:
            raise ServiceError(
                f"table2 job {job_id} ({name}/{kind}) ended as "
                f"{state}: {response.get('error', '')}",
                code=str(state))
        outcomes[name].append(
            _outcome_from_summary(kind, response["result"]))
    return [_assemble_row(b.name, outcomes[b.name]) for b in benchmarks]
