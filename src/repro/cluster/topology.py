"""Spawn a whole localhost cluster as subprocesses.

:class:`LocalCluster` wires up the full topology — N cache shards, one
gateway routing over them, M worker nodes pulling from the gateway —
each as a real separate process speaking the real wire protocol.  Used
by ``scripts/cluster_smoke.py``, ``repro loadtest --spawn``, and the
integration tests; it is also the reference for deploying the pieces by
hand (each member is just a ``repro cluster …`` CLI invocation).

Fault injection is first-class: :meth:`LocalCluster.kill_worker` sends
SIGKILL — no cleanup, no goodbye — so tests can prove the gateway's
dead-node sweep re-runs the victim's leased jobs.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import logging as obs_logging

_log = obs_logging.get_logger("repro.cluster.topology")


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (best-effort: released before use)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def wait_listening(host: str, port: int, timeout: float = 10.0,
                   proc: Optional[subprocess.Popen] = None) -> None:
    """Block until ``host:port`` accepts connections (or raise)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc is not None and proc.poll() is not None:
            raise RuntimeError(
                f"process exited with {proc.returncode} before "
                f"listening on {host}:{port}")
        try:
            with socket.create_connection((host, port), timeout=0.25):
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"nothing listening on {host}:{port} "
                       f"after {timeout}s")


class LocalCluster:
    """A gateway + shard + worker fleet on localhost subprocesses."""

    def __init__(self, shards: int = 2, workers: int = 2,
                 worker_threads: int = 1,
                 shard_capacity: int = 512,
                 cache_dir: Optional[str] = None,
                 queue_capacity: int = 1024,
                 heartbeat_timeout: float = 2.0,
                 retry_backoff: float = 0.1,
                 inline_pools: bool = True,
                 host: str = "127.0.0.1",
                 env: Optional[Dict[str, str]] = None,
                 telemetry_dir: Optional[str] = None,
                 run_id: Optional[str] = None):
        self.host = host
        self.n_shards = shards
        self.n_workers = workers
        self.worker_threads = worker_threads
        self.shard_capacity = shard_capacity
        self.cache_dir = cache_dir
        self.queue_capacity = queue_capacity
        self.heartbeat_timeout = heartbeat_timeout
        self.retry_backoff = retry_backoff
        self.inline_pools = inline_pools
        self.telemetry_dir = telemetry_dir
        self.run_id = run_id
        self.env = dict(os.environ, **(env or {}))
        # make `python -m repro` work regardless of installation state
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        existing = self.env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            self.env["PYTHONPATH"] = (src + os.pathsep + existing
                                      if existing else src)

        self.gateway_address: Optional[Tuple[str, int]] = None
        self.shard_addresses: List[Tuple[str, int]] = []
        self.gateway_proc: Optional[subprocess.Popen] = None
        self.shard_procs: List[subprocess.Popen] = []
        self.worker_procs: List[subprocess.Popen] = []

    def _spawn(self, args: List[str]) -> subprocess.Popen:
        cmd = [sys.executable, "-m", "repro", "cluster"] + args
        return subprocess.Popen(cmd, env=self.env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    def start(self, timeout: float = 20.0) -> Tuple[str, int]:
        """Bring up shards, then the gateway, then workers; returns the
        gateway address once every member is reachable/launched."""
        for i in range(self.n_shards):
            port = free_port(self.host)
            args = ["shard", "--host", self.host, "--port", str(port),
                    "--capacity", str(self.shard_capacity)]
            if self.cache_dir:
                args += ["--cache-dir",
                         os.path.join(self.cache_dir, f"shard-{i}")]
            proc = self._spawn(args)
            self.shard_procs.append(proc)
            self.shard_addresses.append((self.host, port))
        for (host, port), proc in zip(self.shard_addresses,
                                      self.shard_procs):
            wait_listening(host, port, timeout=timeout, proc=proc)

        gw_port = free_port(self.host)
        args = ["gateway", "--host", self.host, "--port", str(gw_port),
                "--queue-capacity", str(self.queue_capacity),
                "--heartbeat-timeout", str(self.heartbeat_timeout),
                "--retry-backoff", str(self.retry_backoff)]
        if self.telemetry_dir:
            args += ["--telemetry-dir", self.telemetry_dir]
        if self.run_id:
            args += ["--run-id", self.run_id]
        for host, port in self.shard_addresses:
            args += ["--shard", f"{host}:{port}"]
        self.gateway_proc = self._spawn(args)
        wait_listening(self.host, gw_port, timeout=timeout,
                       proc=self.gateway_proc)
        self.gateway_address = (self.host, gw_port)

        for i in range(self.n_workers):
            self.worker_procs.append(self._spawn_worker(i))
        _log.info("cluster-up", gateway=f"{self.host}:{gw_port}",
                  shards=self.n_shards, workers=self.n_workers)
        return self.gateway_address

    def _spawn_worker(self, index: int) -> subprocess.Popen:
        host, port = self.gateway_address
        args = ["worker", "--gateway", f"{host}:{port}",
                "--name", f"worker-{index}",
                "--threads", str(self.worker_threads),
                "--heartbeat-interval",
                str(max(0.1, self.heartbeat_timeout / 4))]
        if self.inline_pools:
            args.append("--inline")
        return self._spawn(args)

    # -- fault injection ---------------------------------------------

    def kill_worker(self, index: int = 0) -> int:
        """SIGKILL one worker process (no drain, no goodbye) and return
        its pid.  The gateway's sweeper must recover its leases."""
        proc = self.worker_procs[index]
        pid = proc.pid
        if proc.poll() is None:
            os.kill(pid, signal.SIGKILL)
            proc.wait(timeout=10.0)
        _log.info("worker-killed", index=index, pid=pid)
        return pid

    def spawn_worker(self, index: Optional[int] = None) -> None:
        """Add one more worker node to the fleet."""
        if index is None:
            index = len(self.worker_procs)
        self.worker_procs.append(self._spawn_worker(index))

    def alive(self) -> Dict[str, int]:
        return {
            "gateway": int(self.gateway_proc is not None
                           and self.gateway_proc.poll() is None),
            "shards": sum(1 for p in self.shard_procs
                          if p.poll() is None),
            "workers": sum(1 for p in self.worker_procs
                           if p.poll() is None),
        }

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate workers, gateway, then shards (reverse data flow)."""
        procs = (self.worker_procs
                 + ([self.gateway_proc] if self.gateway_proc else [])
                 + self.shard_procs)
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in procs:
            budget = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                    proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        self.worker_procs.clear()
        self.shard_procs.clear()
        self.gateway_proc = None

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
