"""repro.cluster — the distributed parallelization tier.

PR 2's :mod:`repro.service` serves one box: a threaded TCP daemon, a
local LRU/disk result cache, and one process pool.  This package scales
that design out while keeping the wire protocol — the synchronous
:class:`repro.service.client.ServiceClient` works unchanged against the
cluster:

* :mod:`.ring` — a consistent-hash ring with virtual nodes; adding or
  removing a shard remaps ~1/N of the key space, never all of it;
* :mod:`.shardcache` — the result cache partitioned by payload digest
  across N cache-shard nodes (each wrapping the existing
  :class:`repro.service.cache.ResultCache`), with per-shard hit/miss
  metrics and graceful degradation when a shard is down;
* :mod:`.gateway` — an asyncio front door multiplexing thousands of
  concurrent client sessions over one event loop, with in-flight dedup,
  a shared work queue, lease-based work distribution, work stealing,
  and heartbeat-based dead-node detection;
* :mod:`.workers` — the worker-node fleet: each node pulls batches of
  jobs from the gateway, executes them in a crash-isolated process
  pool, and ships results plus metric deltas back;
* :mod:`.topology` — spawn a whole localhost cluster (gateway + shards
  + workers) as subprocesses, for smokes and ``repro loadtest --spawn``;
* :mod:`.loadtest` — the ``repro loadtest`` harness: replays concurrent
  client sessions and reports p50/p99 latency, saturation throughput,
  error/retry counts, and dedup/shard hit rates;
* :mod:`.backend` — cluster-backed experiment execution (Table II
  assembled from service submissions).

See ``docs/cluster.md`` for topology, ring semantics, and the failure
model.
"""

from repro.cluster.gateway import ClusterGateway
from repro.cluster.ring import HashRing
from repro.cluster.shardcache import (CacheShardServer, LocalShard,
                                      RemoteShard, ShardedCache, ShardError)
from repro.cluster.topology import LocalCluster
from repro.cluster.workers import GatewayLink, GatewayUnreachable, WorkerNode

__all__ = [
    "CacheShardServer", "ClusterGateway", "GatewayLink",
    "GatewayUnreachable", "HashRing", "LocalCluster", "LocalShard",
    "RemoteShard", "ShardError", "ShardedCache", "WorkerNode",
]
