"""``repro top`` — live terminal view of the cluster telemetry plane.

Polls the gateway's ``telemetry`` op (merged metric snapshot + health +
sequence-numbered events) and renders a fixed-width status board:
queue/job counts, per-worker lease and heartbeat ages, shard hit rates,
the most recent health events, and — when an SLO spec is given — the
live objective/burn-rate table.

The renderer is a pure function (:func:`render_top`) over one snapshot
so tests never need a terminal; :func:`run_top` adds the poll loop and
ANSI home-and-clear between frames.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs.slo import (evaluate_slo, measurements_from_telemetry,
                           render_slo)

#: ANSI: cursor home + clear to end of screen (no full clear = no flicker)
_ANSI_FRAME = "\x1b[H\x1b[J"

SHARD_REQUESTS_COUNTER = "repro_cluster_shard_requests_total"


def _age(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _counter_by(exported: Optional[Dict[str, Any]], label: str
                ) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, amount in (exported or {}).get("values", ()):
        labels = {k: v for k, v in key}
        name = labels.get(label, "")
        out[name] = out.get(name, 0.0) + amount
    return out


def _shard_lines(metrics: Dict[str, Any]) -> List[str]:
    requests = metrics.get(SHARD_REQUESTS_COUNTER)
    if not isinstance(requests, dict):
        return []
    per_shard: Dict[str, Dict[str, float]] = {}
    for key, amount in requests.get("values", ()):
        labels = {k: v for k, v in key}
        shard = labels.get("shard", "?")
        outcome = labels.get("outcome", "?")
        per_shard.setdefault(shard, {})
        per_shard[shard][outcome] = \
            per_shard[shard].get(outcome, 0.0) + amount
    lines = []
    for shard in sorted(per_shard):
        o = per_shard[shard]
        hits, misses = o.get("hit", 0.0), o.get("miss", 0.0)
        lookups = hits + misses
        rate = f"{hits / lookups:.1%}" if lookups else "-"
        lines.append(f"  {shard:<28} hits {int(hits):>7}  "
                     f"misses {int(misses):>7}  puts "
                     f"{int(o.get('put', 0)):>7}  errors "
                     f"{int(o.get('error', 0)):>4}  hit-rate {rate:>6}")
    return lines


def render_top(snapshot: Optional[Dict[str, Any]],
               events: Optional[List[Dict[str, Any]]] = None,
               slo_spec: Optional[Dict[str, Any]] = None,
               window: Optional[List[Dict[str, Any]]] = None,
               now: Optional[float] = None) -> str:
    """One status-board frame as plain text."""
    now = time.time() if now is None else now
    if not snapshot:
        return "repro top — no telemetry yet (is the gateway running " \
               "with telemetry enabled?)"
    health = snapshot.get("health") or {}
    metrics = snapshot.get("metrics") or {}
    cluster = health.get("cluster") or {}
    jobs = health.get("jobs_by_state") or {}
    age = now - float(snapshot.get("at", now))

    lines = [
        f"repro top — {health.get('tier', 'cluster')} "
        f"@ {time.strftime('%H:%M:%S', time.localtime(now))} "
        f"(snapshot {_age(age)} old)",
        f"uptime {_age(health.get('uptime'))}   "
        f"queue {health.get('queue_depth', 0)}/"
        f"{health.get('queue_capacity', '-')}   "
        f"jobs: " + " ".join(f"{state}={jobs.get(state, 0)}"
                             for state in ("queued", "running", "done",
                                           "failed", "expired",
                                           "cancelled")
                             if jobs.get(state)),
    ]

    completed = _counter_by(metrics.get("repro_jobs_completed_total"),
                            "state")
    if completed:
        lines.append("completed: " + "  ".join(
            f"{state}={int(n)}" for state, n in sorted(completed.items())))

    workers = cluster.get("worker_nodes") or {}
    if workers:
        lines.append("")
        lines.append(f"workers ({cluster.get('workers_alive', 0)}"
                     f"/{len(workers)} alive)")
        lines.append(f"  {'node':<24} {'alive':<6} {'hb-age':>7} "
                     f"{'lease':>7} {'run':>4} {'done':>6} {'fail':>5}")
        for name in sorted(workers):
            node = workers[name]
            lines.append(
                f"  {name:<24} "
                f"{'yes' if node.get('alive') else 'NO':<6} "
                f"{_age(node.get('last_heartbeat_age')):>7} "
                f"{_age(node.get('oldest_lease_age')):>7} "
                f"{node.get('running', 0):>4} "
                f"{node.get('done', 0):>6} "
                f"{node.get('failed', 0):>5}")

    shard_lines = _shard_lines(metrics)
    if shard_lines:
        lines.append("")
        lines.append("cache shards")
        lines.extend(shard_lines)

    if slo_spec:
        lines.append("")
        lines.append(render_slo(evaluate_slo(
            slo_spec,
            measurements_from_telemetry(window or [snapshot]),
            source="telemetry")))

    if events:
        lines.append("")
        lines.append("recent events")
        for event in events[-8:]:
            at = time.strftime("%H:%M:%S",
                               time.localtime(event.get("at", now)))
            extra = " ".join(f"{k}={v}" for k, v in sorted(event.items())
                             if k not in ("seq", "at", "kind"))
            lines.append(f"  {at} {event.get('kind', '?'):<16} {extra}")
    return "\n".join(lines)


def run_top(host: str, port: int, interval: float = 2.0,
            iterations: Optional[int] = None,
            slo_spec: Optional[Dict[str, Any]] = None,
            stream=None, ansi: Optional[bool] = None) -> int:
    """Poll the gateway and redraw until interrupted.

    ``iterations`` bounds the loop for tests/smokes; ``ansi`` defaults
    to "stream is a tty".  Returns 0, or 1 when the gateway was never
    reachable.
    """
    from repro.service.client import ServiceClient

    stream = stream if stream is not None else sys.stdout
    if ansi is None:
        ansi = bool(getattr(stream, "isatty", lambda: False)())
    client = ServiceClient(host, port)
    seen_seq = 0
    events: List[Dict[str, Any]] = []
    window: List[Dict[str, Any]] = []
    ever_ok = False
    count = 0
    while iterations is None or count < iterations:
        count += 1
        frame_at = time.time()
        try:
            response = client.telemetry(events_since=seen_seq)
        except Exception as exc:
            frame = f"repro top — gateway {host}:{port} unreachable: {exc}"
        else:
            ever_ok = True
            snapshot = response.get("snapshot")
            fresh = response.get("events") or []
            if fresh:
                events.extend(fresh)
                events[:] = events[-64:]
                seen_seq = max(seen_seq,
                               max(e.get("seq", 0) for e in fresh))
            if snapshot:
                window.append(snapshot)
                window[:] = window[-150:]
            frame = render_top(snapshot, events, slo_spec=slo_spec,
                               window=window, now=frame_at)
        prefix = _ANSI_FRAME if ansi else ""
        try:
            stream.write(prefix + frame + "\n")
            stream.flush()
        except (OSError, ValueError):
            break
        if iterations is not None and count >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0 if ever_ok else 1
