"""The ``repro report`` HTML dashboard.

One self-contained HTML file (inline CSS/SVG, zero external fetches)
aggregating everything the paper's evaluation talks about:

* Table I and Table II, with the paper's aggregate claims
  (``#par-loss`` 90 / ``#par-extra`` 12 vs 37 / 6-of-12 helped)
  checked against this run and any divergence highlighted;
* per-loop :class:`~repro.trace.LoopDecision` drilldown — verdict,
  failing test, privatization/reduction clauses, dependence-test deltas —
  grouped per (benchmark, configuration);
* parse/base cache hit rates and the full metrics registry;
* the bench trajectory from ``BENCH_history.jsonl`` (one SVG line chart
  per suite: the warm Table II pipeline and the warm Figure 20 run);
* the latest fuzz campaign stats, when a campaign has run.

:func:`collect` runs the Table II pipeline with tracing enabled and
*verifies* that the trace-side :func:`~repro.trace.count_parallel`
reproduces the table rows exactly before rendering — the dashboard never
shows numbers the trace cannot account for.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.pipeline import BASE_CACHE_STATS, CONFIGS
from repro.experiments.table1 import table1_rows
from repro.experiments.table2 import Table2Row, table2_outcomes
from repro.obs import metrics as obs_metrics
from repro.obs.slo import ALERT_BURN_RATE
from repro.perfect.suite import (PROGRAM_CACHE_STATS, all_benchmarks,
                                 cache_dir)
from repro.polaris.report import merge_timings
from repro.trace import LoopDecision, Tracer, count_parallel

#: the paper's Table II aggregate numbers (12-benchmark totals)
PAPER = {"conv_loss": 90, "conv_extra": 12, "ann_extra": 37,
         "ann_loss": 0, "helped": 6, "benchmarks": 12}

#: default location of the bench-gate trajectory (repo root)
HISTORY_FILE = "BENCH_history.jsonl"

#: where a fuzz campaign drops its latest stats for the dashboard
FUZZ_STATS_FILE = "fuzz_latest.json"


class CountMismatchError(RuntimeError):
    """Trace-side decision counts disagree with the table rows."""


@dataclass
class DashboardData:
    benchmarks: List[str]
    table1: List[Tuple[str, str]]
    rows: List[Table2Row]
    decisions: List[LoopDecision]
    counts: Dict[Tuple[str, str], int]
    timings: Dict[str, float] = field(default_factory=dict)
    parse_cache: Dict[str, object] = field(default_factory=dict)
    base_cache: Dict[str, object] = field(default_factory=dict)
    metrics_text: str = ""
    bench_history: List[Dict[str, object]] = field(default_factory=list)
    fuzz_stats: Optional[Dict[str, object]] = None
    figure20: Optional[List[object]] = None  # SpeedupCell list
    slo: Optional[Dict[str, object]] = None  # latest gate evaluation


def verify_counts(rows: Sequence[Table2Row],
                  decisions: Sequence[LoopDecision]) -> None:
    """Raise unless :func:`count_parallel` over the trace reproduces every
    row's ``par_loops`` (the acceptance bar for the dashboard)."""
    counts = count_parallel(decisions)
    for row in rows:
        for kind in CONFIGS:
            traced = counts.get((row.benchmark, kind), 0)
            tabled = row.configs[kind].par_loops
            if traced != tabled:
                raise CountMismatchError(
                    f"{row.benchmark}/{kind}: trace says {traced} "
                    f"parallel loops, table says {tabled}")


def read_bench_history(path: str = HISTORY_FILE) -> List[Dict[str, object]]:
    entries: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
    except OSError:
        pass
    return entries


def read_fuzz_stats(path: Optional[str] = None
                    ) -> Optional[Dict[str, object]]:
    path = path or os.path.join(cache_dir(), FUZZ_STATS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def latest_slo(entries: List[Dict[str, object]]
               ) -> Optional[Dict[str, object]]:
    """The most recent loadtest history record's SLO evaluation (the
    ``repro loadtest --slo`` gate writes one per --gate run)."""
    for entry in reversed(entries):
        if entry.get("suite") == "loadtest" \
                and isinstance(entry.get("slo"), dict):
            return entry["slo"]
    return None


def collect(benchmarks: Optional[List[str]] = None,
            jobs: Optional[int] = None,
            include_figure20: bool = False,
            history_path: str = HISTORY_FILE,
            fuzz_path: Optional[str] = None) -> DashboardData:
    """Run the evaluation (traced) and gather every dashboard input."""
    from repro.perfect import get_benchmark
    bench_objs = ([get_benchmark(b) for b in benchmarks]
                  if benchmarks else all_benchmarks())
    tracer = Tracer(label="report")
    rows, _outcomes = table2_outcomes(jobs=jobs, benchmarks=bench_objs,
                                      tracer=tracer)
    decisions = list(tracer.decisions)
    verify_counts(rows, decisions)
    timings: Dict[str, float] = {}
    for row in rows:
        merge_timings(timings, row.timings)
    figure20 = None
    if include_figure20:
        from repro.experiments.figure20 import figure20_all
        figure20 = figure20_all(benchmarks=bench_objs, jobs=jobs)
    bench_history = read_bench_history(history_path)
    return DashboardData(
        benchmarks=[b.name for b in bench_objs],
        table1=table1_rows(jobs=jobs),
        rows=rows,
        decisions=decisions,
        counts=count_parallel(decisions),
        timings=timings,
        parse_cache=PROGRAM_CACHE_STATS.as_dict(),
        base_cache=BASE_CACHE_STATS.as_dict(),
        metrics_text=obs_metrics.get_registry().to_prometheus(),
        bench_history=bench_history,
        fuzz_stats=read_fuzz_stats(fuzz_path),
        figure20=figure20,
        slo=latest_slo(bench_history),
    )


def write_dashboard(path: str, data: DashboardData) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard(data))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _e(value: object) -> str:
    return html.escape(str(value), quote=True)


# palette: validated categorical slots 1-3 + chart chrome, light and dark
_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --border: rgba(255,255,255,0.10);
  }
}
body { margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 1100px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
section { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0; }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--gridline); padding: 4px 10px 4px 0;
  vertical-align: top; }
td.num, th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 18px; min-width: 130px; }
.tile .v { font-size: 26px; font-weight: 650; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.ok { color: var(--good); }
.warn { color: var(--critical); font-weight: 600; }
.dim { color: var(--muted); }
details { margin: 6px 0; }
summary { cursor: pointer; color: var(--text-secondary); }
code, pre { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
  font-size: 12px; }
pre { overflow-x: auto; background: var(--page); padding: 10px;
  border-radius: 6px; border: 1px solid var(--gridline); }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
.legend { display: flex; gap: 16px; font-size: 12px;
  color: var(--text-secondary); margin: 4px 0; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px; vertical-align: baseline; }
"""


def _tiles(data: DashboardData) -> str:
    totals = {kind: sum(r.configs[kind].par_loops for r in data.rows)
              for kind in CONFIGS}
    cells = [
        ("benchmarks", str(len(data.rows))),
        ("par loops (none)", str(totals["none"])),
        ("par loops (conv)", str(totals["conventional"])),
        ("par loops (annot)", str(totals["annotation"])),
        ("loop decisions", str(len(data.decisions))),
        ("analysis wall-clock",
         f"{sum(data.timings.values()):.2f}s"),
    ]
    tiles = "".join(
        f'<div class="tile"><div class="v">{_e(v)}</div>'
        f'<div class="k">{_e(k)}</div></div>' for k, v in cells)
    return f'<div class="tiles">{tiles}</div>'


def _table1_section(data: DashboardData) -> str:
    body = "".join(f"<tr><td>{_e(n)}</td><td>{_e(d)}</td></tr>"
                   for n, d in data.table1)
    return (f"<section><h2>Table I — benchmark suite</h2>"
            f"<table><tr><th>Application</th><th>Description</th></tr>"
            f"{body}</table></section>")


def _table2_section(data: DashboardData) -> str:
    head = ("<tr><th>Application</th>"
            "<th class=num>none par</th><th class=num>lines</th>"
            "<th class=num>conv par</th><th class=num>loss</th>"
            "<th class=num>extra</th><th class=num>lines</th>"
            "<th class=num>annot par</th><th class=num>loss</th>"
            "<th class=num>extra</th><th class=num>lines</th></tr>")
    body = []
    for r in data.rows:
        n, c, a = (r.configs[k] for k in CONFIGS)
        body.append(
            f"<tr><td>{_e(r.benchmark)}</td>"
            f"<td class=num>{n.par_loops}</td>"
            f"<td class=num>{r.lines['none']}</td>"
            f"<td class=num>{c.par_loops}</td>"
            f"<td class=num>{c.par_loss}</td>"
            f"<td class=num>{c.par_extra}</td>"
            f"<td class=num>{r.lines['conventional']}</td>"
            f"<td class=num>{a.par_loops}</td>"
            f"<td class=num>{a.par_loss}</td>"
            f"<td class=num>{a.par_extra}</td>"
            f"<td class=num>{r.lines['annotation']}</td></tr>")
    totals = {kind: {
        "par": sum(r.configs[kind].par_loops for r in data.rows),
        "loss": sum(r.configs[kind].par_loss for r in data.rows),
        "extra": sum(r.configs[kind].par_extra for r in data.rows),
    } for kind in CONFIGS}
    body.append(
        f"<tr><td><b>TOTAL</b></td>"
        f"<td class=num><b>{totals['none']['par']}</b></td><td></td>"
        f"<td class=num><b>{totals['conventional']['par']}</b></td>"
        f"<td class=num><b>{totals['conventional']['loss']}</b></td>"
        f"<td class=num><b>{totals['conventional']['extra']}</b></td>"
        f"<td></td>"
        f"<td class=num><b>{totals['annotation']['par']}</b></td>"
        f"<td class=num><b>{totals['annotation']['loss']}</b></td>"
        f"<td class=num><b>{totals['annotation']['extra']}</b></td>"
        f"<td></td></tr>")
    return (f"<section><h2>Table II — parallelized loops per "
            f"configuration</h2><table>{head}{''.join(body)}</table>"
            f"{_paper_divergence(data)}</section>")


def _paper_divergence(data: DashboardData) -> str:
    """The paper's aggregate claims, checked against this run.  Status is
    icon + label, never color alone."""
    if len(data.rows) != PAPER["benchmarks"]:
        return (f'<p class="dim">Subset run ({len(data.rows)} of '
                f'{PAPER["benchmarks"]} benchmarks) — paper aggregate '
                f'claims not evaluated.</p>')
    conv_loss = sum(r.configs["conventional"].par_loss for r in data.rows)
    conv_extra = sum(r.configs["conventional"].par_extra for r in data.rows)
    ann_loss = sum(r.configs["annotation"].par_loss for r in data.rows)
    ann_extra = sum(r.configs["annotation"].par_extra for r in data.rows)
    helped = sum(1 for r in data.rows
                 if r.configs["annotation"].par_extra > 0)
    claims = [
        ("annotation never loses loops (#par-loss 0)",
         f"{PAPER['ann_loss']}", str(ann_loss), ann_loss == 0),
        ("annotation finds more extra loops than conventional",
         f"{PAPER['ann_extra']} vs {PAPER['conv_extra']}",
         f"{ann_extra} vs {conv_extra}", ann_extra > conv_extra),
        ("conventional inlining loses loops (#par-loss > 0)",
         str(PAPER["conv_loss"]), str(conv_loss), conv_loss > 0),
        ("annotation helps several benchmarks",
         f"{PAPER['helped']} of {PAPER['benchmarks']}",
         f"{helped} of {len(data.rows)}", 4 <= helped < 12),
    ]
    rows = []
    for claim, paper, ours, holds in claims:
        status = ('<span class="ok">&#10003; holds</span>' if holds else
                  '<span class="warn">&#9888; diverges</span>')
        rows.append(f"<tr><td>{_e(claim)}</td><td>{_e(paper)}</td>"
                    f"<td>{_e(ours)}</td><td>{status}</td></tr>")
    return (f"<h2>Paper divergence</h2><table><tr><th>Claim</th>"
            f"<th>Paper</th><th>This run</th><th>Status</th></tr>"
            f"{''.join(rows)}</table>")


def _decision_rows(decisions: List[LoopDecision]) -> str:
    rows = []
    for d in decisions:
        verdict = ("PARALLEL" if d.parallel else
                   f"serial: {d.reason}"
                   + (f" ({d.detail})" if d.detail else ""))
        clauses = []
        if d.private:
            clauses.append("private(" + ", ".join(d.private) + ")")
        for r in d.reductions:
            clauses.append(f"reduction({r[0] if r else '?'}: "
                           + ", ".join(str(x) for x in r[1:]) + ")"
                           if isinstance(r, (tuple, list)) else str(r))
        tests = " ".join(f"{k}={v}" for k, v in sorted(d.dep_tests.items()))
        reach = "" if d.reachable else " <span class=dim>[dead code]</span>"
        rows.append(
            f"<tr><td>{_e(d.unit)}</td><td>DO {_e(d.var)}</td>"
            f"<td>{_e(d.origin or '-')}</td>"
            f"<td>{_e(verdict)}{reach}</td>"
            f"<td>{_e(d.profitability)}</td>"
            f"<td>{_e(' '.join(clauses) or '-')}</td>"
            f"<td><code>{_e(tests or '-')}</code></td></tr>")
    return "".join(rows)


def _drilldown_section(data: DashboardData) -> str:
    grouped: Dict[Tuple[str, str], List[LoopDecision]] = {}
    for d in data.decisions:
        grouped.setdefault((d.benchmark, d.config), []).append(d)
    parts = [
        "<section><h2>Per-loop decision drilldown</h2>",
        '<p class="sub">Every loop the parallelizer analyzed, with the '
        "verdict, the failing reason, privatization/reduction clauses, "
        "and which dependence tests fired.</p>",
    ]
    for name in data.benchmarks:
        for kind in CONFIGS:
            decisions = grouped.get((name, kind), [])
            npar = data.counts.get((name, kind), 0)
            parts.append(
                f"<details><summary><b>{_e(name)}</b> / {_e(kind)} "
                f"&mdash; {npar} parallel, "
                f"{len(decisions)} loops analyzed</summary>"
                f"<table><tr><th>Unit</th><th>Loop</th><th>Origin</th>"
                f"<th>Verdict</th><th>Profitability</th><th>Clauses</th>"
                f"<th>Dep tests</th></tr>"
                f"{_decision_rows(decisions)}</table></details>")
    parts.append("</section>")
    return "".join(parts)


def _cache_section(data: DashboardData) -> str:
    def row(label: str, stats: Dict[str, object]) -> str:
        return (f"<tr><td>{_e(label)}</td>"
                f"<td class=num>{stats.get('memory_hits', 0)}</td>"
                f"<td class=num>{stats.get('disk_hits', 0)}</td>"
                f"<td class=num>{stats.get('misses', 0)}</td>"
                f"<td class=num>{float(stats.get('hit_rate', 0)):.0%}"
                f"</td></tr>")
    timing_rows = "".join(
        f"<tr><td>{_e(p)}</td><td class=num>{s:.3f}</td></tr>"
        for p, s in sorted(data.timings.items(), key=lambda kv: -kv[1]))
    return (
        f"<section><h2>Caches &amp; phase timings</h2>"
        f"<table><tr><th>Cache</th><th class=num>mem hits</th>"
        f"<th class=num>disk hits</th><th class=num>misses</th>"
        f"<th class=num>hit rate</th></tr>"
        f"{row('parse cache', data.parse_cache)}"
        f"{row('stamped-base cache', data.base_cache)}</table>"
        f"<table><tr><th>Phase</th><th class=num>seconds</th></tr>"
        f"{timing_rows}</table></section>")


def _history_value(entry: dict):
    """The plotted metric of one history record: wall-clock for bench
    suites, p99 latency for loadtest records (whose legacy rows aliased
    the latency into ``total_seconds``)."""
    if entry.get("suite") == "loadtest" and \
            isinstance(entry.get("p99_seconds"), (int, float)):
        return float(entry["p99_seconds"])
    value = entry.get("total_seconds")
    return float(value) if isinstance(value, (int, float)) else None


def _history_section(data: DashboardData) -> str:
    entries = [e for e in data.bench_history
               if _history_value(e) is not None]
    if not entries:
        return ("<section><h2>Bench trajectory</h2>"
                '<p class="dim">No entries in BENCH_history.jsonl yet — '
                "run scripts/bench_gate.py to record one.</p></section>")
    charts = []
    labels = {"table2": "Warm Table II pipeline",
              "figure20": "Warm Figure 20 run (tuning included)",
              "loadtest": "Service loadtest (p99 latency)"}
    for suite in ("table2", "figure20", "loadtest"):
        suite_entries = [e for e in entries
                         if e.get("suite", "table2") == suite]
        if suite_entries:
            charts.append(_history_chart(suite, labels[suite],
                                         suite_entries))
    return ("<section><h2>Bench trajectory</h2>" + "".join(charts)
            + "</section>")


def _history_chart(suite: str, label: str, entries: list) -> str:
    values = [_history_value(e) for e in entries]
    w, h, pad = 640, 160, 30
    vmax = max(values) * 1.15 or 1.0
    n = len(values)
    def x(i: int) -> float:
        return pad + (w - 2 * pad) * (i / max(n - 1, 1))
    def y(v: float) -> float:
        return h - pad - (h - 2 * pad) * (v / vmax)
    points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                      for i, v in enumerate(values))
    dots = []
    for i, (entry, v) in enumerate(zip(entries, values)):
        passed = entry.get("passed")
        tooltip = (f"run {i + 1}: {v:.3f}s"
                   + (f" ({'pass' if passed else 'FAIL'})"
                      if isinstance(passed, bool) else ""))
        dots.append(
            f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
            f'fill="var(--series-1)" stroke="var(--surface-1)" '
            f'stroke-width="2"><title>{_e(tooltip)}</title></circle>')
    grid = "".join(
        f'<line x1="{pad}" y1="{y(vmax * f):.1f}" x2="{w - pad}" '
        f'y2="{y(vmax * f):.1f}" stroke="var(--gridline)"/>'
        f'<text x="{pad - 4}" y="{y(vmax * f) + 4:.1f}" '
        f'text-anchor="end">{vmax * f:.2f}</text>'
        for f in (0.25, 0.5, 0.75, 1.0))
    line = (f'<polyline points="{points}" fill="none" '
            f'stroke="var(--series-1)" stroke-width="2"/>'
            if n > 1 else "")
    axis = ("p99 job latency, seconds" if suite == "loadtest"
            else "wall-clock (median of each bench-gate run, seconds)")
    return (
        f'<p class="sub">{_e(label)} — {axis} across {n} recorded '
        f"run{'s' if n != 1 else ''}.</p>"
        f'<svg viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="{_e(suite)} bench trajectory line chart">'
        f'{grid}<line x1="{pad}" y1="{h - pad}" x2="{w - pad}" '
        f'y2="{h - pad}" stroke="var(--baseline)"/>'
        f"{line}{''.join(dots)}</svg>")


def _fuzz_section(data: DashboardData) -> str:
    stats = data.fuzz_stats
    if not stats:
        return ("<section><h2>Latest fuzz campaign</h2>"
                '<p class="dim">No campaign recorded yet — run '
                "<code>repro fuzz</code>.</p></section>")
    rows = []
    for key in ("programs", "configs_run", "mismatches",
                "failing_programs", "shrink_steps", "source_lines",
                "elapsed_seconds", "seed"):
        if key in stats:
            rows.append(f"<tr><td>{_e(key)}</td>"
                        f"<td class=num>{_e(stats[key])}</td></tr>")
    mism = stats.get("mismatches", 0)
    verdict = ('<span class="ok">&#10003; clean</span>' if not mism else
               f'<span class="warn">&#9888; {mism} mismatches</span>')
    return (f"<section><h2>Latest fuzz campaign {verdict}</h2>"
            f"<table><tr><th>Stat</th><th class=num>Value</th></tr>"
            f"{''.join(rows)}</table></section>")


def _figure20_section(data: DashboardData) -> str:
    if not data.figure20:
        return ""
    by_machine: Dict[str, List[object]] = {}
    for c in data.figure20:
        by_machine.setdefault(c.machine, []).append(c)
    colors = {"none": "var(--series-1)",
              "conventional": "var(--series-2)",
              "annotation": "var(--series-3)"}
    legend = "".join(
        f'<span><span class="swatch" '
        f'style="background:{colors[k]}"></span>{_e(k)}</span>'
        for k in CONFIGS)
    parts = ["<section><h2>Figure 20 — tuned speedups</h2>",
             f'<div class="legend">{legend}</div>']
    for machine, cells in by_machine.items():
        benches = sorted({c.benchmark for c in cells})
        vmax = max(c.speedup for c in cells) * 1.1 or 1.0
        bar_w, gap, group_gap, pad = 14, 2, 16, 30
        w = pad * 2 + len(benches) * (3 * (bar_w + gap) + group_gap)
        h = 180
        svg = []
        for bi, bench in enumerate(benches):
            gx = pad + bi * (3 * (bar_w + gap) + group_gap)
            for ci, kind in enumerate(CONFIGS):
                cell = next((c for c in cells if c.benchmark == bench
                             and c.config == kind), None)
                if cell is None:
                    continue
                bh = (h - 2 * pad) * cell.speedup / vmax
                bx = gx + ci * (bar_w + gap)
                svg.append(
                    f'<rect x="{bx:.1f}" y="{h - pad - bh:.1f}" '
                    f'width="{bar_w}" height="{bh:.1f}" rx="2" '
                    f'fill="{colors[kind]}">'
                    f"<title>{_e(bench)} / {_e(kind)} "
                    f"({_e(cell.machine)}): "
                    f"{cell.speedup:.2f}x</title></rect>")
            svg.append(f'<text x="{gx + 1.5 * (bar_w + gap):.1f}" '
                       f'y="{h - pad + 14}" text-anchor="middle">'
                       f"{_e(bench)}</text>")
        parts.append(
            f"<h2>{_e(machine)}</h2>"
            f'<svg viewBox="0 0 {w} {h}" role="img" '
            f'aria-label="speedup bars on {_e(machine)}">'
            f'<line x1="{pad}" y1="{h - pad}" x2="{w - pad}" '
            f'y2="{h - pad}" stroke="var(--baseline)"/>'
            f"{''.join(svg)}</svg>")
    parts.append("</section>")
    return "".join(parts)


def _slo_section(data: DashboardData) -> str:
    evaluation = data.slo
    if not isinstance(evaluation, dict):
        return ("<section><h2>Service SLOs</h2>"
                '<p class="dim">No SLO gate recorded yet — run '
                "<code>repro loadtest --gate --slo SLO.json</code>."
                "</p></section>")
    overall = ('<span class="ok">&#10003; OK</span>'
               if evaluation.get("ok") else
               '<span class="warn">&#9888; VIOLATED</span>')
    rows = []
    for r in evaluation.get("objectives", ()):
        if not isinstance(r, dict):
            continue
        if r.get("no_data"):
            status, shown = '<span class="dim">no data</span>', "-"
        elif r.get("ok"):
            status = '<span class="ok">&#10003; ok</span>'
            shown = r.get("value")
        else:
            status = '<span class="warn">&#9888; violated</span>'
            shown = r.get("value")
        burn = r.get("burn_rate")
        alert = (' <span class="warn">ALERT</span>'
                 if r.get("alert") and r.get("ok") else "")
        rows.append(
            f"<tr><td>{_e(r.get('name', '?'))}</td>"
            f"<td>{_e(r.get('kind', '?'))}</td>"
            f"<td class=num>{_e(shown)}</td>"
            f"<td>{_e(r.get('target', ''))}</td>"
            f"<td class=num>{_e(burn if burn is not None else '-')}"
            f"{alert}</td><td>{status}</td></tr>")
    return (f"<section><h2>Service SLOs {overall}</h2>"
            f'<p class="sub">Latest <code>repro loadtest --slo</code> '
            f"gate evaluation (spec "
            f"<code>{_e(evaluation.get('spec', 'slo'))}</code>, source "
            f"{_e(evaluation.get('source', '?'))}). Burn rate 1.0 = at "
            f"the threshold; alerts fire above {ALERT_BURN_RATE}.</p>"
            f"<table><tr><th>Objective</th><th>Kind</th>"
            f"<th class=num>Value</th><th>Target</th>"
            f"<th class=num>Burn</th><th>Status</th></tr>"
            f"{''.join(rows)}</table></section>")


def _metrics_section(data: DashboardData) -> str:
    if not data.metrics_text.strip():
        return ""
    return (f"<section><h2>Metrics registry</h2>"
            f"<details><summary>Prometheus exposition "
            f"({len(data.metrics_text.splitlines())} lines)</summary>"
            f"<pre>{_e(data.metrics_text)}</pre></details></section>")


def render_dashboard(data: DashboardData) -> str:
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">'
        "<title>repro report</title>"
        f"<style>{_CSS}</style></head><body><main>"
        "<h1>repro report</h1>"
        '<p class="sub">Interprocedural parallelization evaluation '
        "&mdash; Table I/II, per-loop decisions, caches, bench "
        "trajectory, and fuzzing, in one self-contained page.</p>"
        f"{_tiles(data)}"
        f"{_table1_section(data)}"
        f"{_table2_section(data)}"
        f"{_figure20_section(data)}"
        f"{_drilldown_section(data)}"
        f"{_cache_section(data)}"
        f"{_history_section(data)}"
        f"{_slo_section(data)}"
        f"{_fuzz_section(data)}"
        f"{_metrics_section(data)}"
        "</main></body></html>\n")
