"""Distributed tracing: trace contexts, span recording, cross-node
stitching.

The cluster slices one job's causal story across machines — a submit
hits the gateway, the payload digest routes to a cache shard, a worker
node executes, decisions come back — and PR 3's in-process tracer
cannot follow it.  This module adds the three pieces that make the
story whole again:

* **Trace context** (:class:`TraceContext`): a W3C-traceparent-style
  identifier carried *beside* every payload (like the ``ctx``
  correlation IDs — never inside it, so payload digests and dedup are
  byte-identical with tracing on or off).  One ``trace_id`` names the
  whole distributed operation; each hop derives a child ``span_id``.

* **Span recording** (:class:`SpanRecorder`): a node-local, thread-safe
  buffer of completed spans stamped with *wall-clock* timestamps (the
  only clock that can be compared across machines).  Nodes drain their
  buffer into their existing streams — workers piggyback spans on
  heartbeats with an exactly-once sequence number, shards piggyback on
  cache responses — so tracing adds no new connections.

* **Stitching** (:class:`ClockModel`, :func:`stitch_spans`): every
  cross-node message carries the sender's wall clock; the receiver's
  offset sample ``local_recv - remote_send`` over-estimates the true
  clock offset by the one-way network delay, so the model keeps the
  *minimum* sample per node (the least-delayed message).  Rebasing each
  node's spans by its estimated offset puts the whole cluster on one
  timeline, emitted as a single Perfetto-loadable Chrome trace with
  one process lane per node.

Everything is JSON-safe and dependency-free; a request without a
``trace_ctx`` costs one ``is None`` test per hop.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: traceparent version emitted (the only one defined by W3C level 1)
TRACEPARENT_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: spans kept per recorder before the oldest are dropped (a guard
#: against an unbounded buffer on a node nobody drains)
DEFAULT_SPAN_BUFFER = 10_000


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceContext:
    """One hop's view of a distributed trace (immutable value object)."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: Optional[str] = None,
                 span_id: Optional[str] = None, sampled: bool = True):
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id or new_span_id()
        self.sampled = sampled

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace (the next hop's parent
        is this context's span)."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    def to_traceparent(self) -> str:
        flags = "01" if self.sampled else "00"
        return (f"{TRACEPARENT_VERSION}-{self.trace_id}-"
                f"{self.span_id}-{flags}")

    def to_dict(self) -> Dict[str, str]:
        """The wire shape carried beside payloads."""
        return {"traceparent": self.to_traceparent()}

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        match = _TRACEPARENT_RE.match(header or "")
        if not match:
            raise ValueError(f"malformed traceparent {header!r}")
        _version, trace_id, span_id, flags = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            raise ValueError("traceparent trace-id/span-id must be "
                             "non-zero")
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 1))

    @classmethod
    def from_dict(cls, obj: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        """Parse a wire ``trace_ctx``; None when absent, ValueError when
        present but malformed."""
        if obj is None:
            return None
        if not isinstance(obj, dict):
            raise ValueError("'trace_ctx' must be an object")
        return cls.from_traceparent(obj.get("traceparent", ""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.to_traceparent()})"


def validate_trace_ctx(obj: Any) -> Optional[str]:
    """Problem description for a wire ``trace_ctx`` field, or None.

    Mirrors :func:`repro.service.ops.validate_ctx`: both ride beside the
    payload and must be rejected loudly rather than silently dropped.
    """
    if obj is None:
        return None
    try:
        TraceContext.from_dict(obj)
    except ValueError as exc:
        return f"bad 'trace_ctx': {exc}"
    return None


# ---------------------------------------------------------------------------
# span recording
# ---------------------------------------------------------------------------

class _OpenSpan:
    """Context manager for one in-flight span; usable as the parent
    context for downstream hops via ``.ctx``."""

    __slots__ = ("_recorder", "_name", "_cat", "_args", "ctx",
                 "_parent_id", "_t0_wall", "_t0_perf")

    def __init__(self, recorder: "SpanRecorder", name: str, cat: str,
                 parent: TraceContext, args: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args
        self._parent_id = parent.span_id
        self.ctx = parent.child()   # this span's own identity
        self._t0_wall = 0.0
        self._t0_perf = 0.0

    def __enter__(self) -> "_OpenSpan":
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        if exc_type is not None:
            self._args = dict(self._args, error=exc_type.__name__)
        self._recorder.record(
            self._name, self.ctx, cat=self._cat,
            start_wall=self._t0_wall,
            duration=time.perf_counter() - self._t0_perf,
            parent_id=self._parent_id, **self._args)
        return False


class SpanRecorder:
    """Node-local buffer of completed distributed spans.

    Thread-safe; bounded (oldest spans drop past ``max_buffer``, with
    the loss counted so a stitched trace can say it is partial).
    """

    def __init__(self, node: str, max_buffer: int = DEFAULT_SPAN_BUFFER):
        self.node = node
        self.max_buffer = max_buffer
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []

    def span(self, name: str, parent: TraceContext, cat: str = "cluster",
             **args: Any) -> _OpenSpan:
        """Context manager recording one timed span under ``parent``."""
        return _OpenSpan(self, name, cat, parent, args)

    def record(self, name: str, ctx: TraceContext, cat: str = "cluster",
               start_wall: Optional[float] = None, duration: float = 0.0,
               parent_id: Optional[str] = None, **args: Any) -> None:
        """Append one already-timed span (wall-clock seconds)."""
        span: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "node": self.node,
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_id": parent_id,
            "ts_wall": start_wall if start_wall is not None else time.time(),
            "dur": max(0.0, float(duration)),
        }
        if args:
            span["args"] = args
        with self._lock:
            self._spans.append(span)
            overflow = len(self._spans) - self.max_buffer
            if overflow > 0:
                del self._spans[:overflow]
                self.dropped += overflow

    def add(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Ingest foreign span dicts (a shard's piggybacked spans)."""
        with self._lock:
            self._spans.extend(spans)
            overflow = len(self._spans) - self.max_buffer
            if overflow > 0:
                del self._spans[:overflow]
                self.dropped += overflow

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def drain(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Remove and return up to ``limit`` buffered spans (FIFO).

        The caller owns delivery: a worker keeps the drained batch in
        its pending heartbeat ship until the gateway acks its sequence
        number, so a lost response never loses spans.
        """
        with self._lock:
            if limit is None or limit >= len(self._spans):
                out, self._spans = self._spans, []
            else:
                out = self._spans[:limit]
                del self._spans[:limit]
            return out

    def snapshot(self) -> List[Dict[str, Any]]:
        """A copy of the buffer without draining (local collection)."""
        with self._lock:
            return list(self._spans)


# ---------------------------------------------------------------------------
# clock-offset estimation
# ---------------------------------------------------------------------------

class ClockModel:
    """Per-node wall-clock offset estimates from one-way samples.

    A message from node *n* stamped with its send time ``remote`` and
    received locally at ``local`` yields the sample
    ``local - remote = offset(n) + delay`` where ``delay >= 0`` is the
    network latency.  The minimum sample over many messages (heartbeats
    arrive every second) converges on ``offset(n)`` plus the *minimum*
    delay — the same filtering NTP applies.  ``rebase`` then maps a
    remote wall timestamp into the local clock: ``remote + offset``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._offsets: Dict[str, float] = {}
        self._samples: Dict[str, int] = {}

    def observe(self, node: str, remote_wall: float,
                local_wall: Optional[float] = None) -> float:
        sample = (local_wall if local_wall is not None
                  else time.time()) - float(remote_wall)
        with self._lock:
            if node in self._offsets:
                self._offsets[node] = min(self._offsets[node], sample)
            else:
                self._offsets[node] = sample
            self._samples[node] = self._samples.get(node, 0) + 1
        return sample

    def offset(self, node: str) -> float:
        """Estimated ``local - remote`` clock offset (0.0 = unknown or
        the local node itself)."""
        with self._lock:
            return self._offsets.get(node, 0.0)

    def rebase(self, node: str, remote_wall: float) -> float:
        return float(remote_wall) + self.offset(node)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {node: {"offset": offset,
                           "samples": self._samples.get(node, 0)}
                    for node, offset in sorted(self._offsets.items())}

    @classmethod
    def from_offsets(cls, offsets: Dict[str, Any]) -> "ClockModel":
        """Rebuild from a ``to_dict`` export (the trace-collect client
        applies the gateway's estimates offline)."""
        model = cls()
        for node, info in (offsets or {}).items():
            if isinstance(info, dict):
                model._offsets[node] = float(info.get("offset", 0.0))
                model._samples[node] = int(info.get("samples", 0))
            else:
                model._offsets[node] = float(info)
        return model


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------

def _assign_lanes(spans: List[Dict[str, Any]]) -> Dict[int, int]:
    """Greedy per-node thread-lane packing: overlapping spans get
    distinct tids so Perfetto renders them side by side, sequential
    spans reuse lane 0.  Returns index -> tid."""
    lanes: Dict[int, int] = {}
    busy_until: List[float] = []
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i]["_ts"], -spans[i]["dur"]))
    for i in order:
        start, end = spans[i]["_ts"], spans[i]["_ts"] + spans[i]["dur"]
        for tid, busy in enumerate(busy_until):
            if busy <= start:
                busy_until[tid] = end
                lanes[i] = tid
                break
        else:
            lanes[i] = len(busy_until)
            busy_until.append(end)
    return lanes


def stitch_spans(spans: Iterable[Dict[str, Any]],
                 clock: Optional[ClockModel] = None,
                 trace_id: Optional[str] = None,
                 label: str = "repro-cluster",
                 decisions: Optional[List[Dict[str, Any]]] = None,
                 site_decisions: Optional[List[Dict[str, Any]]] = None
                 ) -> Dict[str, Any]:
    """Merge per-node span dicts into one Chrome trace-event object.

    Each node gets its own ``pid`` lane (named after the node); span
    wall timestamps are rebased by the node's estimated clock offset,
    then the whole timeline shifts so the earliest span sits at t=0.
    Child spans are clamped to start no earlier than their parent —
    residual skew below the estimation error cannot produce a child
    that precedes its cause.  Decision records ride along under the
    PR 3 ``loopDecisions``/``siteDecisions`` keys, each carrying the
    ``span_id`` that links it to the execute span that produced it.
    """
    clock = clock or ClockModel()
    picked = [dict(span) for span in spans
              if trace_id is None or span.get("trace_id") == trace_id]
    for span in picked:
        span["dur"] = max(0.0, float(span.get("dur", 0.0)))
        span["_ts"] = clock.rebase(span.get("node", ""),
                                   float(span.get("ts_wall", 0.0)))

    # child-after-parent monotonicity: residual skew between two nodes'
    # estimates can leave a child a few hundred microseconds "before"
    # its parent; clamp it forward (never backwards) so causal order
    # survives into the rendered trace
    by_span_id = {s["span_id"]: s for s in picked if s.get("span_id")}
    for span in sorted(picked, key=lambda s: s["_ts"]):
        parent = by_span_id.get(span.get("parent_id") or "")
        if parent is not None and span["_ts"] < parent["_ts"]:
            span["_ts"] = parent["_ts"]

    t0 = min((s["_ts"] for s in picked), default=0.0)
    nodes = sorted({s.get("node", "?") for s in picked})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}

    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
         "args": {"name": node}}
        for node, pid in pid_of.items()]
    by_node: Dict[str, List[Dict[str, Any]]] = {}
    for span in picked:
        by_node.setdefault(span.get("node", "?"), []).append(span)
    trace_ids = sorted({s.get("trace_id") for s in picked
                        if s.get("trace_id")})
    for node, node_spans in by_node.items():
        lanes = _assign_lanes(node_spans)
        for i, span in enumerate(node_spans):
            args = dict(span.get("args") or {})
            args["span_id"] = span.get("span_id")
            if span.get("parent_id"):
                args["parent_id"] = span["parent_id"]
            if span.get("trace_id"):
                args["trace_id"] = span["trace_id"]
            events.append({
                "name": span.get("name", "span"),
                "cat": span.get("cat", "cluster"),
                "ph": "X",
                "ts": round((span["_ts"] - t0) * 1e6, 1),
                "dur": round(span["dur"] * 1e6, 1),
                "pid": pid_of[node],
                "tid": lanes[i],
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs.distributed",
            "format": 1,
            "label": label,
            "nodes": nodes,
            "trace_ids": trace_ids,
            "clock_offsets": clock.to_dict(),
        },
        "loopDecisions": list(decisions or []),
        "siteDecisions": list(site_decisions or []),
    }


def spans_by_trace(spans: Iterable[Dict[str, Any]]
                   ) -> Dict[str, List[Dict[str, Any]]]:
    """Group span dicts by trace id (unknown-trace spans drop)."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        tid = span.get("trace_id")
        if tid:
            out.setdefault(tid, []).append(span)
    return out


def parent_child_monotonic(chrome: Dict[str, Any]) -> List[str]:
    """Validation helper: every X event whose ``args.parent_id`` names
    another event must not start before it.  Returns problems."""
    starts: Dict[str, float] = {}
    for event in chrome.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        span_id = (event.get("args") or {}).get("span_id")
        if span_id:
            starts[span_id] = float(event.get("ts", 0.0))
    problems = []
    for event in chrome.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        parent = args.get("parent_id")
        if parent and parent in starts \
                and float(event.get("ts", 0.0)) < starts[parent]:
            problems.append(
                f"span {args.get('span_id')} ({event.get('name')}) "
                f"starts before its parent {parent}")
    return problems
