"""repro.obs — the unified observability spine.

* :mod:`repro.obs.metrics` — counters/gauges/histograms and the
  process-wide default :class:`~repro.obs.metrics.MetricsRegistry`,
  with export/delta/merge for crossing the worker-pool boundary;
* :mod:`repro.obs.logging` — structured JSON/text logging with
  contextvars-carried correlation IDs (``run_id``, ``job_id``,
  ``benchmark``, ``config``);
* :mod:`repro.obs.profile` — phase timings + dependence-test family
  stats + optional cProfile top-N behind ``--profile``;
* :mod:`repro.obs.dashboard` — the ``repro report --out`` self-contained
  HTML dashboard.
"""

from repro.obs.logging import (configure, current_context, get_logger,
                               log_context, new_run_id, validate_record)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               counter, gauge, get_registry, histogram,
                               set_registry)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "counter", "gauge", "histogram", "get_registry", "set_registry",
    "configure", "current_context", "get_logger", "log_context",
    "new_run_id", "validate_record",
]
