"""repro.obs — the unified observability spine.

* :mod:`repro.obs.metrics` — counters/gauges/histograms and the
  process-wide default :class:`~repro.obs.metrics.MetricsRegistry`,
  with export/delta/merge for crossing the worker-pool boundary;
* :mod:`repro.obs.logging` — structured JSON/text logging with
  contextvars-carried correlation IDs (``run_id``, ``job_id``,
  ``benchmark``, ``config``), size-rotated file sinks;
* :mod:`repro.obs.distributed` — trace-context propagation, per-node
  span recording, clock-offset estimation, and cross-node stitching
  into one Chrome trace;
* :mod:`repro.obs.telemetry` — the gateway telemetry plane's stores
  (periodic merged snapshots, health events, distributed spans) with
  JSONL persistence under ``.repro_cache/telemetry/``;
* :mod:`repro.obs.slo` — declarative SLO specs evaluated over loadtest
  reports and telemetry windows, with burn-rate alerts;
* :mod:`repro.obs.top` — the ``repro top`` live terminal view;
* :mod:`repro.obs.profile` — phase timings + dependence-test family
  stats + optional cProfile top-N behind ``--profile``;
* :mod:`repro.obs.dashboard` — the ``repro report --out`` self-contained
  HTML dashboard.
"""

from repro.obs.distributed import (ClockModel, SpanRecorder, TraceContext,
                                   stitch_spans, validate_trace_ctx)
from repro.obs.logging import (configure, current_context, get_logger,
                               log_context, new_run_id, validate_record)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               counter, gauge, get_registry, histogram,
                               set_registry)
from repro.obs.slo import evaluate_slo, load_slo_spec, validate_slo_spec
from repro.obs.telemetry import SpanStore, TelemetryStore

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "counter", "gauge", "histogram", "get_registry", "set_registry",
    "configure", "current_context", "get_logger", "log_context",
    "new_run_id", "validate_record",
    "ClockModel", "SpanRecorder", "TraceContext", "stitch_spans",
    "validate_trace_ctx",
    "SpanStore", "TelemetryStore",
    "evaluate_slo", "load_slo_spec", "validate_slo_spec",
]
