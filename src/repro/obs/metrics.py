"""Shared metrics: counters, gauges, histograms, and the process-wide
default registry.

Grown out of ``repro.service.metrics`` (which now re-exports this
module): a single :class:`MetricsRegistry` owns every metric; accessors
are get-or-create so instrumentation points never race registration.
Re-registering a name with a *conflicting* ``help`` text or histogram
``buckets`` raises :class:`ValueError` — two call sites that disagree
about what a metric means are a bug, not a race.

Render formats:

* ``to_json()`` — nested dict for the ``metrics`` protocol op and tests;
* ``to_prometheus()`` — the Prometheus text exposition format, so a
  scraper pointed at ``repro svc-status --prometheus`` (or the raw op)
  needs no translation layer.

Cross-process story (mirrors :meth:`repro.trace.Tracer.export`):
executor workers run against their own process-local default registry,
:meth:`MetricsRegistry.export` a JSON-safe snapshot around each task,
and the parent :meth:`MetricsRegistry.merge`\\ s the per-task
:meth:`MetricsRegistry.delta` back in — so ``repro table2 -j 8`` ends
with the same counter values as ``-j 1``.

All mutation is lock-protected; observation costs one lock acquire, fine
at this system's request rates (the pipeline behind each job runs for
milliseconds to seconds, not nanoseconds).
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

#: default histogram buckets (seconds) — the pipeline spans ~1ms probes
#: to multi-second whole-benchmark runs
DEFAULT_BUCKETS = (0.005, 0.02, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def _fmt(value: float) -> str:
    """Prometheus sample value: integers render without a decimal."""
    return str(int(value)) if float(value).is_integer() else repr(value)


def _labels_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count, optionally split by one label."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def to_json(self):
        with self._lock:
            if not self._values:
                return 0
            if list(self._values) == [()]:
                return self._values[()]
            return {_labels_suffix(k) or "total": v
                    for k, v in sorted(self._values.items())}

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items()) or [((), 0)]
            return [f"{self.name}{_labels_suffix(k)} {_fmt(v)}"
                    for k, v in items]

    # -- cross-process snapshots -------------------------------------

    def export(self) -> Dict[str, object]:
        with self._lock:
            values = [[list(map(list, k)), v]
                      for k, v in sorted(self._values.items())]
        return {"kind": self.kind, "help": self.help, "values": values}

    def merge(self, exported: Dict[str, object]) -> None:
        for key, amount in exported.get("values", ()):
            if amount:
                self.inc(amount, **{k: v for k, v in key})

    @staticmethod
    def subtract(before: Dict[str, object],
                 after: Dict[str, object]) -> Dict[str, object]:
        base = {tuple(map(tuple, k)): v for k, v in before.get("values", ())}
        values = []
        for key, v in after.get("values", ()):
            diff = v - base.get(tuple(map(tuple, key)), 0)
            if diff:
                values.append([key, diff])
        return {"kind": "counter", "help": after.get("help", ""),
                "values": values}


class Gauge:
    """A value that goes up and down (queue depth, running jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def to_json(self):
        return self.value()

    def samples(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value())}"]

    # -- cross-process snapshots -------------------------------------

    def export(self) -> Dict[str, object]:
        return {"kind": self.kind, "help": self.help, "value": self.value()}

    def merge(self, exported: Dict[str, object]) -> None:
        amount = float(exported.get("value", 0.0))
        if amount:
            self.inc(amount)

    @staticmethod
    def subtract(before: Dict[str, object],
                 after: Dict[str, object]) -> Dict[str, object]:
        return {"kind": "gauge", "help": after.get("help", ""),
                "value": (float(after.get("value", 0.0))
                          - float(before.get("value", 0.0)))}


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall clock on exit."""
        return _HistogramTimer(self)

    def count(self) -> int:
        with self._lock:
            return self._count

    def sum(self) -> float:
        with self._lock:
            return self._sum

    def to_json(self):
        with self._lock:
            cumulative = 0
            buckets = {}
            for bound, n in zip(self.buckets, self._counts):
                cumulative += n
                buckets[_fmt(bound)] = cumulative
            buckets["+Inf"] = self._count
            return {"count": self._count, "sum": self._sum,
                    "buckets": buckets}

    def samples(self) -> List[str]:
        with self._lock:
            out = []
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts):
                cumulative += n
                out.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} '
                           f'{cumulative}')
            out.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            out.append(f"{self.name}_sum {_fmt(self._sum)}")
            out.append(f"{self.name}_count {self._count}")
            return out

    # -- cross-process snapshots -------------------------------------

    def export(self) -> Dict[str, object]:
        with self._lock:
            return {"kind": self.kind, "help": self.help,
                    "buckets": list(self.buckets),
                    "counts": list(self._counts),
                    "sum": self._sum, "count": self._count}

    def merge(self, exported: Dict[str, object]) -> None:
        counts = exported.get("counts", ())
        if tuple(exported.get("buckets", ())) != self.buckets \
                or len(counts) != len(self._counts):
            # incompatible bucket layout: keep sum/count honest at least
            with self._lock:
                self._sum += float(exported.get("sum", 0.0))
                self._count += int(exported.get("count", 0))
                self._counts[-1] += int(exported.get("count", 0))
            return
        with self._lock:
            for i, n in enumerate(counts):
                self._counts[i] += n
            self._sum += float(exported.get("sum", 0.0))
            self._count += int(exported.get("count", 0))

    @staticmethod
    def subtract(before: Dict[str, object],
                 after: Dict[str, object]) -> Dict[str, object]:
        b_counts = list(before.get("counts", ()))
        a_counts = list(after.get("counts", ()))
        if list(before.get("buckets", ())) != list(after.get("buckets", ())) \
                or len(b_counts) != len(a_counts):
            return dict(after)
        return {"kind": "histogram", "help": after.get("help", ""),
                "buckets": list(after.get("buckets", ())),
                "counts": [a - b for a, b in zip(a_counts, b_counts)],
                "sum": (float(after.get("sum", 0.0))
                        - float(before.get("sum", 0.0))),
                "count": (int(after.get("count", 0))
                          - int(before.get("count", 0)))}


class _HistogramTimer:
    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(perf_counter() - self._t0)
        return False


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe, get-or-create home for every metric."""

    def __init__(self):
        self._lock = threading.Lock()          # guards the metric table
        self._metrics: Dict[str, object] = {}  # name -> metric (ordered)

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                if cls is Histogram and kwargs.get("buckets") is None:
                    kwargs["buckets"] = DEFAULT_BUCKETS
                metric = cls(name, help, threading.Lock(), **kwargs)
                self._metrics[name] = metric
                return metric
            if not isinstance(metric, cls):
                raise TypeError(f"metric {name!r} already registered "
                                f"as {type(metric).__name__}")
            # conflicting re-registration is a bug at the call site, not
            # a get-or-create race: the empty help means "no opinion"
            if help and metric.help and help != metric.help:
                raise ValueError(
                    f"metric {name!r} already registered with help "
                    f"{metric.help!r}; conflicting help {help!r}")
            if help and not metric.help:
                metric.help = help
            buckets = kwargs.get("buckets")
            if buckets is not None \
                    and tuple(sorted(buckets)) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{metric.buckets}; conflicting buckets "
                    f"{tuple(sorted(buckets))}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def _snapshot(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for metric in self._snapshot():
            out[metric.name] = metric.to_json()
        return out

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self._snapshot():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"

    # -- cross-process snapshots -------------------------------------

    def export(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot of every metric (picklable across the pool
        boundary, serializable on the service wire)."""
        return {m.name: m.export() for m in self._snapshot()}

    @staticmethod
    def delta(before: Dict[str, Dict[str, object]],
              after: Dict[str, Dict[str, object]]
              ) -> Dict[str, Dict[str, object]]:
        """``after - before``, name by name, dropping all-zero entries.

        The worker wrapper snapshots around each task so long-lived pool
        workers never double-report earlier tasks' observations."""
        out: Dict[str, Dict[str, object]] = {}
        for name, exported in after.items():
            cls = _KINDS.get(exported.get("kind"))
            if cls is None:
                continue
            prev = before.get(name)
            if prev is None or prev.get("kind") != exported.get("kind"):
                diff = dict(exported)
            else:
                diff = cls.subtract(prev, exported)
            if _is_zero(diff):
                continue
            out[name] = diff
        return out

    def merge(self, exported: Optional[Dict[str, Dict[str, object]]]
              ) -> None:
        """Fold an :meth:`export` (usually a :meth:`delta`) into this
        registry, get-or-creating each metric.  Counter and histogram
        values add; gauge deltas add (an absolute child gauge should be
        folded by the caller instead)."""
        if not exported:
            return
        for name, data in exported.items():
            kind = data.get("kind")
            if kind == "counter":
                self.counter(name, str(data.get("help", ""))).merge(data)
            elif kind == "gauge":
                self.gauge(name, str(data.get("help", ""))).merge(data)
            elif kind == "histogram":
                self.histogram(name, str(data.get("help", "")),
                               buckets=data.get("buckets")).merge(data)


def _is_zero(diff: Dict[str, object]) -> bool:
    kind = diff.get("kind")
    if kind == "counter":
        return not diff.get("values")
    if kind == "gauge":
        return not diff.get("value")
    if kind == "histogram":
        return not diff.get("count") and not diff.get("sum")
    return True


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumentation point
    shares (the CLI, the experiment pipeline, the fuzzer, and the
    service all observe into this one)."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests isolate themselves with this);
    returns the previous one so callers can restore it."""
    global _default
    with _default_lock:
        previous = _default
        _default = registry
    return previous


def counter(name: str, help: str = "") -> Counter:
    return get_registry().counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return get_registry().gauge(name, help)


def histogram(name: str, help: str = "",
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    return get_registry().histogram(name, help, buckets=buckets)
