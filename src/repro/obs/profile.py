"""Deep profiling: phase timings, dependence-test family stats, and an
optional cProfile top-N of the analysis hot path.

``repro <cmd> --profile`` used to dump a flat timings dict; it now
renders (via :func:`render_profile_report`):

* per-phase wall-clock in the pipeline's canonical order;
* a dependence-test family table — how many times each test in the
  ZIV/GCD/Banerjee/exact family *ran* (attempts) vs *disproved* a
  dependence (kills), plus memo-table hits — the numbers that explain
  where analysis time goes and which test earns its keep;
* with ``--profile-top N``, a cProfile table of the N most expensive
  functions under the profiled call (:func:`profile_call`).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Dict, Optional, Tuple

# NOTE: repro.experiments.reporting is imported inside the render
# functions — the driver imports this module, and experiments imports
# the driver's package, so a module-level import here would be a cycle.

#: (display name, attempts field, kills field) per dependence-test family
FAMILIES = (
    ("ZIV", "ziv_attempts", "ziv_independent"),
    ("GCD", "gcd_attempts", "gcd_independent"),
    ("Banerjee", "banerjee_attempts", "banerjee_independent"),
    ("exact", "exact_attempts", "exact_independent"),
)


def accumulate_test_stats(into: Dict[str, int], stats) -> Dict[str, int]:
    """Fold one :class:`~repro.analysis.dependence.TestStats` (one unit's
    tester) into an accumulated dict (in place; returned)."""
    for field in ("ziv_attempts", "gcd_attempts", "banerjee_attempts",
                  "exact_attempts", "ziv_independent", "gcd_independent",
                  "banerjee_independent", "exact_independent",
                  "assumed_dependent", "cache_hits"):
        into[field] = into.get(field, 0) + getattr(stats, field, 0)
    return into


def merge_test_stats(into: Dict[str, int],
                     add: Dict[str, int]) -> Dict[str, int]:
    """Accumulate already-dict-shaped test stats (in place; returned)."""
    for field, value in add.items():
        into[field] = into.get(field, 0) + value
    return into


def render_test_stats(test_stats: Dict[str, int]) -> str:
    """The dependence-test family table."""
    from repro.experiments.reporting import text_table
    rows = []
    for name, attempts_f, kills_f in FAMILIES:
        attempts = test_stats.get(attempts_f, 0)
        kills = test_stats.get(kills_f, 0)
        rate = f"{kills / attempts:.1%}" if attempts else "-"
        rows.append([name, attempts, kills, rate])
    assumed = test_stats.get("assumed_dependent", 0)
    hits = test_stats.get("cache_hits", 0)
    unique = (sum(test_stats.get(k, 0) for _, _, k in FAMILIES) + assumed)
    rows.append(["(assumed dep)", "-", assumed, "-"])
    table = text_table(["test", "attempts", "kills", "kill rate"], rows,
                       title="dependence-test family stats")
    footer = (f"unique queries: {unique}   memo hits: {hits}   "
              f"hit rate: "
              f"{hits / (hits + unique):.1%}" if hits + unique else
              f"unique queries: {unique}   memo hits: {hits}")
    return table + "\n" + footer


def render_profile_report(timings: Dict[str, float],
                          test_stats: Optional[Dict[str, int]] = None,
                          cprofile_text: str = "") -> str:
    """The full ``--profile`` report."""
    from repro.experiments.reporting import render_profile
    parts = [render_profile(timings)]
    if test_stats:
        parts.append(render_test_stats(test_stats))
    if cprofile_text:
        parts.append(cprofile_text)
    return "\n\n".join(parts)


def profile_call(fn: Callable, *args,
                 top: int = 20, **kwargs) -> Tuple[object, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile; returns
    ``(result, top-N text)`` sorted by cumulative time."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    text = buf.getvalue()
    # drop the chatty preamble lines before the header row
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.lstrip().startswith("ncalls"):
            lines = lines[i:]
            break
    return result, (f"cProfile top {top} (cumulative)\n"
                    + "\n".join(line.rstrip() for line in lines if
                                line.strip()))
