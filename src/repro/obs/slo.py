"""Declarative SLOs evaluated over loadtest reports and telemetry
windows.

A spec is plain JSON (committed next to the bench baselines, e.g.
``SLO.json``)::

    {
      "name": "repro-cluster",
      "window_seconds": 300,
      "objectives": [
        {"name": "job-latency",   "kind": "p99_latency",
         "threshold_seconds": 60.0},
        {"name": "job-errors",    "kind": "error_rate",
         "threshold": 0.02},
        {"name": "cache-hits",    "kind": "cache_hit_rate",
         "floor": 0.0}
      ]
    }

Three objective kinds cover the numbers the ISSUE cares about:

* ``p99_latency`` — p99 submit-to-finish latency must stay at or under
  ``threshold_seconds``.
* ``error_rate`` — failed jobs / finished jobs must stay at or under
  ``threshold``.
* ``cache_hit_rate`` — cache hits / lookups must stay at or *above*
  ``floor``.

Each evaluation also reports a **burn rate**: how fast the objective is
consuming its budget, normalized so 1.0 means "exactly at the
threshold".  For ceilings that is ``value / threshold``; for the hit
floor it is ``(1 - value) / (1 - floor)`` (miss share over allowed miss
share).  A burn rate above :data:`ALERT_BURN_RATE` turns into an alert
line in ``repro top`` / ``repro report`` before the objective actually
breaches.

Measurements come from two sources: a finished loadtest report
(:func:`measurements_from_loadtest`) for the CI gate, or a window of
gateway telemetry snapshots (:func:`measurements_from_telemetry`) for
the live view — the latter estimates p99 from histogram bucket deltas
by cumulative interpolation, the standard Prometheus
``histogram_quantile`` construction.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

OBJECTIVE_KINDS = ("p99_latency", "error_rate", "cache_hit_rate")

#: burn rate at which an objective alerts before breaching
ALERT_BURN_RATE = 0.85

#: telemetry metric names the window measurements read
LATENCY_HISTOGRAM = "repro_job_latency_seconds"
COMPLETED_COUNTER = "repro_jobs_completed_total"
CACHE_HITS_COUNTER = "repro_cache_hits_total"
CACHE_MISSES_COUNTER = "repro_cache_misses_total"


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------

def validate_slo_spec(spec: Any) -> List[str]:
    """Problems with an SLO spec object (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(spec, dict):
        return ["spec must be a JSON object"]
    objectives = spec.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        return ["spec needs a non-empty 'objectives' list"]
    seen = set()
    for i, obj in enumerate(objectives):
        where = f"objectives[{i}]"
        if not isinstance(obj, dict):
            problems.append(f"{where} must be an object")
            continue
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where} needs a 'name'")
        elif name in seen:
            problems.append(f"{where} duplicates objective {name!r}")
        else:
            seen.add(name)
        kind = obj.get("kind")
        if kind not in OBJECTIVE_KINDS:
            problems.append(
                f"{where} kind {kind!r} not one of {OBJECTIVE_KINDS}")
            continue
        if kind == "p99_latency":
            bound = obj.get("threshold_seconds")
            if not isinstance(bound, (int, float)) or bound <= 0:
                problems.append(
                    f"{where} needs a positive 'threshold_seconds'")
        elif kind == "error_rate":
            bound = obj.get("threshold")
            if not isinstance(bound, (int, float)) \
                    or not 0 <= bound <= 1:
                problems.append(
                    f"{where} needs a 'threshold' in [0, 1]")
        elif kind == "cache_hit_rate":
            floor = obj.get("floor")
            if not isinstance(floor, (int, float)) \
                    or not 0 <= floor <= 1:
                problems.append(f"{where} needs a 'floor' in [0, 1]")
    window = spec.get("window_seconds")
    if window is not None and (not isinstance(window, (int, float))
                               or window <= 0):
        problems.append("'window_seconds' must be a positive number")
    return problems


def load_slo_spec(path: str) -> Dict[str, Any]:
    """Load and validate a spec file; raises ValueError on problems."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            spec = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    problems = validate_slo_spec(spec)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return spec


# ---------------------------------------------------------------------------
# measurements
# ---------------------------------------------------------------------------

def quantile_from_histogram(exported: Dict[str, Any], q: float
                            ) -> Optional[float]:
    """Estimate quantile ``q`` from an exported histogram delta.

    ``exported`` carries per-bucket (non-cumulative) ``counts`` with a
    final +Inf bucket; interpolate linearly inside the bucket holding
    the target rank (0 as the lower edge of the first bucket).  The
    +Inf bucket yields its lower finite bound — the honest answer "at
    least this much".  None when the histogram is empty.
    """
    buckets = list(exported.get("buckets", ()))
    counts = list(exported.get("counts", ()))
    total = int(exported.get("count", 0) or 0)
    if total <= 0 or len(counts) != len(buckets) + 1:
        return None
    rank = q * total
    cumulative = 0
    for i, n in enumerate(counts[:-1]):
        prev_cumulative = cumulative
        cumulative += n
        if cumulative >= rank and n > 0:
            lo = buckets[i - 1] if i > 0 else 0.0
            hi = buckets[i]
            frac = (rank - prev_cumulative) / n
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
    return float(buckets[-1]) if buckets else None


def _counter_total(exported: Optional[Dict[str, Any]],
                   **match: str) -> float:
    """Sum an exported counter's values, optionally filtered by label."""
    total = 0.0
    for key, amount in (exported or {}).get("values", ()):
        labels = {k: v for k, v in key}
        if all(labels.get(k) == v for k, v in match.items()):
            total += amount
    return total


def measurements_from_loadtest(report: Dict[str, Any]
                               ) -> Dict[str, Optional[float]]:
    """SLI values from a finished ``run_loadtest`` report."""
    jobs = int(report.get("jobs", 0) or 0)
    lost = int(report.get("lost", 0) or 0)
    mismatches = int(report.get("mismatches", 0) or 0)
    service = report.get("service") or {}
    hits = service.get("repro_cache_hits_total")
    misses = service.get("repro_cache_misses_total")
    hit_rate = None
    if isinstance(hits, (int, float)) and isinstance(misses, (int, float)) \
            and hits + misses > 0:
        hit_rate = hits / (hits + misses)
    return {
        "p99_latency": (report.get("latency") or {}).get("p99"),
        "error_rate": ((lost + mismatches) / jobs) if jobs else None,
        "cache_hit_rate": hit_rate,
    }


def measurements_from_telemetry(snapshots: List[Dict[str, Any]]
                                ) -> Dict[str, Optional[float]]:
    """SLI values over a window of telemetry snapshots (oldest first).

    Counters and histograms are monotonic, so the window's activity is
    the difference between the last and first snapshot; a single
    snapshot measures everything since gateway start.
    """
    if not snapshots:
        return {"p99_latency": None, "error_rate": None,
                "cache_hit_rate": None}
    from repro.obs.metrics import Counter, Histogram
    first = snapshots[0].get("metrics") or {}
    last = snapshots[-1].get("metrics") or {}
    if len(snapshots) == 1:
        first = {}

    def delta(name: str, cls) -> Optional[Dict[str, Any]]:
        after = last.get(name)
        if not isinstance(after, dict):
            return None
        before = first.get(name)
        if isinstance(before, dict) \
                and before.get("kind") == after.get("kind"):
            return cls.subtract(before, after)
        return after

    latency = delta(LATENCY_HISTOGRAM, Histogram)
    p99 = quantile_from_histogram(latency, 0.99) if latency else None

    completed = delta(COMPLETED_COUNTER, Counter)
    finished = _counter_total(completed)
    failed = (_counter_total(completed, state="failed")
              + _counter_total(completed, state="expired"))
    error_rate = (failed / finished) if finished > 0 else None

    hits = _counter_total(delta(CACHE_HITS_COUNTER, Counter))
    misses = _counter_total(delta(CACHE_MISSES_COUNTER, Counter))
    hit_rate = (hits / (hits + misses)) if hits + misses > 0 else None

    return {"p99_latency": p99, "error_rate": error_rate,
            "cache_hit_rate": hit_rate}


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def _evaluate_one(obj: Dict[str, Any], value: Optional[float]
                  ) -> Dict[str, Any]:
    kind = obj["kind"]
    if kind == "p99_latency":
        bound = float(obj["threshold_seconds"])
        burn = None if value is None else value / bound
        ok = value is None or value <= bound
        target = f"<= {bound}s"
    elif kind == "error_rate":
        bound = float(obj["threshold"])
        if value is None:
            burn, ok = None, True
        elif bound > 0:
            burn, ok = value / bound, value <= bound
        else:
            burn, ok = (float("inf") if value > 0 else 0.0), value <= 0
        target = f"<= {bound:.4g}"
    else:  # cache_hit_rate
        floor = float(obj["floor"])
        if value is None:
            burn, ok = None, True
        else:
            allowed_miss = 1.0 - floor
            miss = 1.0 - value
            if allowed_miss > 0:
                burn = miss / allowed_miss
            else:
                burn = float("inf") if miss > 0 else 0.0
            ok = value >= floor
        target = f">= {floor:.4g}"
    return {
        "name": obj["name"],
        "kind": kind,
        "target": target,
        "value": value,
        "ok": bool(ok),
        "no_data": value is None,
        "burn_rate": (round(burn, 4)
                      if isinstance(burn, float) and burn != float("inf")
                      else burn),
        "alert": (burn is not None and burn > ALERT_BURN_RATE),
    }


def evaluate_slo(spec: Dict[str, Any],
                 measurements: Dict[str, Optional[float]],
                 source: str = "loadtest") -> Dict[str, Any]:
    """Evaluate every objective; overall ``ok`` requires all to hold.

    Objectives with no data pass (nothing ran → nothing breached) but
    are flagged ``no_data`` so a gate run against an idle cluster is
    visibly vacuous rather than silently green.
    """
    results = [_evaluate_one(obj, measurements.get(obj["kind"]))
               for obj in spec.get("objectives", ())]
    return {
        "spec": spec.get("name", "slo"),
        "source": source,
        "objectives": results,
        "violations": [r["name"] for r in results if not r["ok"]],
        "alerts": [r["name"] for r in results
                   if r["alert"] and r["ok"]],
        "ok": all(r["ok"] for r in results),
    }


def render_slo(evaluation: Dict[str, Any]) -> str:
    """Fixed-width text block for CLI output."""
    lines = [f"SLO {evaluation['spec']} "
             f"[{'OK' if evaluation['ok'] else 'VIOLATED'}] "
             f"(source: {evaluation['source']})"]
    for r in evaluation["objectives"]:
        if r["no_data"]:
            status, shown = "  --  ", "no data"
        else:
            status = "  ok  " if r["ok"] else "VIOLATE"
            if r["kind"] == "p99_latency":
                shown = f"{r['value']:.4f}s"
            else:
                shown = f"{r['value']:.4f}"
        burn = r["burn_rate"]
        burn_s = ("" if burn is None
                  else f"  burn={burn:.2f}" if isinstance(burn, float)
                  else "  burn=inf")
        alert_s = "  ALERT" if r["alert"] and r["ok"] else ""
        lines.append(f"  [{status}] {r['name']:<16} {r['kind']:<15} "
                     f"{shown:>10}  target {r['target']}"
                     f"{burn_s}{alert_s}")
    return "\n".join(lines)
