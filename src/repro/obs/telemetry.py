"""Telemetry plane: merged metric snapshots, health events, span store.

The gateway already merges per-node metric deltas exactly once (PR 7);
this module gives those merged numbers — plus discrete health events
like dead-node sweeps and work steals — somewhere to *live*:

* :class:`TelemetryStore` keeps a bounded ring of periodic snapshots
  (merged metrics + cluster health) and a sequence-numbered event log,
  optionally persisted as JSONL under ``.repro_cache/telemetry/`` so
  ``repro report`` and post-mortems can read a run after the gateway
  is gone.

* :class:`SpanStore` collects distributed span dicts (see
  :mod:`repro.obs.distributed`) keyed by trace id, also with optional
  JSONL persistence, feeding ``repro trace-collect``.

Both are thread-safe: the gateway's asyncio loop appends from one
thread, while ``telemetry`` ops read via ``asyncio.to_thread``-style
accessors and tests poke them directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

#: default cap on retained snapshots / events / spans (memory guard)
DEFAULT_SNAPSHOT_KEEP = 720
DEFAULT_EVENT_KEEP = 2000
DEFAULT_SPAN_KEEP = 50_000

TELEMETRY_DIRNAME = "telemetry"


def telemetry_dir(cache_dir: str) -> str:
    return os.path.join(cache_dir, TELEMETRY_DIRNAME)


class TelemetryStore:
    """Bounded in-memory telemetry with optional JSONL persistence."""

    def __init__(self, directory: Optional[str] = None,
                 run_id: Optional[str] = None,
                 snapshot_keep: int = DEFAULT_SNAPSHOT_KEEP,
                 event_keep: int = DEFAULT_EVENT_KEEP):
        self.directory = directory
        self.run_id = run_id or "run"
        self.snapshot_keep = snapshot_keep
        self.event_keep = event_keep
        self._lock = threading.Lock()
        self._snapshots: List[Dict[str, Any]] = []
        self._events: List[Dict[str, Any]] = []
        self._event_seq = 0
        self._snapshot_file = None
        self._event_file = None
        if directory:
            os.makedirs(directory, exist_ok=True)
            self._snapshot_path = os.path.join(
                directory, f"{self.run_id}.snapshots.jsonl")
            self._event_path = os.path.join(
                directory, f"{self.run_id}.events.jsonl")
        else:
            self._snapshot_path = self._event_path = None

    # -- writes ------------------------------------------------------------

    def add_snapshot(self, metrics: Dict[str, Any],
                     health: Optional[Dict[str, Any]] = None,
                     at: Optional[float] = None) -> Dict[str, Any]:
        snapshot = {
            "at": time.time() if at is None else at,
            "metrics": metrics,
            "health": health or {},
        }
        with self._lock:
            self._snapshots.append(snapshot)
            if len(self._snapshots) > self.snapshot_keep:
                del self._snapshots[:len(self._snapshots)
                                    - self.snapshot_keep]
        self._persist(self._snapshot_path, snapshot)
        return snapshot

    def add_event(self, kind: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            self._event_seq += 1
            event = {"seq": self._event_seq, "at": time.time(),
                     "kind": kind, **fields}
            self._events.append(event)
            if len(self._events) > self.event_keep:
                del self._events[:len(self._events) - self.event_keep]
        self._persist(self._event_path, event)
        return event

    def _persist(self, path: Optional[str], record: Dict[str, Any]) -> None:
        if not path:
            return
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        try:
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(line)
        except OSError:
            pass  # telemetry must never take the gateway down

    # -- reads -------------------------------------------------------------

    def latest(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._snapshots[-1] if self._snapshots else None

    def snapshots(self, since: Optional[float] = None,
                  limit: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            out = [s for s in self._snapshots
                   if since is None or s["at"] > since]
        if limit is not None:
            out = out[-limit:]
        return out

    def events_since(self, seq: int, limit: int = 200
                     ) -> List[Dict[str, Any]]:
        with self._lock:
            return [e for e in self._events if e["seq"] > seq][:limit]

    def event_seq(self) -> int:
        with self._lock:
            return self._event_seq

    def window(self, seconds: float) -> List[Dict[str, Any]]:
        """Snapshots covering the trailing window, oldest first.

        Always includes the snapshot immediately *before* the window
        start when one exists, so counter deltas over the window have a
        baseline.
        """
        cutoff = time.time() - seconds
        with self._lock:
            inside = [s for s in self._snapshots if s["at"] >= cutoff]
            before = [s for s in self._snapshots if s["at"] < cutoff]
        if before:
            inside = [before[-1]] + inside
        return inside

    # -- offline -----------------------------------------------------------

    @staticmethod
    def load_jsonl(path: str) -> List[Dict[str, Any]]:
        records = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail line from a crash
        except OSError:
            return []
        return records

    @classmethod
    def runs(cls, directory: str) -> List[str]:
        """Run ids with persisted telemetry under ``directory``."""
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        runs = {name[:-len(".snapshots.jsonl")] for name in names
                if name.endswith(".snapshots.jsonl")}
        runs |= {name[:-len(".events.jsonl")] for name in names
                 if name.endswith(".events.jsonl")}
        return sorted(runs)

    @classmethod
    def load_run(cls, directory: str, run_id: str) -> "TelemetryStore":
        store = cls(directory=None, run_id=run_id,
                    snapshot_keep=10**9, event_keep=10**9)
        for snap in cls.load_jsonl(os.path.join(
                directory, f"{run_id}.snapshots.jsonl")):
            if isinstance(snap, dict) and "metrics" in snap:
                store.add_snapshot(snap.get("metrics") or {},
                                   snap.get("health") or {},
                                   at=snap.get("at"))
        for event in cls.load_jsonl(os.path.join(
                directory, f"{run_id}.events.jsonl")):
            if isinstance(event, dict) and "kind" in event:
                fields = {k: v for k, v in event.items()
                          if k not in ("seq", "at", "kind")}
                store.add_event(event["kind"], **fields)
        return store


class SpanStore:
    """Bounded store of distributed span dicts, keyed by trace id."""

    def __init__(self, directory: Optional[str] = None,
                 run_id: Optional[str] = None,
                 keep: int = DEFAULT_SPAN_KEEP):
        self.directory = directory
        self.run_id = run_id or "run"
        self.keep = keep
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        if directory:
            os.makedirs(directory, exist_ok=True)
            self._path = os.path.join(directory,
                                      f"{self.run_id}.spans.jsonl")
        else:
            self._path = None

    def add(self, spans: Iterable[Dict[str, Any]]) -> int:
        batch = [s for s in spans if isinstance(s, dict)]
        if not batch:
            return 0
        with self._lock:
            self._spans.extend(batch)
            overflow = len(self._spans) - self.keep
            if overflow > 0:
                del self._spans[:overflow]
                self.dropped += overflow
        if self._path:
            try:
                with open(self._path, "a", encoding="utf-8") as fh:
                    for span in batch:
                        fh.write(json.dumps(span, sort_keys=True,
                                            default=str) + "\n")
            except OSError:
                pass
        return len(batch)

    def spans(self, trace_id: Optional[str] = None
              ) -> List[Dict[str, Any]]:
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return [s for s in self._spans
                    if s.get("trace_id") == trace_id]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return sorted({s.get("trace_id") for s in self._spans
                           if s.get("trace_id")})

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @classmethod
    def load_run(cls, directory: str, run_id: str) -> "SpanStore":
        store = cls(directory=None, run_id=run_id, keep=10**9)
        store.add(TelemetryStore.load_jsonl(
            os.path.join(directory, f"{run_id}.spans.jsonl")))
        return store
