"""Structured logging with correlation IDs.

One logging spine for the whole system, deliberately tiny (no stdlib
``logging`` hierarchy — the handler/filter machinery buys nothing here
and costs startup time on the hot path):

* ``REPRO_LOG=json`` emits one JSON object per line on stderr;
  ``REPRO_LOG=text`` emits a human ``TIME LEVEL logger event k=v`` line.
* Default level is ``warning`` so plain CLI runs stay quiet (the bench
  gate holds warm table2 within 5% of baseline); setting ``REPRO_LOG``
  raises it to ``info``; ``REPRO_LOG_LEVEL`` / ``--log-level`` override.
* ``REPRO_LOG_FILE=/path`` sends records to a file instead of stderr,
  through :class:`RotatingFileSink`: every record is one atomic
  ``O_APPEND`` write (concurrent pool workers/cluster nodes on the same
  file never interleave mid-line), and when ``REPRO_LOG_MAX_BYTES`` is
  set the file rotates by atomic rename (``file.1`` … ``file.N``,
  ``REPRO_LOG_KEEP`` generations) — a bounded footprint under loadtest
  instead of an unbounded growth.
* Correlation IDs (``run_id``, ``job_id``, ``benchmark``, ``config``)
  travel in a :mod:`contextvars` context — :func:`log_context` pushes
  them, every record stamps the current set, and the executor/service
  boundary re-establishes them on the far side (see
  ``experiments/executor.py`` and ``service/server.py``), so one grep
  for a ``run_id`` follows a benchmark from CLI submit through a pool
  worker to the cached result.

Records are validated in tests and CI by :func:`validate_record`.
"""

from __future__ import annotations

import json
import os
import sys
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: correlation IDs for the current logical operation
_context: ContextVar[Dict[str, object]] = ContextVar("repro_log_context",
                                                     default={})


class _Config:
    __slots__ = ("mode", "level", "stream")

    def __init__(self):
        self.mode = "text"
        self.level = LEVELS["warning"]
        self.stream = None  # None -> sys.stderr at emit time


_config = _Config()


class RotatingFileSink:
    """Append-only log file with size-based keep-N rotation.

    Safe for concurrent writers (pool workers, cluster nodes sharing a
    path) without cross-process locks:

    * each record is a single ``os.write`` on an ``O_APPEND`` fd — the
      kernel makes the append atomic, so lines never interleave;
    * rotation is ``file.N-1 → file.N`` shifts ending in one atomic
      ``os.replace(file, file.1)`` — a writer holds either the old or
      the new inode, never a torn middle;
    * before writing, each writer re-stats the path and reopens when
      its fd no longer matches the inode on disk (someone else
      rotated), so late writers land in the fresh file instead of the
      renamed one forever.

    ``max_bytes <= 0`` disables rotation (plain bounded-risk append).
    """

    def __init__(self, path: str, max_bytes: int = 0, keep: int = 3):
        self.path = path
        self.max_bytes = int(max_bytes)
        self.keep = max(1, int(keep))
        self._fd: Optional[int] = None
        self._ino: Optional[int] = None

    def _open(self) -> int:
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._fd = fd
        try:
            self._ino = os.fstat(fd).st_ino
        except OSError:
            self._ino = None
        return fd

    def _current_fd(self) -> int:
        if self._fd is None:
            return self._open()
        try:
            on_disk = os.stat(self.path).st_ino
        except OSError:
            on_disk = None
        if on_disk != self._ino:
            # another process rotated under us: follow it to the new file
            try:
                os.close(self._fd)
            except OSError:
                pass
            return self._open()
        return self._fd

    def _rotate(self) -> None:
        # shift older generations first so .1 is free, then the atomic
        # live-file rename; a concurrent writer that loses this race
        # sees the inode change and reopens instead of double-rotating
        for i in range(self.keep - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                try:
                    os.replace(src, f"{self.path}.{i + 1}")
                except OSError:
                    pass
        try:
            os.replace(self.path, f"{self.path}.1")
        except OSError:
            pass
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None
        self._open()

    def write(self, text: str) -> None:
        data = text.encode("utf-8", "replace")
        fd = self._current_fd()
        if self.max_bytes > 0:
            try:
                size = os.fstat(fd).st_size
            except OSError:
                size = 0
            if size > 0 and size + len(data) > self.max_bytes:
                self._rotate()
                fd = self._fd  # type: ignore[assignment]
        os.write(fd, data)

    def flush(self) -> None:  # O_APPEND writes are unbuffered
        pass

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def generations(self) -> List[str]:
        """Existing files, newest first (live file, then .1, .2, ...)."""
        out = [self.path] if os.path.exists(self.path) else []
        for i in range(1, self.keep + 1):
            path = f"{self.path}.{i}"
            if os.path.exists(path):
                out.append(path)
        return out


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def configure(mode: Optional[str] = None, level: Optional[str] = None,
              stream=None) -> None:
    """Set the process-wide log mode/level.

    Arguments beat environment beats defaults: ``mode`` falls back to
    ``REPRO_LOG`` (text), ``level`` to ``REPRO_LOG_LEVEL`` (warning
    normally, info when ``REPRO_LOG`` is set — opting into structured
    logs means wanting to see them).  With no explicit ``stream``,
    ``REPRO_LOG_FILE`` selects a :class:`RotatingFileSink` bounded by
    ``REPRO_LOG_MAX_BYTES`` (0 = unbounded) keeping ``REPRO_LOG_KEEP``
    rotated generations (default 3).
    """
    env_mode = os.environ.get("REPRO_LOG", "").strip().lower()
    mode = (mode or env_mode or "text").lower()
    if mode not in ("json", "text"):
        mode = "text"
    env_level = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    level = (level or env_level or ("info" if env_mode else "warning")).lower()
    _config.mode = mode
    _config.level = LEVELS.get(level, LEVELS["warning"])
    log_file = os.environ.get("REPRO_LOG_FILE", "").strip()
    if stream is None and log_file:
        current = _config.stream
        if not (isinstance(current, RotatingFileSink)
                and current.path == log_file):
            stream = RotatingFileSink(
                log_file,
                max_bytes=_env_int("REPRO_LOG_MAX_BYTES", 0),
                keep=_env_int("REPRO_LOG_KEEP", 3))
        else:
            stream = current
    _config.stream = stream


def configured_mode() -> str:
    return _config.mode


def configured_level() -> str:
    for name, value in LEVELS.items():
        if value == _config.level:
            return name
    return "warning"


# established from the environment once at import so library use (no CLI
# entry point) still honours REPRO_LOG
configure()


def new_run_id() -> str:
    """A short unique correlation ID for one CLI invocation / job."""
    return uuid.uuid4().hex[:12]


def current_context() -> Dict[str, object]:
    """The correlation IDs in effect (a copy; safe to ship across the
    pool boundary or the service wire)."""
    return dict(_context.get())


@contextmanager
def log_context(**ids: object) -> Iterator[None]:
    """Layer correlation IDs onto the current context for the duration
    of the block.  ``None`` values are dropped so callers can pass
    optional IDs unconditionally."""
    merged = dict(_context.get())
    merged.update({k: v for k, v in ids.items() if v is not None})
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


class Logger:
    """Named logger; emits to the shared stream at the shared level."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: Dict[str, object]) -> None:
        if LEVELS[level] < _config.level:
            return
        record: Dict[str, object] = {"ts": time.time(), "level": level,
                                     "logger": self.name, "event": event}
        record.update(_context.get())
        record.update(fields)
        stream = _config.stream or sys.stderr
        if _config.mode == "json":
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            ts = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
            extras = " ".join(f"{k}={v}" for k, v in record.items()
                              if k not in ("ts", "level", "logger", "event"))
            line = f"{ts} {level.upper():7s} {self.name} {event}"
            if extras:
                line += " " + extras
        try:
            # one write + flush per record: concurrent pool workers share
            # the parent's stderr pipe, and separate text/newline writes
            # (print) interleave into unparseable concatenations
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):
            pass  # closed stream at interpreter shutdown

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> Logger:
    return Logger(name)


_SCALARS = (str, int, float, bool, type(None))


def validate_record(record: object) -> List[str]:
    """Check one parsed log record against the schema; returns a list of
    problems (empty when valid).  Used by tests and ``obs_smoke.py``."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts <= 0:
        problems.append("ts must be a positive number")
    if record.get("level") not in LEVELS:
        problems.append(f"level must be one of {sorted(LEVELS)}")
    for key in ("logger", "event"):
        value = record.get(key)
        if not isinstance(value, str) or not value:
            problems.append(f"{key} must be a non-empty string")
    for key, value in record.items():
        if not isinstance(value, _SCALARS):
            problems.append(f"field {key!r} must be a JSON scalar, "
                            f"got {type(value).__name__}")
    return problems
