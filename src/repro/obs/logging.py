"""Structured logging with correlation IDs.

One logging spine for the whole system, deliberately tiny (no stdlib
``logging`` hierarchy — the handler/filter machinery buys nothing here
and costs startup time on the hot path):

* ``REPRO_LOG=json`` emits one JSON object per line on stderr;
  ``REPRO_LOG=text`` emits a human ``TIME LEVEL logger event k=v`` line.
* Default level is ``warning`` so plain CLI runs stay quiet (the bench
  gate holds warm table2 within 5% of baseline); setting ``REPRO_LOG``
  raises it to ``info``; ``REPRO_LOG_LEVEL`` / ``--log-level`` override.
* Correlation IDs (``run_id``, ``job_id``, ``benchmark``, ``config``)
  travel in a :mod:`contextvars` context — :func:`log_context` pushes
  them, every record stamps the current set, and the executor/service
  boundary re-establishes them on the far side (see
  ``experiments/executor.py`` and ``service/server.py``), so one grep
  for a ``run_id`` follows a benchmark from CLI submit through a pool
  worker to the cached result.

Records are validated in tests and CI by :func:`validate_record`.
"""

from __future__ import annotations

import json
import os
import sys
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: correlation IDs for the current logical operation
_context: ContextVar[Dict[str, object]] = ContextVar("repro_log_context",
                                                     default={})


class _Config:
    __slots__ = ("mode", "level", "stream")

    def __init__(self):
        self.mode = "text"
        self.level = LEVELS["warning"]
        self.stream = None  # None -> sys.stderr at emit time


_config = _Config()


def configure(mode: Optional[str] = None, level: Optional[str] = None,
              stream=None) -> None:
    """Set the process-wide log mode/level.

    Arguments beat environment beats defaults: ``mode`` falls back to
    ``REPRO_LOG`` (text), ``level`` to ``REPRO_LOG_LEVEL`` (warning
    normally, info when ``REPRO_LOG`` is set — opting into structured
    logs means wanting to see them).
    """
    env_mode = os.environ.get("REPRO_LOG", "").strip().lower()
    mode = (mode or env_mode or "text").lower()
    if mode not in ("json", "text"):
        mode = "text"
    env_level = os.environ.get("REPRO_LOG_LEVEL", "").strip().lower()
    level = (level or env_level or ("info" if env_mode else "warning")).lower()
    _config.mode = mode
    _config.level = LEVELS.get(level, LEVELS["warning"])
    _config.stream = stream


def configured_mode() -> str:
    return _config.mode


def configured_level() -> str:
    for name, value in LEVELS.items():
        if value == _config.level:
            return name
    return "warning"


# established from the environment once at import so library use (no CLI
# entry point) still honours REPRO_LOG
configure()


def new_run_id() -> str:
    """A short unique correlation ID for one CLI invocation / job."""
    return uuid.uuid4().hex[:12]


def current_context() -> Dict[str, object]:
    """The correlation IDs in effect (a copy; safe to ship across the
    pool boundary or the service wire)."""
    return dict(_context.get())


@contextmanager
def log_context(**ids: object) -> Iterator[None]:
    """Layer correlation IDs onto the current context for the duration
    of the block.  ``None`` values are dropped so callers can pass
    optional IDs unconditionally."""
    merged = dict(_context.get())
    merged.update({k: v for k, v in ids.items() if v is not None})
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


class Logger:
    """Named logger; emits to the shared stream at the shared level."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: Dict[str, object]) -> None:
        if LEVELS[level] < _config.level:
            return
        record: Dict[str, object] = {"ts": time.time(), "level": level,
                                     "logger": self.name, "event": event}
        record.update(_context.get())
        record.update(fields)
        stream = _config.stream or sys.stderr
        if _config.mode == "json":
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            ts = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
            extras = " ".join(f"{k}={v}" for k, v in record.items()
                              if k not in ("ts", "level", "logger", "event"))
            line = f"{ts} {level.upper():7s} {self.name} {event}"
            if extras:
                line += " " + extras
        try:
            # one write + flush per record: concurrent pool workers share
            # the parent's stderr pipe, and separate text/newline writes
            # (print) interleave into unparseable concatenations
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):
            pass  # closed stream at interpreter shutdown

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> Logger:
    return Logger(name)


_SCALARS = (str, int, float, bool, type(None))


def validate_record(record: object) -> List[str]:
    """Check one parsed log record against the schema; returns a list of
    problems (empty when valid).  Used by tests and ``obs_smoke.py``."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts <= 0:
        problems.append("ts must be a positive number")
    if record.get("level") not in LEVELS:
        problems.append(f"level must be one of {sorted(LEVELS)}")
    for key in ("logger", "event"):
        value = record.get(key)
        if not isinstance(value, str) or not value:
            problems.append(f"{key} must be a non-empty string")
    for key, value in record.items():
        if not isinstance(value, _SCALARS):
            problems.append(f"field {key!r} must be a JSON scalar, "
                            f"got {type(value).__name__}")
    return problems
