"""Execution substrate: a Fortran 77 interpreter with by-reference
argument passing, COMMON-block sequence association, and a simulated
OpenMP execution model used to produce Figure 20's speedups and to
runtime-verify parallelized programs (the paper's "runtime testers").
"""

from repro.runtime.interpreter import ExecutionResult, Interpreter  # noqa: F401
from repro.runtime.machine import AMD_OPTERON, INTEL_MAC, MachineModel  # noqa: F401
from repro.runtime.difftest import backend_equivalence, diff_test  # noqa: F401
from repro.runtime.compiler import CompiledInterpreter  # noqa: F401
from repro.runtime.backend import (BACKENDS, DEFAULT_BACKEND,  # noqa: F401
                                   default_backend, make_interpreter)
