"""Differential correctness testing — the mechanized version of the
paper's "runtime testers" (Section III-D).

A parallelized program is validated by executing it three ways and
comparing *all* observable state (every COMMON block plus the output
log):

1. **serial** — directives ignored (the original semantics);
2. **parallel, in order** — directives honoured: private variables get
   fresh storage per iteration with the last iteration peeled onto the
   original storage;
3. **parallel, permuted** — same, but iterations run in a permuted order
   (any order must produce the same state if the independence claims made
   by the parallelizer are true).

Disagreement means the parallelization (or a user annotation it relied
on) was unsound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.program import Program
from repro.runtime.interpreter import (ORDER_PERMUTED, ORDER_SEQUENTIAL,
                                       ExecutionResult, Interpreter)
from repro.runtime.machine import MachineModel


@dataclass
class DiffTestResult:
    serial: ExecutionResult
    parallel: ExecutionResult
    permuted: ExecutionResult

    @property
    def passed(self) -> bool:
        return (self.serial.memory_equal(self.parallel)
                and self.serial.memory_equal(self.permuted))

    def explain(self) -> str:
        if self.passed:
            return "parallel execution matches serial execution"
        problems: List[str] = []
        for label, result in (("in-order", self.parallel),
                              ("permuted", self.permuted)):
            if not self.serial.memory_equal(result):
                for name, buf in self.serial.commons.items():
                    import numpy as np
                    if not np.allclose(buf, result.commons[name],
                                       rtol=1e-9, atol=1e-12):
                        problems.append(
                            f"{label}: COMMON /{name}/ diverges")
                if self.serial.output != result.output:
                    problems.append(f"{label}: program output diverges")
        return "; ".join(problems) or "unknown divergence"


def diff_test(program: Program,
              machine: Optional[MachineModel] = None,
              inputs: Optional[Sequence[float]] = None) -> DiffTestResult:
    """Run the three-way differential test on ``program``."""
    serial = Interpreter(program, machine=None, honor_directives=False,
                         inputs=list(inputs or [])).run()
    parallel = Interpreter(program, machine=machine, honor_directives=True,
                           iteration_order=ORDER_SEQUENTIAL,
                           inputs=list(inputs or [])).run()
    permuted = Interpreter(program, machine=machine, honor_directives=True,
                           iteration_order=ORDER_PERMUTED,
                           inputs=list(inputs or [])).run()
    return DiffTestResult(serial, parallel, permuted)
