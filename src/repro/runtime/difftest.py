"""Differential correctness testing — the mechanized version of the
paper's "runtime testers" (Section III-D).

A parallelized program is validated by executing it three ways and
comparing *all* observable state (every COMMON block plus the output
log):

1. **serial** — directives ignored (the original semantics);
2. **parallel, in order** — directives honoured: private variables get
   fresh storage per iteration with the last iteration peeled onto the
   original storage;
3. **parallel, permuted** — same, but iterations run in a permuted order
   (any order must produce the same state if the independence claims made
   by the parallelizer are true).

Disagreement means the parallelization (or a user annotation it relied
on) was unsound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.program import Program
from repro.runtime.interpreter import (ORDER_PERMUTED, ORDER_SEQUENTIAL,
                                       ExecutionResult, outputs_equal)
from repro.runtime.machine import INTEL_MAC, MachineModel


def _common_divergences(serial: ExecutionResult, other: ExecutionResult,
                        label: str, rtol: float = 1e-9) -> List[str]:
    """Human-readable divergences, mirroring exactly the comparisons
    :meth:`ExecutionResult.memory_equal` performs (same comparators, same
    tolerances), so the explanation always agrees with ``passed``."""
    problems: List[str] = []
    ours, theirs = set(serial.commons), set(other.commons)
    for name in sorted(ours - theirs):
        problems.append(f"{label}: COMMON /{name}/ missing from "
                        f"parallel result")
    for name in sorted(theirs - ours):
        problems.append(f"{label}: unexpected COMMON /{name}/ in "
                        f"parallel result")
    for name in sorted(ours & theirs):
        buf, other_buf = serial.commons[name], other.commons[name]
        if buf.shape != other_buf.shape:
            problems.append(
                f"{label}: COMMON /{name}/ shape diverges "
                f"({buf.shape} vs {other_buf.shape})")
            continue
        close = np.isclose(buf, other_buf, rtol=rtol, atol=1e-12)
        if not close.all():
            idx = int(np.argmax(~np.ravel(close)))
            problems.append(
                f"{label}: COMMON /{name}/ diverges at element {idx} "
                f"({np.ravel(buf)[idx]!r} vs {np.ravel(other_buf)[idx]!r})")
    if not outputs_equal(serial.output, other.output, rtol):
        problems.append(f"{label}: program output diverges"
                        + _first_output_divergence(serial.output,
                                                   other.output, rtol))
    return problems


def _first_output_divergence(a: List[str], b: List[str],
                             rtol: float) -> str:
    if len(a) != len(b):
        return f" ({len(a)} vs {len(b)} lines)"
    for i, (la, lb) in enumerate(zip(a, b)):
        if not outputs_equal([la], [lb], rtol):
            return f" at line {i} ({la!r} vs {lb!r})"
    return ""


@dataclass
class DiffTestResult:
    serial: ExecutionResult
    parallel: ExecutionResult
    permuted: ExecutionResult

    @property
    def passed(self) -> bool:
        return (self.serial.memory_equal(self.parallel)
                and self.serial.memory_equal(self.permuted))

    def explain(self) -> str:
        if self.passed:
            return "parallel execution matches serial execution"
        problems: List[str] = []
        for label, result in (("in-order", self.parallel),
                              ("permuted", self.permuted)):
            if not self.serial.memory_equal(result):
                problems.extend(_common_divergences(self.serial, result,
                                                    label))
        return "; ".join(problems) or "unknown divergence"


def diff_test(program: Program,
              machine: Optional[MachineModel] = None,
              inputs: Optional[Sequence[float]] = None,
              backend: Optional[str] = None) -> DiffTestResult:
    """Run the three-way differential test on ``program``.

    ``backend`` picks the execution backend (tree-walker or compiled
    closures); ``None`` follows the process default (``REPRO_BACKEND``).
    """
    from repro.runtime.backend import make_interpreter
    serial = make_interpreter(program, backend, machine=None,
                              honor_directives=False,
                              inputs=list(inputs or [])).run()
    parallel = make_interpreter(program, backend, machine=machine,
                                honor_directives=True,
                                iteration_order=ORDER_SEQUENTIAL,
                                inputs=list(inputs or [])).run()
    permuted = make_interpreter(program, backend, machine=machine,
                                honor_directives=True,
                                iteration_order=ORDER_PERMUTED,
                                inputs=list(inputs or [])).run()
    return DiffTestResult(serial, parallel, permuted)


def _run_both(program: Program, inputs, **kwargs):
    from repro.runtime.backend import make_interpreter

    def attempt(backend):
        try:
            return make_interpreter(program, backend, inputs=list(inputs),
                                    **kwargs).run(), None
        except Exception as exc:  # noqa: BLE001 - errors are part of the contract
            return None, f"{type(exc).__name__}: {exc}"

    return attempt("tree"), attempt("compiled")


def backend_equivalence(program: Program,
                        machine: Optional[MachineModel] = None,
                        inputs: Optional[Sequence[float]] = None
                        ) -> Optional[str]:
    """Run ``program`` under both backends in every execution mode and
    return a description of the first divergence, or ``None``.

    Unlike :func:`diff_test` (which compares *modes* under tolerances,
    testing the parallelization), this compares *backends* exactly —
    output strings, cost, steps, COMMON contents bit-for-bit, stop and
    error messages — because the compiled backend claims to be a perfect
    stand-in for the tree-walker.
    """
    inputs = list(inputs or [])
    modes = [("serial", dict(machine=None, honor_directives=False)),
             ("parallel", dict(machine=machine or INTEL_MAC,
                               honor_directives=True,
                               iteration_order=ORDER_SEQUENTIAL)),
             ("permuted", dict(machine=machine or INTEL_MAC,
                               honor_directives=True,
                               iteration_order=ORDER_PERMUTED))]
    for mode, kwargs in modes:
        (tree, terr), (comp, cerr) = _run_both(program, inputs, **kwargs)
        if terr != cerr:
            return (f"{mode}: error divergence (tree: {terr or 'ok'}; "
                    f"compiled: {cerr or 'ok'})")
        if tree is None:
            continue  # same error from both backends
        if tree.output != comp.output:
            detail = f"{len(tree.output)} vs {len(comp.output)} lines"
            for i, (la, lb) in enumerate(zip(tree.output, comp.output)):
                if la != lb:
                    detail = f"line {i}: {la!r} vs {lb!r}"
                    break
            return f"{mode}: output diverges ({detail})"
        if tree.cost != comp.cost:
            return f"{mode}: cost diverges ({tree.cost} vs {comp.cost})"
        if tree.stop_message != comp.stop_message:
            return (f"{mode}: stop message diverges "
                    f"({tree.stop_message!r} vs {comp.stop_message!r})")
        if set(tree.commons) != set(comp.commons):
            return (f"{mode}: COMMON blocks diverge "
                    f"({sorted(tree.commons)} vs {sorted(comp.commons)})")
        for name in tree.commons:
            a, b = tree.commons[name], comp.commons[name]
            # bit-for-bit: tobytes() distinguishes -0.0 from 0.0 and
            # matches NaNs to themselves, unlike array_equal
            if a.shape != b.shape or a.tobytes() != b.tobytes():
                return f"{mode}: COMMON /{name}/ contents diverge"
    return None
