"""Runtime implementations of the supported intrinsics.

Every function receives float operands (the uniform runtime value type)
and returns a float; integer-resulting intrinsics truncate exactly the
way Fortran 77 requires (MOD/INT truncate toward zero).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

from repro.errors import InterpreterError


def _trunc(x: float) -> float:
    return float(int(x))


def _mod(a: float, b: float) -> float:
    if b == 0:
        raise InterpreterError("MOD with zero divisor")
    return float(math.fmod(a, b))


def _sign(a: float, b: float) -> float:
    return abs(a) if b >= 0 else -abs(a)


def _dim(a: float, b: float) -> float:
    return max(a - b, 0.0)


def _nint(x: float) -> float:
    return float(int(x + 0.5)) if x >= 0 else float(int(x - 0.5))


IMPLEMENTATIONS: Dict[str, Callable[..., float]] = {
    "INT": _trunc, "IFIX": _trunc, "IDINT": _trunc,
    "REAL": float, "FLOAT": float, "SNGL": float, "DBLE": float,
    "NINT": _nint, "IDNINT": _nint,
    "AINT": _trunc, "ANINT": _nint,
    "MOD": lambda a, b: float(math.fmod(a, b)),
    "AMOD": lambda a, b: float(math.fmod(a, b)),
    "DMOD": lambda a, b: float(math.fmod(a, b)),
    "ABS": abs, "IABS": lambda x: float(abs(int(x))), "DABS": abs,
    "SIGN": _sign, "ISIGN": _sign, "DSIGN": _sign,
    "DIM": _dim, "IDIM": _dim, "DDIM": _dim,
    "MAX": max, "MAX0": max, "AMAX1": max, "DMAX1": max, "AMAX0": max,
    "MAX1": max,
    "MIN": min, "MIN0": min, "AMIN1": min, "DMIN1": min, "AMIN0": min,
    "MIN1": min,
    "SQRT": math.sqrt, "DSQRT": math.sqrt,
    "EXP": math.exp, "DEXP": math.exp,
    "LOG": math.log, "ALOG": math.log, "DLOG": math.log,
    "LOG10": math.log10, "ALOG10": math.log10, "DLOG10": math.log10,
    "SIN": math.sin, "DSIN": math.sin,
    "COS": math.cos, "DCOS": math.cos,
    "TAN": math.tan, "DTAN": math.tan,
    "ASIN": math.asin, "DASIN": math.asin,
    "ACOS": math.acos, "DACOS": math.acos,
    "ATAN": math.atan, "DATAN": math.atan,
    "ATAN2": math.atan2, "DATAN2": math.atan2,
    "SINH": math.sinh, "DSINH": math.sinh,
    "COSH": math.cosh, "DCOSH": math.cosh,
    "TANH": math.tanh, "DTANH": math.tanh,
    "DPROD": lambda a, b: a * b,
    "LEN": lambda s: float(len(s)) if isinstance(s, str) else 1.0,
}


def call_intrinsic(name: str, args: Sequence[float]) -> float:
    impl = IMPLEMENTATIONS.get(name.upper())
    if impl is None:
        raise InterpreterError(f"intrinsic {name} is not executable")
    try:
        return float(impl(*args))
    except (ValueError, OverflowError) as exc:
        raise InterpreterError(f"{name}{tuple(args)}: {exc}") from exc
