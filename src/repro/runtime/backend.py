"""Backend selection for the runtime: tree-walker vs compiled closures.

Two interchangeable execution backends implement the identical observable
semantics (output, COMMON memory, cost accounting, stop messages, error
messages):

* ``tree`` — :class:`~repro.runtime.interpreter.Interpreter`, the
  reference tree-walker and differential oracle;
* ``compiled`` — :class:`~repro.runtime.compiler.CompiledInterpreter`,
  the lower-once/execute-many closure backend (5-10x faster on the
  experiment workloads).

The process-wide default comes from the ``REPRO_BACKEND`` environment
variable (also settable via the CLI's global ``--backend`` flag); code
paths that construct interpreters go through :func:`make_interpreter` so
one switch covers the experiments, the service, the fuzzer and the CLI.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.program import Program
from repro.runtime.compiler import CompiledInterpreter
from repro.runtime.interpreter import Interpreter

BACKEND_ENV = "REPRO_BACKEND"
BACKENDS = ("tree", "compiled")
DEFAULT_BACKEND = "compiled"

_metrics = None


def _get_metrics():
    global _metrics
    if _metrics is None:
        from repro.obs.metrics import counter
        _metrics = counter("repro_runtime_exec_total",
                           "Interpreter constructions by backend")
    return _metrics


def default_backend() -> str:
    """The backend named by ``REPRO_BACKEND``, or the built-in default."""
    name = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not name:
        return DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={name!r}: unknown backend (choose from "
            f"{', '.join(BACKENDS)})")
    return name


def make_interpreter(program: Program, backend: Optional[str] = None,
                     **kwargs) -> Interpreter:
    """Construct an interpreter for ``program`` on the selected backend.

    ``backend`` overrides the environment; ``kwargs`` are passed through
    to the interpreter constructor unchanged.
    """
    name = backend if backend is not None else default_backend()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r} (choose from "
                         f"{', '.join(BACKENDS)})")
    _get_metrics().inc(backend=name)
    if name == "compiled":
        return CompiledInterpreter(program, **kwargs)
    return Interpreter(program, **kwargs)
