"""Compiled closure backend: lower once, execute many.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` re-visits
every AST node on every execution.  This module compiles each program
unit once into a flat list of Python closures — one instruction per
statement, with jump targets pre-resolved so GOTO and DO dispatch is an
index bump instead of exception unwinding — and, where the subscript
analysis proves an inner loop body affine, branch-free and call-free,
emits a NumPy gather/compute/scatter kernel instead of per-iteration
closures.

The cost-accounting contract of the tree-walker is preserved *exactly*:

* every executed statement charges 1.0 and one step (with the same step
  limit), every visited expression node charges 0.5;
* all charges are multiples of 0.5 with magnitudes far below 2**52, so
  float sums are exact and order-independent — which lets the compiler
  fold the 0.5-per-node charges of a call-free ("strict") subtree into
  one constant without changing any observable cost: the folded total is
  bit-for-bit what the tree-walker accumulates, at every boundary where
  cost is observable (statement granularity, parallel-loop iteration
  deltas, and FORTRAN ``STOP``);
* expressions containing user calls or short-circuit operators keep
  per-node charging closures in tree-walker order, so a ``STOP`` (or a
  cost delta measured around a parallel iteration) sees the identical
  running total.

Because :class:`~repro.runtime.machine.MachineModel.parallel_time` is fed
the identical per-iteration costs, Figure 20 is bit-for-bit identical
under either backend.  Compiled units are cached process-wide per unit
content hash (alongside the parse cache's program hash), so repeated
executions of the same program — the tuning loop, Table II's config
sweep — re-lower nothing.

The tree-walker remains the differential oracle: see
:func:`repro.runtime.difftest.backend_equivalence` and the fuzzer's
``backend-divergence`` property.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FortranStop, InterpreterError
from repro.fortran import ast
from repro.fortran.intrinsics import is_intrinsic
from repro.fortran.symbols import build_symbol_table, expr_type
from repro.program import Program
from repro.runtime.interpreter import (ORDER_PERMUTED, ExecutionResult,
                                       Interpreter, _GotoSignal,
                                       _ReturnSignal)
from repro.runtime.intrinsics import call_intrinsic
from repro.runtime.values import ArrayView, ScalarRef

__all__ = ["CompiledInterpreter", "collect_omp_sites", "compile_cache_info",
           "clear_compile_cache"]


class _CrossGoto(Exception):
    """A GOTO that leaves a parallel-loop body for an enclosing region.

    ``levels`` counts the OmpParallelDo boundaries still to cross;
    ``cell`` holds the target pc in the region that owns the label.
    """

    def __init__(self, levels: int, cell: List[int]):
        self.levels = levels
        self.cell = cell


class _VectorBail(Exception):
    """Raised inside a vector kernel to abandon it and fall back to the
    scalar instruction path (which reproduces tree-walker behaviour
    exactly, including any error it would raise)."""


# ---------------------------------------------------------------------------
# template cache
# ---------------------------------------------------------------------------

_CACHE_LIMIT = 512
_TEMPLATE_CACHE: "OrderedDict[tuple, _UnitTemplate]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}

_metrics = None


def _get_metrics():
    """Lazy metric handles (avoids import cycles at module load)."""
    global _metrics
    if _metrics is None:
        from repro.obs.metrics import counter, histogram
        _metrics = {
            "compile_seconds": histogram(
                "repro_runtime_compile_seconds",
                "Time spent lowering one program unit to closures"),
            "cache_total": counter(
                "repro_runtime_compile_cache_total",
                "Compiled-unit cache lookups by outcome"),
        }
    return _metrics


def _unit_digest(unit: ast.ProgramUnit) -> bytes:
    return hashlib.blake2b(pickle.dumps(unit, protocol=4),
                           digest_size=16).digest()


def _template_for(unit: ast.ProgramUnit, honor: bool) -> "_UnitTemplate":
    key = (_unit_digest(unit), honor)
    tmpl = _TEMPLATE_CACHE.get(key)
    metrics = _get_metrics()
    if tmpl is not None:
        _TEMPLATE_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        metrics["cache_total"].inc(outcome="hit")
        return tmpl
    _CACHE_STATS["misses"] += 1
    metrics["cache_total"].inc(outcome="miss")
    started = time.perf_counter()
    tmpl = _compile_unit(unit, honor)
    metrics["compile_seconds"].observe(time.perf_counter() - started)
    _TEMPLATE_CACHE[key] = tmpl
    while len(_TEMPLATE_CACHE) > _CACHE_LIMIT:
        _TEMPLATE_CACHE.popitem(last=False)
    return tmpl


def compile_cache_info() -> Dict[str, int]:
    return {"entries": len(_TEMPLATE_CACHE), **_CACHE_STATS}


def clear_compile_cache() -> None:
    _TEMPLATE_CACHE.clear()
    _CACHE_STATS["hits"] = _CACHE_STATS["misses"] = 0


def collect_omp_sites(body: Sequence[ast.Stmt]) -> List[ast.OmpParallelDo]:
    """Every OmpParallelDo in ``body``, in the deterministic preorder the
    compiler uses to number directive sites.  Both compilation (on the
    template's structural twin) and per-interpreter binding (on the live
    unit) call this, so site index ``k`` always resolves to the node the
    tuning pass knows by identity."""
    out: List[ast.OmpParallelDo] = []

    def walk(stmts: Sequence[ast.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, ast.OmpParallelDo):
                out.append(s)
                walk(s.loop.body)
            elif isinstance(s, ast.DoLoop):
                walk(s.body)
            elif isinstance(s, ast.IfBlock):
                for _cond, arm in s.arms:
                    walk(arm)
            # TaggedBlock bodies are summaries, never executed or compiled

    walk(body)
    return out


# ---------------------------------------------------------------------------
# shared runtime helpers
# ---------------------------------------------------------------------------

def _stmt_charge(ex: Interpreter, amount: float) -> None:
    ex.cost += amount
    ex.steps += 1
    if ex.steps > ex.max_steps:
        raise InterpreterError("execution step limit exceeded")


def run_region(ex: Interpreter, region: tuple, fr) -> None:
    instrs, n_loops = region
    ls: Optional[list] = [None] * n_loops if n_loops else None
    pc = 0
    n = len(instrs)
    while pc < n:
        pc = instrs[pc](ex, fr, ls)


# ---------------------------------------------------------------------------
# expression compilation
#
# compile_expr returns (pure, charged, count):
#   * pure(ex, fr)    — evaluate without touching ex.cost; None when the
#                       subtree is non-strict (user calls, short-circuit
#                       operators, array regions, or lazily-shaped arrays
#                       whose dimension expressions contain calls);
#   * charged(ex, fr) — evaluate charging exactly what the tree-walker
#                       charges, in the same order;
#   * count           — tree-walker node visits on normal completion.
# ---------------------------------------------------------------------------

def _charged_of(pure, count: int):
    c = 0.5 * count

    def charged(ex, fr):
        ex.cost += c
        return pure(ex, fr)

    return charged


def _const_closure(v):
    def pure(ex, fr):
        return v
    return pure


def _dims_may_call(info) -> bool:
    """True when touching this array can trigger user calls during the
    lazy `_shape` evaluation — those accesses must stay non-strict so the
    calls land at the tree-walker's exact cost position."""
    for d in info.dims or ():
        for e in (d.lower, d.upper):
            if e is None:
                continue
            for node in ast.walk_expr(e):
                if isinstance(node, ast.FuncRef) \
                        and not is_intrinsic(node.name):
                    return True
    return False


class _Ctx:
    """Per-unit compilation context."""

    def __init__(self, unit: ast.ProgramUnit, honor: bool):
        self.unit = unit
        self.table = build_symbol_table(unit)
        self.params = {n for n, i in self.table.variables.items()
                       if i.parameter_value is not None}
        self.honor = honor
        #: scope chain for label resolution: (labels dict, omp depth)
        self.scopes: List[Tuple[Dict[int, List[int]], int]] = []
        self.omp_depth = 0
        self.omp_index = {id(s): i
                          for i, s in enumerate(collect_omp_sites(unit.body))}

    def lazy_call_risk(self, name: str) -> bool:
        info = self.table.variables.get(name.upper())
        return info is not None and info.dims is not None \
            and _dims_may_call(info)


def _resolve(ex, fr, name):
    ref = fr.vars.get(name)
    if ref is None:
        ref = ex._local(name, fr)
    return ref


def compile_expr(e: ast.Expr, cc: _Ctx):
    if isinstance(e, ast.IntLit):
        return _const_closure(float(e.value)), None, 1
    if isinstance(e, ast.RealLit):
        return _const_closure(e.value), None, 1
    if isinstance(e, ast.LogicalLit):
        return _const_closure(1.0 if e.value else 0.0), None, 1
    if isinstance(e, ast.StringLit):
        return _const_closure(e.value), None, 1
    if isinstance(e, ast.Var):
        return _compile_var(e, cc)
    if isinstance(e, ast.ArrayRef):
        return _compile_arrayref(e, cc)
    if isinstance(e, ast.FuncRef):
        return _compile_funcref(e, cc)
    if isinstance(e, ast.UnOp):
        return _compile_unop(e, cc)
    if isinstance(e, ast.BinOp):
        return _compile_binop(e, cc)
    # tree-walker: charge 0.5, then "cannot evaluate <Type>"
    tname = type(e).__name__

    def pure(ex, fr):
        raise InterpreterError(f"cannot evaluate {tname}")
    return pure, None, 1


def _finish(pure, count):
    """Package a strict node: (pure, charged, count)."""
    return pure, None, count


def compiled_parts(triple):
    """(pure_or_None, charged, count) with charged materialized."""
    pure, charged, count = triple
    if charged is None:
        charged = _charged_of(pure, count)
    return pure, charged, count


def _plain_scalar_var(e, cc: _Ctx):
    """Upper-cased name of ``e`` when it is a plain Var whose read can be
    fused inline into an enclosing closure (not a PARAMETER, no lazy-call
    risk, not statically an array), else None.  Fused call sites must
    still fall back to the compiled sub-closure when the runtime binding
    is not a ScalarRef so error paths stay byte-identical."""
    if not isinstance(e, ast.Var):
        return None
    name = e.name.upper()
    if name in cc.params or cc.lazy_call_risk(name):
        return None
    info = cc.table.variables.get(name)
    if info is not None and info.dims is not None:
        return None
    return name


def _compile_var(e: ast.Var, cc: _Ctx):
    name = e.name.upper()
    if name in cc.params:
        def pure(ex, fr):
            return fr.parameters[name]
        return _finish(pure, 1)
    lazy_risk = cc.lazy_call_risk(name)
    info = cc.table.variables.get(name)

    if info is not None and info.dims is None:
        if info.typename == "INTEGER":
            def pure(ex, fr):
                ref = fr.vars.get(name)
                if ref is None:
                    ref = ex._local(name, fr)
                return float(int(ref.buffer[ref.offset]))
        else:
            def pure(ex, fr):
                ref = fr.vars.get(name)
                if ref is None:
                    ref = ex._local(name, fr)
                return float(ref.buffer[ref.offset])
    else:
        def pure(ex, fr):
            ref = fr.vars.get(name)
            if ref is None:
                ref = ex._local(name, fr)
            if ref.__class__ is ScalarRef:
                # inlined ScalarRef.get (hot path)
                if ref.typename == "INTEGER":
                    return float(int(ref.buffer[ref.offset]))
                return float(ref.buffer[ref.offset])
            if isinstance(ref, ArrayView):
                raise InterpreterError(
                    f"array {name} used where a scalar value is needed")
            return ref.get()
    if lazy_risk:
        # charge the node, then resolve (tree order: 0.5 first, then the
        # lazy _shape evaluation with its embedded calls)
        def charged(ex, fr):
            ex.cost += 0.5
            return pure(ex, fr)
        return None, charged, 1
    return _finish(pure, 1)


def _compile_arrayref(e: ast.ArrayRef, cc: _Ctx):
    name = e.name.upper()
    raw = e.name
    lazy_risk = cc.lazy_call_risk(name)
    if any(isinstance(x, ast.RangeExpr) for x in e.subs):
        # region read: charged-only path (generated code only)
        infos = []
        for sub in e.subs:
            if isinstance(sub, ast.RangeExpr):
                lo_c = None if sub.lo is None else \
                    compiled_parts(compile_expr(sub.lo, cc))[1]
                infos.append((True, lo_c))
            else:
                infos.append((False,
                              compiled_parts(compile_expr(sub, cc))[1]))

        def charged(ex, fr):
            ex.cost += 0.5
            view = _resolve(ex, fr, name)
            if isinstance(view, ScalarRef):
                raise InterpreterError(
                    f"{raw} subscripted but declared scalar")
            subs = []
            for k, (is_range, fn) in enumerate(infos):
                if is_range:
                    subs.append(view.lowers[k] if fn is None
                                else int(fn(ex, fr)))
                else:
                    subs.append(int(fn(ex, fr)))
            return view.get(subs)
        return None, charged, 1

    sub_triples = [compile_expr(x, cc) for x in e.subs]
    count = 1 + sum(t[2] for t in sub_triples)
    strict = (not lazy_risk) and all(t[1] is None for t in sub_triples)
    if strict:
        sub_pures = tuple(t[0] for t in sub_triples)
        if len(sub_pures) == 1:
            p0 = sub_pures[0]
            sname = _plain_scalar_var(e.subs[0], cc)

            def pure(ex, fr):
                view = fr.vars.get(name)
                if view is None:
                    view = ex._local(name, fr)
                if isinstance(view, ScalarRef):
                    raise InterpreterError(
                        f"{raw} subscripted but declared scalar")
                # fused subscript read: int() of the raw cell equals
                # int() of the Var closure's float for every typename
                if sname is not None:
                    sref = fr.vars.get(sname)
                    if sref is None:
                        sref = ex._local(sname, fr)
                    if sref.__class__ is ScalarRef:
                        sub = int(sref.buffer[sref.offset])
                    else:
                        sub = int(p0(ex, fr))
                else:
                    sub = int(p0(ex, fr))
                # inlined rank-1 flat_offset + get (hot path); strides[0]
                # is always 1 and offset/rel are non-negative, so only the
                # upper storage bound needs checking
                if len(view.extents) != 1:
                    return view.get((sub,))
                lower = view.lowers[0]
                rel = sub - lower
                ext = view.extents[0]
                if rel < 0 or (ext is not None and rel >= ext):
                    raise InterpreterError(
                        f"subscript {sub} out of bounds for dimension of "
                        f"{view.name} ({lower}:{lower + (ext or 0) - 1})")
                off = view.offset + rel
                buf = view.buffer
                if off >= len(buf):
                    raise InterpreterError(
                        f"reference beyond storage of {view.name}")
                if view.typename == "INTEGER":
                    return float(int(buf[off]))
                return float(buf[off])
        else:
            sub_specs = tuple((_plain_scalar_var(x, cc), p)
                              for x, p in zip(e.subs, sub_pures))

            def pure(ex, fr):
                view = fr.vars.get(name)
                if view is None:
                    view = ex._local(name, fr)
                if isinstance(view, ScalarRef):
                    raise InterpreterError(
                        f"{raw} subscripted but declared scalar")
                subs = []
                for sn, p in sub_specs:
                    if sn is not None:
                        sref = fr.vars.get(sn)
                        if sref is None:
                            sref = ex._local(sn, fr)
                        if sref.__class__ is ScalarRef:
                            subs.append(int(sref.buffer[sref.offset]))
                            continue
                    subs.append(int(p(ex, fr)))
                extents = view.extents
                if len(extents) != len(subs):
                    return view.get(subs)  # exact rank-mismatch error
                # inlined flat_offset + get (hot path)
                off = view.offset
                for sub, lower, ext, stride in zip(subs, view.lowers,
                                                   extents, view.strides):
                    rel = sub - lower
                    if rel < 0 or (ext is not None and rel >= ext):
                        raise InterpreterError(
                            f"subscript {sub} out of bounds for dimension "
                            f"of {view.name} "
                            f"({lower}:{lower + (ext or 0) - 1})")
                    off += rel * stride
                buf = view.buffer
                if off >= len(buf):
                    raise InterpreterError(
                        f"reference beyond storage of {view.name}")
                if view.typename == "INTEGER":
                    return float(int(buf[off]))
                return float(buf[off])
        return _finish(pure, count)

    sub_chargeds = tuple(compiled_parts(t)[1] for t in sub_triples)

    def charged(ex, fr):
        ex.cost += 0.5
        view = _resolve(ex, fr, name)
        if isinstance(view, ScalarRef):
            raise InterpreterError(f"{raw} subscripted but declared scalar")
        return view.get([int(c(ex, fr)) for c in sub_chargeds])
    return None, charged, count


def _compile_funcref(e: ast.FuncRef, cc: _Ctx):
    if is_intrinsic(e.name):
        iname = e.name
        arg_triples = [compile_expr(a, cc) for a in e.args]
        count = 1 + sum(t[2] for t in arg_triples)
        if all(t[1] is None for t in arg_triples):
            arg_pures = tuple(t[0] for t in arg_triples)

            def pure(ex, fr):
                return call_intrinsic(iname,
                                      [p(ex, fr) for p in arg_pures])
            return _finish(pure, count)
        arg_chargeds = tuple(compiled_parts(t)[1] for t in arg_triples)

        def charged(ex, fr):
            ex.cost += 0.5
            return call_intrinsic(iname,
                                  [c(ex, fr) for c in arg_chargeds])
        return None, charged, count

    fname, fargs = e.name, e.args

    def charged(ex, fr):
        ex.cost += 0.5
        result = ex._call(fname, fargs, fr)
        if result is None:
            raise InterpreterError(
                f"{fname} is a subroutine, not a function")
        return result
    return None, charged, 1


def _compile_unop(e: ast.UnOp, cc: _Ctx):
    op = e.op
    triple = compile_expr(e.operand, cc)
    pure, charged, count = triple
    total = count + 1
    if op == "-":
        fn = lambda v: -v               # noqa: E731
    elif op == "+":
        fn = lambda v: v                # noqa: E731
    elif op == ".NOT.":
        fn = lambda v: 0.0 if v != 0.0 else 1.0  # noqa: E731
    else:
        def fn(v):
            raise InterpreterError(f"unknown unary {op}")
    if charged is None:
        def p(ex, fr):
            return fn(pure(ex, fr))
        return _finish(p, total)

    def c(ex, fr):
        ex.cost += 0.5
        return fn(charged(ex, fr))
    return None, c, total


def _op_kernel(e: ast.BinOp, cc: _Ctx):
    """Value combiner for a non-short-circuit binary op, replicating the
    tree-walker's semantics (including the deferred INTEGER-division type
    query and its SemanticError timing)."""
    op = e.op
    if op == "+":
        return lambda a, b: a + b
    if op == "-":
        return lambda a, b: a - b
    if op == "*":
        return lambda a, b: a * b
    if op == "/":
        left, right = e.left, e.right
        try:
            known = (expr_type(left, cc.table) == "INTEGER"
                     and expr_type(right, cc.table) == "INTEGER")
        except Exception:
            known = None

        if known is None:
            def kern(a, b, fr):
                if b == 0:
                    raise InterpreterError("division by zero")
                is_int = (expr_type(left, fr.table) == "INTEGER"
                          and expr_type(right, fr.table) == "INTEGER")
                if is_int:
                    ia, ib = int(a), int(b)
                    q = abs(ia) // abs(ib)
                    return float(q if (ia < 0) == (ib < 0) else -q)
                return a / b
            kern.needs_frame = True
            return kern
        if known:
            def kern(a, b):
                if b == 0:
                    raise InterpreterError("division by zero")
                ia, ib = int(a), int(b)
                q = abs(ia) // abs(ib)
                return float(q if (ia < 0) == (ib < 0) else -q)
            return kern

        def kern(a, b):
            if b == 0:
                raise InterpreterError("division by zero")
            return a / b
        return kern
    if op == "**":
        def kern(a, b):
            if b == int(b):
                return float(a ** int(b))
            if a < 0:
                raise InterpreterError("negative base with real exponent")
            return float(a ** b)
        return kern
    if op == "==":
        return lambda a, b: 1.0 if a == b else 0.0
    if op == "/=":
        return lambda a, b: 1.0 if a != b else 0.0
    if op == "<":
        return lambda a, b: 1.0 if a < b else 0.0
    if op == "<=":
        return lambda a, b: 1.0 if a <= b else 0.0
    if op == ">":
        return lambda a, b: 1.0 if a > b else 0.0
    if op == ">=":
        return lambda a, b: 1.0 if a >= b else 0.0
    if op == ".EQV.":
        return lambda a, b: 1.0 if (a != 0.0) == (b != 0.0) else 0.0
    if op == ".NEQV.":
        return lambda a, b: 1.0 if (a != 0.0) != (b != 0.0) else 0.0
    if op == "//":
        return lambda a, b: str(a) + str(b)

    def kern(a, b):
        raise InterpreterError(f"unknown operator {op}")
    return kern


def _compile_binop(e: ast.BinOp, cc: _Ctx):
    op = e.op
    if op in (".AND.", ".OR."):
        lc = compiled_parts(compile_expr(e.left, cc))[1]
        rc = compiled_parts(compile_expr(e.right, cc))[1]
        if op == ".AND.":
            def charged(ex, fr):
                ex.cost += 0.5
                return 1.0 if (lc(ex, fr) != 0.0
                               and rc(ex, fr) != 0.0) else 0.0
        else:
            def charged(ex, fr):
                ex.cost += 0.5
                return 1.0 if (lc(ex, fr) != 0.0
                               or rc(ex, fr) != 0.0) else 0.0
        return None, charged, 1
    lt = compile_expr(e.left, cc)
    rt = compile_expr(e.right, cc)
    kern = _op_kernel(e, cc)
    needs_frame = getattr(kern, "needs_frame", False)
    total = 1 + lt[2] + rt[2]
    if lt[1] is None and rt[1] is None:
        lp, rp = lt[0], rt[0]
        if needs_frame:
            def pure(ex, fr):
                return kern(lp(ex, fr), rp(ex, fr), fr)
        else:
            lname = _plain_scalar_var(e.left, cc)
            rname = _plain_scalar_var(e.right, cc)
            # 1=+, 2=-, 3=* are folded inline (their kernels are plain
            # lambdas); anything else dispatches through kern
            opc = {"+": 1, "-": 2, "*": 3}.get(op, 0)

            def pure(ex, fr):
                # fused operand reads (float() keeps Python-float
                # arithmetic semantics, e.g. OverflowError from **)
                if lname is not None:
                    ref = fr.vars.get(lname)
                    if ref is None:
                        ref = ex._local(lname, fr)
                    if ref.__class__ is ScalarRef:
                        if ref.typename == "INTEGER":
                            a = float(int(ref.buffer[ref.offset]))
                        else:
                            a = float(ref.buffer[ref.offset])
                    else:
                        a = lp(ex, fr)
                else:
                    a = lp(ex, fr)
                if rname is not None:
                    ref = fr.vars.get(rname)
                    if ref is None:
                        ref = ex._local(rname, fr)
                    if ref.__class__ is ScalarRef:
                        if ref.typename == "INTEGER":
                            b = float(int(ref.buffer[ref.offset]))
                        else:
                            b = float(ref.buffer[ref.offset])
                    else:
                        b = rp(ex, fr)
                else:
                    b = rp(ex, fr)
                if opc == 1:
                    return a + b
                if opc == 2:
                    return a - b
                if opc == 3:
                    return a * b
                return kern(a, b)
        return _finish(pure, total)
    lcg = compiled_parts(lt)[1]
    rcg = compiled_parts(rt)[1]
    if needs_frame:
        def charged(ex, fr):
            ex.cost += 0.5
            a = lcg(ex, fr)
            b = rcg(ex, fr)
            return kern(a, b, fr)
    else:
        def charged(ex, fr):
            ex.cost += 0.5
            a = lcg(ex, fr)
            b = rcg(ex, fr)
            return kern(a, b)
    return None, charged, total


# ---------------------------------------------------------------------------
# vectorization: affine, branch-free, call-free inner loops
#
# An eligible DO body (all assignments, array targets, affine subscripts,
# whitelisted operators/intrinsics) lowers to one gather/compute/scatter
# kernel.  The kernel is *speculative*: a deferred-scatter design computes
# everything into temporaries and validates every hazard (bounds, aliasing,
# division by zero, non-integral subscripts, ...) before mutating any
# state; any doubt raises _VectorBail and the scalar instruction path
# replays the loop with exact tree-walker semantics, including whatever
# error the tree-walker would have raised, at the same program state.
# The committed charge is trips * (what the tree-walker charges per
# iteration) — bit-exact, because all charges are multiples of 0.5.
# ---------------------------------------------------------------------------

_VEC_MIN_TRIPS = 4
_VEC_ABS = {"ABS", "DABS"}
_VEC_SQRT = {"SQRT", "DSQRT"}
_VEC_MAX = {"MAX", "AMAX1", "DMAX1"}
_VEC_MIN = {"MIN", "AMIN1", "DMIN1"}
_TWO53 = float(2 ** 53)


class _KernelCtx:
    __slots__ = ("ex", "fr", "trips", "start", "istep", "arange", "vals",
                 "temps", "reads", "writes", "pending")

    def __init__(self, ex, fr, trips, start, step):
        self.ex = ex
        self.fr = fr
        self.trips = trips
        self.istep = int(step)
        self.arange = np.arange(trips)
        self.vals = start + step * self.arange
        self.temps: Dict[tuple, object] = {}
        self.reads: List[tuple] = []
        self.writes: List[tuple] = []
        self.pending: List[tuple] = []


def _node_count(e: ast.Expr) -> int:
    return sum(1 for _ in ast.walk_expr(e))


def _vec_sub_spec(sub: ast.Expr, var: str, cc: _Ctx, vst: dict):
    """Compile one subscript: (pure closure, coeff wrt loop var, names of
    the scalars it reads), or None."""
    from repro.analysis.affine import extract
    sub_names = []
    has_var = False
    for n in ast.walk_expr(sub):
        if isinstance(n, (ast.IntLit, ast.RealLit)):
            continue
        if isinstance(n, ast.Var):
            nm = n.name.upper()
            if nm == var:
                has_var = True
            elif nm not in cc.params:
                if nm in vst["scalar_targets"]:
                    # a subscript reading a scalar the loop writes is not
                    # loop-invariant; leave it to the scalar path
                    return None
                vst["names"].add(nm)
                sub_names.append(nm)
            continue
        if isinstance(n, ast.UnOp) and n.op in ("-", "+"):
            continue
        if isinstance(n, ast.BinOp) and n.op in ("+", "-", "*"):
            continue
        return None
    form = extract(sub, [var])
    if form is not None:
        coeff = form.coeff(var)
    elif not has_var:
        coeff = 0  # loop-invariant: affine with slope zero
    else:
        return None
    pure, charged, _count = compile_expr(sub, cc)
    if pure is None:
        return None
    return pure, coeff, tuple(sub_names)


def _vec_access_factory(e: ast.ArrayRef, var: str, cc: _Ctx, vst: dict):
    """Compile an array access into a runtime resolver returning
    (view, off0, B, lo, hi) for the current frame, or None if the
    subscripts are not affine/simple.  All validation failures at runtime
    raise _VectorBail (never mutating state)."""
    name = e.name.upper()
    if name in vst["scalar_targets"]:
        return None
    if any(isinstance(x, ast.RangeExpr) for x in e.subs):
        return None
    specs = []
    for sub in e.subs:
        spec = _vec_sub_spec(sub, var, cc, vst)
        if spec is None:
            return None
        specs.append(spec)
    vst["names"].add(name)
    specs = tuple(specs)

    def resolve(kc):
        frv = kc.fr.vars
        view = frv.get(name)
        if not isinstance(view, ArrayView):
            raise _VectorBail
        if len(specs) != view.rank:
            raise _VectorBail
        off0 = view.offset
        stride_total = 0
        trips = kc.trips
        for (sp, c, snames), lower, ext, stride in zip(specs, view.lowers,
                                                       view.extents,
                                                       view.strides):
            for nm in snames:
                # subscripts are evaluated once and assumed loop-invariant:
                # record the cells they read so any write aliasing them
                # (sequence-associated COMMON storage) bails the kernel
                ref = frv.get(nm)
                if not isinstance(ref, ScalarRef):
                    raise _VectorBail
                kc.reads.append((ref.buffer, ref.offset, ref.offset, None))
            base = float(sp(kc.ex, kc.fr))
            if base != int(base):
                raise _VectorBail
            b0 = int(base)
            dstep = c * kc.istep
            if dstep != int(dstep):
                # int() truncation per iteration would break affinity
                raise _VectorBail
            dstep = int(dstep)
            rel0 = b0 - lower
            rel1 = b0 + (trips - 1) * dstep - lower
            if rel0 < 0 or rel1 < 0:
                raise _VectorBail
            if ext is not None and (rel0 >= ext or rel1 >= ext):
                raise _VectorBail
            off0 += rel0 * stride
            stride_total += dstep * stride
        buflen = len(view.buffer)
        off_last = off0 + (trips - 1) * stride_total
        if off0 < 0 or off0 >= buflen or off_last < 0 or off_last >= buflen:
            raise _VectorBail
        lo = off0 if stride_total >= 0 else off_last
        hi = off_last if stride_total >= 0 else off0
        return view, off0, stride_total, lo, hi

    return resolve, (name, repr(e.subs))


def _vec_value(e: ast.Expr, var: str, cc: _Ctx, vst: dict):
    """Compile a loop-body value expression to vfn(kc) -> vector|scalar,
    or None when ineligible."""
    if isinstance(e, ast.IntLit):
        v = float(e.value)
        return lambda kc: v
    if isinstance(e, ast.RealLit):
        v = e.value
        return lambda kc: v
    if isinstance(e, ast.LogicalLit):
        v = 1.0 if e.value else 0.0
        return lambda kc: v
    if isinstance(e, ast.Var):
        name = e.name.upper()
        if name in cc.params:
            return lambda kc: kc.fr.parameters[name]
        if name == var:
            return lambda kc: kc.vals
        if name in vst["scalar_targets"]:
            if name not in vst["written"]:
                # read before the loop's own write: a cross-iteration
                # recurrence the deferred-scatter kernel cannot express
                return None
            key = (name, None)
            return lambda kc: kc.temps[key]
        vst["names"].add(name)

        def vfn(kc):
            ref = kc.fr.vars.get(name)
            if not isinstance(ref, ScalarRef):
                raise _VectorBail
            kc.reads.append((ref.buffer, ref.offset, ref.offset, None))
            return ref.get()
        return vfn
    if isinstance(e, ast.ArrayRef):
        acc = _vec_access_factory(e, var, cc, vst)
        if acc is None:
            return None
        resolve, key = acc

        def vfn(kc):
            tmp = kc.temps.get(key)
            if tmp is not None:
                return tmp
            view, off0, B, lo, hi = resolve(kc)
            kc.reads.append((view.buffer, lo, hi, key))
            if B == 0:
                v = float(view.buffer[off0])
                if view.typename == "INTEGER":
                    v = float(int(v))
                return v
            g = view.buffer[off0 + B * kc.arange]
            if view.typename == "INTEGER":
                if not np.isfinite(g).all():
                    raise _VectorBail
                g = np.trunc(g) + 0.0
            return g
        return vfn
    if isinstance(e, ast.UnOp):
        if e.op not in ("-", "+"):
            return None
        child = _vec_value(e.operand, var, cc, vst)
        if child is None:
            return None
        if e.op == "+":
            return child
        return lambda kc: -child(kc)
    if isinstance(e, ast.BinOp):
        if e.op not in ("+", "-", "*", "/"):
            return None
        if e.op == "/":
            try:
                if expr_type(e.left, cc.table) == "INTEGER" \
                        and expr_type(e.right, cc.table) == "INTEGER":
                    return None
            except Exception:
                return None
        left = _vec_value(e.left, var, cc, vst)
        right = _vec_value(e.right, var, cc, vst)
        if left is None or right is None:
            return None
        op = e.op
        if op == "+":
            return lambda kc: left(kc) + right(kc)
        if op == "-":
            return lambda kc: left(kc) - right(kc)
        if op == "*":
            return lambda kc: left(kc) * right(kc)

        def vdiv(kc):
            a = left(kc)
            b = right(kc)
            if np.any(b == 0.0):
                raise _VectorBail
            return a / b
        return vdiv
    if isinstance(e, ast.FuncRef):
        fname = e.name.upper()
        args = [_vec_value(a, var, cc, vst) for a in e.args]
        if any(a is None for a in args):
            return None
        if fname in _VEC_ABS and len(args) == 1:
            a0 = args[0]
            return lambda kc: np.abs(a0(kc))
        if fname in _VEC_SQRT and len(args) == 1:
            a0 = args[0]

            def vsqrt(kc):
                x = a0(kc)
                if np.any(x < 0.0):
                    raise _VectorBail
                return np.sqrt(x)
            return vsqrt
        if fname in _VEC_MAX and len(args) >= 2:
            def vmax(kc, fns=tuple(args)):
                m = fns[0](kc)
                for fn in fns[1:]:
                    b = fn(kc)
                    # ties and NaN keep the earlier operand — exactly
                    # Python's max(), which the tree-walker uses
                    m = np.where(b > m, b, m)
                return m
            return vmax
        if fname in _VEC_MIN and len(args) >= 2:
            def vmin(kc, fns=tuple(args)):
                m = fns[0](kc)
                for fn in fns[1:]:
                    b = fn(kc)
                    m = np.where(b < m, b, m)
                return m
            return vmin
        return None
    return None


def _match_reduction(e: ast.Expr, tname: str, occurs: int):
    """Match ``S = S + t`` / ``S = t + S`` / ``S = S - t`` / ``S = S * t``
    / ``S = t * S`` and return (accumulating ufunc, the t expression).
    ``+`` and ``*`` are bitwise-commutative for non-NaN doubles, so both
    operand orders map onto ufunc.accumulate's carry-op-element order."""
    if occurs != 1 or not isinstance(e, ast.BinOp):
        return None

    def is_t(x):
        return isinstance(x, ast.Var) and x.name.upper() == tname

    if e.op == "+":
        if is_t(e.left):
            return np.add, e.right
        if is_t(e.right):
            return np.add, e.left
    elif e.op == "-":
        if is_t(e.left):
            return np.subtract, e.right
    elif e.op == "*":
        if is_t(e.left):
            return np.multiply, e.right
        if is_t(e.right):
            return np.multiply, e.left
    return None


def _try_vectorize(s: ast.DoLoop, cc: _Ctx):
    """Build a speculative vector kernel for ``s`` or return None."""
    var = s.var.upper()
    if var in cc.params or not s.body:
        return None
    scalar_targets = set()
    for stmt in s.body:
        if isinstance(stmt, ast.Continue):
            continue
        if not isinstance(stmt, ast.Assign):
            return None
        if isinstance(stmt.target, ast.Var):
            t = stmt.target.name.upper()
            if t == var or t in cc.params:
                return None
            scalar_targets.add(t)
        elif not isinstance(stmt.target, ast.ArrayRef):
            return None
    vst = {"names": set(), "scalar_targets": frozenset(scalar_targets),
           "written": set()}
    reduced: set = set()
    plans = []
    per_iter = 0.0
    for stmt in s.body:
        if isinstance(stmt, ast.Continue):
            per_iter += 1.0
            continue
        if isinstance(stmt.target, ast.Var):
            t = stmt.target.name.upper()
            if t in reduced:
                # a later write to a reduced scalar would invalidate the
                # accumulate's carry chain (next iteration reads *this*
                # statement's result, not the reduction's)
                return None
            vst["names"].add(t)
            occurs = sum(1 for n in ast.walk_expr(stmt.value)
                         if isinstance(n, ast.Var) and n.name.upper() == t)
            if occurs and t not in vst["written"]:
                # S = S op <t>: a sequential reduction.  ufunc.accumulate
                # performs the identical left-to-right float operations
                # (verified by the backend-equivalence suite), so the
                # final value and every prefix are bit-exact.
                red = _match_reduction(stmt.value, t, occurs)
                if red is None:
                    return None
                ufunc, rest = red
                rest_fn = _vec_value(rest, var, cc, vst)
                if rest_fn is None:
                    return None
                per_iter += 1.0 + 0.5 * _node_count(stmt.value)
                plans.append(("red", rest_fn, t, ufunc))
                vst["written"].add(t)
                reduced.add(t)
                continue
            value_fn = _vec_value(stmt.value, var, cc, vst)
            if value_fn is None:
                return None
            per_iter += 1.0 + 0.5 * _node_count(stmt.value)
            plans.append(("sca", value_fn, t, None))
            vst["written"].add(t)
            continue
        value_fn = _vec_value(stmt.value, var, cc, vst)
        if value_fn is None:
            return None
        acc = _vec_access_factory(stmt.target, var, cc, vst)
        if acc is None:
            return None
        resolve, key = acc
        per_iter += 1.0 + 0.5 * (_node_count(stmt.value)
                                 + sum(_node_count(x)
                                       for x in stmt.target.subs))
        plans.append(("arr", value_fn, resolve, key))
    if not plans:
        return None
    n_stmts = len(s.body)
    all_names = tuple(sorted(vst["names"]))

    def kernel(ex, fr, var_ref, trips, start, step):
        fstart = float(start)
        fstep = float(step)
        if not (math.isfinite(fstart) and math.isfinite(fstep)):
            return False
        if fstart != int(fstart) or fstep != int(fstep):
            return False
        if abs(fstart) + abs(fstep) * trips >= _TWO53:
            return False
        if ex.steps + trips * n_stmts > ex.max_steps:
            return False
        frv = fr.vars
        for nm in all_names:
            if nm not in frv:
                return False
        try:
            var_ref.set(fstart)
            kc = _KernelCtx(ex, fr, trips, fstart, fstep)
            kc.writes.append((var_ref.buffer, var_ref.offset,
                              var_ref.offset, ()))
            with np.errstate(all="ignore"):
                for kind, value_fn, where, key in plans:
                    val = value_fn(kc)
                    if kind == "red":
                        ref = frv.get(where)
                        if not isinstance(ref, ScalarRef):
                            return False
                        if ref.typename == "INTEGER":
                            # per-iteration truncation feeds back into the
                            # accumulation; leave it to the scalar path
                            return False
                        skey = (where, None)
                        kc.reads.append((ref.buffer, ref.offset,
                                         ref.offset, skey))
                        arr = np.empty(trips + 1, dtype=np.float64)
                        arr[0] = ref.get()
                        arr[1:] = val
                        acc = key.accumulate(arr)
                        kc.writes.append((ref.buffer, ref.offset,
                                          ref.offset, skey))
                        kc.pending.append((ref.buffer, ref.offset,
                                           float(acc[-1])))
                        kc.temps[skey] = acc[1:]
                        continue
                    if kind == "sca":
                        ref = frv.get(where)
                        if not isinstance(ref, ScalarRef):
                            return False
                        if ref.typename == "INTEGER":
                            if isinstance(val, np.ndarray):
                                if not np.all(np.isfinite(val)):
                                    return False
                                val = np.trunc(val) + 0.0
                            else:
                                if not math.isfinite(val):
                                    return False
                                val = float(int(val))
                        skey = (where, None)
                        kc.writes.append((ref.buffer, ref.offset,
                                          ref.offset, skey))
                        final = float(val[-1]) \
                            if isinstance(val, np.ndarray) else float(val)
                        kc.pending.append((ref.buffer, ref.offset, final))
                        kc.temps[skey] = val
                        continue
                    view, off0, B, lo, hi = where(kc)
                    if B == 0:
                        return False
                    if view.typename == "INTEGER":
                        if not np.all(np.isfinite(val)):
                            return False
                        val = np.trunc(val) + 0.0
                    kc.writes.append((view.buffer, lo, hi, key))
                    kc.pending.append((view.buffer,
                                       off0 + B * kc.arange, val))
                    kc.temps[key] = val
            for wbuf, wlo, whi, wkey in kc.writes:
                for rbuf, rlo, rhi, rkey in kc.reads:
                    if rkey != wkey and rbuf is wbuf \
                            and rlo <= whi and wlo <= rhi:
                        return False
                for obuf, olo, ohi, okey in kc.writes:
                    if okey != wkey and obuf is wbuf \
                            and olo <= whi and wlo <= ohi:
                        return False
        except _VectorBail:
            return False
        except (ValueError, OverflowError):
            return False
        for buf, idx, val in kc.pending:
            buf[idx] = val
        ex.cost += trips * per_iter
        ex.steps += trips * n_stmts
        var_ref.set(fstart + trips * fstep)
        return True

    return kernel


# ---------------------------------------------------------------------------
# statement compilation
# ---------------------------------------------------------------------------

class _Region:
    """One flat instruction list.  The unit body is one region; every
    honored OmpParallelDo body is a sub-region (the directive instruction
    drives its iterations)."""

    __slots__ = ("instrs", "n_loops")

    def __init__(self):
        self.instrs: List[Callable] = []
        self.n_loops = 0

    def packed(self) -> tuple:
        return (self.instrs, self.n_loops)


class _UnitTemplate:
    __slots__ = ("region",)

    def __init__(self, region: tuple):
        self.region = region


def _seq_fold(triples):
    """Fold the longest strict prefix of an evaluation sequence into one
    upfront constant; later expressions keep their charging closures (a
    strict one folds at its own evaluation point)."""
    fold = 0.0
    evals = []
    prefix = True
    for triple in triples:
        pure, charged, count = triple
        if prefix and charged is None:
            fold += 0.5 * count
            evals.append(pure)
        else:
            prefix = False
            evals.append(compiled_parts(triple)[1])
    return fold, tuple(evals)


def _compile_unit(unit: ast.ProgramUnit, honor: bool) -> _UnitTemplate:
    cc = _Ctx(unit, honor)
    reg = _Region()
    _compile_block(cc, reg, unit.body)
    return _UnitTemplate(reg.packed())


def _compile_block(cc: _Ctx, reg: _Region, body: Sequence[ast.Stmt]) -> None:
    labels: Dict[int, List[int]] = {}
    for s in body:
        lab = getattr(s, "label", None)
        if lab:
            labels[lab] = [None]
    cc.scopes.append((labels, cc.omp_depth))
    for s in body:
        lab = getattr(s, "label", None)
        if lab:
            # duplicate labels: the last occurrence wins, like the
            # tree-walker's labels dict comprehension
            labels[lab][0] = len(reg.instrs)
        _emit_stmt(cc, reg, s)
    cc.scopes.pop()


def _emit_stmt(cc: _Ctx, reg: _Region, s: ast.Stmt) -> None:
    instrs = reg.instrs
    if isinstance(s, ast.Assign):
        _emit_assign(cc, reg, s)
    elif isinstance(s, ast.IfBlock):
        _emit_if(cc, reg, s)
    elif isinstance(s, ast.DoLoop):
        _emit_do(cc, reg, s, omp_charge=False)
    elif isinstance(s, ast.OmpParallelDo):
        if cc.honor:
            _emit_omp(cc, reg, s)
        else:
            # directives ignored: the plain serial loop, charged at the
            # directive statement exactly like _exec_omp -> _exec_do
            _emit_do(cc, reg, s.loop, omp_charge=False)
    elif isinstance(s, ast.CallStmt):
        cname, cargs = s.name, s.args
        nxt = len(instrs) + 1

        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            ex._call(cname, cargs, fr)
            return nxt
        instrs.append(instr)
    elif isinstance(s, ast.Goto):
        _emit_goto(cc, reg, s)
    elif isinstance(s, ast.ComputedGoto):
        _emit_computed_goto(cc, reg, s)
    elif isinstance(s, ast.LabelAssign):
        _emit_label_assign(cc, reg, s)
    elif isinstance(s, ast.AssignedGoto):
        _emit_assigned_goto(cc, reg, s)
    elif isinstance(s, ast.Continue):
        nxt = len(instrs) + 1

        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            return nxt
        instrs.append(instr)
    elif isinstance(s, ast.Return):
        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise _ReturnSignal()
        instrs.append(instr)
    elif isinstance(s, ast.Stop):
        msg = s.message or ""

        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise FortranStop(msg)
        instrs.append(instr)
    elif isinstance(s, ast.IoStmt):
        _emit_io(cc, reg, s)
    elif isinstance(s, ast.TaggedBlock):
        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise InterpreterError(
                "annotation-inlined code is not executable (it is a "
                "summary, not an implementation); reverse-inline first")
        instrs.append(instr)
    else:
        tname = type(s).__name__

        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise InterpreterError(f"cannot execute {tname}")
        instrs.append(instr)


def _emit_assign(cc: _Ctx, reg: _Region, s: ast.Assign) -> None:
    instrs = reg.instrs
    nxt = len(instrs) + 1
    vtriple = compile_expr(s.value, cc)
    vpure, vcharged, vcount = vtriple
    if vcharged is None:
        amt = 1.0 + 0.5 * vcount
        veval = vpure
    else:
        amt = 1.0
        veval = vcharged
    target = s.target
    if isinstance(target, ast.Var):
        tname = target.name.upper()

        def instr(ex, fr, ls):
            _stmt_charge(ex, amt)
            v = veval(ex, fr)
            ref = fr.vars.get(tname)
            if ref is None:
                ref = ex._local(tname, fr)
            if ref.__class__ is ScalarRef:
                # inlined ScalarRef.set (hot path); float(v) first, then
                # the INTEGER truncation — the tree-walker's error order
                value = float(v)
                if ref.typename == "INTEGER":
                    value = float(int(value))
                ref.buffer[ref.offset] = value
            elif isinstance(ref, ArrayView):
                ref.fill(float(v))
            else:
                ref.set(float(v))
            return nxt
        instrs.append(instr)
        return
    if isinstance(target, ast.ArrayRef):
        tname = target.name.upper()
        raw = target.name
        if any(isinstance(x, ast.RangeExpr) for x in target.subs):
            subs_ast = target.subs

            def instr(ex, fr, ls):
                _stmt_charge(ex, amt)
                v = veval(ex, fr)
                view = _resolve(ex, fr, tname)
                if isinstance(view, ScalarRef):
                    raise InterpreterError(
                        f"{raw} subscripted but declared scalar")
                ex._store_region(view, subs_ast, float(v), fr)
                return nxt
            instrs.append(instr)
            return
        # subscripts charge after the (possibly lazily shaped) view
        # resolves, preserving tree-walker charge order
        sub_triples = [compile_expr(x, cc) for x in target.subs]
        sub_evals = tuple(compiled_parts(t)[1] for t in sub_triples)
        if len(sub_evals) == 1:
            s0 = sub_evals[0]
            t0 = sub_triples[0]
            sname = _plain_scalar_var(target.subs[0], cc) \
                if t0[1] is None and t0[2] == 1 else None

            def instr(ex, fr, ls):
                _stmt_charge(ex, amt)
                v = veval(ex, fr)
                view = fr.vars.get(tname)
                if view is None:
                    view = ex._local(tname, fr)
                if isinstance(view, ScalarRef):
                    raise InterpreterError(
                        f"{raw} subscripted but declared scalar")
                if sname is not None:
                    # fused charged subscript: 0.5 for the Var node, then
                    # the raw cell read
                    ex.cost += 0.5
                    sref = fr.vars.get(sname)
                    if sref is None:
                        sref = ex._local(sname, fr)
                    if sref.__class__ is ScalarRef:
                        sub = int(sref.buffer[sref.offset])
                    else:
                        sub = int(t0[0](ex, fr))
                else:
                    sub = int(s0(ex, fr))
                if len(view.extents) != 1:
                    view.set((sub,), float(v))
                    return nxt
                # inlined rank-1 set (hot path); the tree-walker's order
                # is float(v) -> INTEGER truncation -> bounds checks
                value = float(v)
                if view.typename == "INTEGER":
                    value = float(int(value))
                lower = view.lowers[0]
                rel = sub - lower
                ext = view.extents[0]
                if rel < 0 or (ext is not None and rel >= ext):
                    raise InterpreterError(
                        f"subscript {sub} out of bounds for dimension of "
                        f"{view.name} ({lower}:{lower + (ext or 0) - 1})")
                off = view.offset + rel
                buf = view.buffer
                if off >= len(buf):
                    raise InterpreterError(
                        f"reference beyond storage of {view.name}")
                buf[off] = value
                return nxt
        else:
            def instr(ex, fr, ls):
                _stmt_charge(ex, amt)
                v = veval(ex, fr)
                view = fr.vars.get(tname)
                if view is None:
                    view = ex._local(tname, fr)
                if isinstance(view, ScalarRef):
                    raise InterpreterError(
                        f"{raw} subscripted but declared scalar")
                view.set([int(f(ex, fr)) for f in sub_evals], float(v))
                return nxt
        instrs.append(instr)
        return
    trepr = repr(target)

    def instr(ex, fr, ls):
        _stmt_charge(ex, amt)
        veval(ex, fr)
        raise InterpreterError(f"bad assignment target {trepr}")
    instrs.append(instr)


def _emit_if(cc: _Ctx, reg: _Region, s: ast.IfBlock) -> None:
    instrs = reg.instrs
    head_pc = len(instrs)
    instrs.append(None)  # patched below
    end_cell = [None]
    pairs = []
    arm_cells = []
    for cond, _arm in s.arms:
        ceval = None if cond is None else \
            compiled_parts(compile_expr(cond, cc))[1]
        cell = [None]
        arm_cells.append(cell)
        pairs.append((ceval, cell))
    pairs = tuple(pairs)

    def head(ex, fr, ls):
        _stmt_charge(ex, 1.0)
        for ceval, cell in pairs:
            if ceval is None or ceval(ex, fr) != 0.0:
                return cell[0]
        return end_cell[0]
    instrs[head_pc] = head
    last = len(s.arms) - 1
    for i, (cond, arm) in enumerate(s.arms):
        arm_cells[i][0] = len(instrs)
        _compile_block(cc, reg, arm)
        if i != last:
            def jump(ex, fr, ls, cell=end_cell):
                return cell[0]
            instrs.append(jump)
    end_cell[0] = len(instrs)


def _emit_do(cc: _Ctx, reg: _Region, s: ast.DoLoop,
             omp_charge: bool) -> None:
    instrs = reg.instrs
    li = reg.n_loops
    reg.n_loops += 1
    bounds = [compile_expr(s.start, cc), compile_expr(s.stop, cc)]
    if s.step is not None:
        bounds.append(compile_expr(s.step, cc))
    fold, evals = _seq_fold(bounds)
    amt = 1.0 + fold
    has_step = s.step is not None
    sev = evals[0]
    tev = evals[1]
    pev = evals[2] if has_step else None
    rawvar = s.var
    vname = s.var.upper()
    kernel = _try_vectorize(s, cc)
    init_pc = len(instrs)
    body_pc = init_pc + 1
    exit_cell = [None]

    def do_init(ex, fr, ls):
        _stmt_charge(ex, amt)
        start = sev(ex, fr)
        stop = tev(ex, fr)
        step = pev(ex, fr) if pev is not None else 1.0
        if step == 0:
            raise InterpreterError("DO step is zero")
        trips = max(0, int((stop - start + step) // step))
        var = fr.vars.get(vname)
        if var is None:
            var = ex._local(vname, fr)
        if not isinstance(var, ScalarRef):
            raise InterpreterError(f"DO variable {rawvar} is an array")
        if kernel is not None and trips >= _VEC_MIN_TRIPS \
                and kernel(ex, fr, var, trips, start, step):
            return exit_cell[0]
        if trips <= 0:
            var.set(start)
            return exit_cell[0]
        ls[li] = [trips - 1, start, step, var]
        var.set(start)
        return body_pc

    instrs.append(do_init)
    _compile_block(cc, reg, s.body)
    incr_pc = len(instrs)

    def do_incr(ex, fr, ls):
        st = ls[li]
        value = st[1] + st[2]
        st[1] = value
        var = st[3]
        # inlined ScalarRef.set (runs once per iteration)
        if var.typename == "INTEGER":
            var.buffer[var.offset] = float(int(value))
        else:
            var.buffer[var.offset] = value
        if st[0] > 0:
            st[0] -= 1
            return body_pc
        return incr_pc + 1
    instrs.append(do_incr)
    exit_cell[0] = len(instrs)


def _emit_goto(cc: _Ctx, reg: _Region, s: ast.Goto) -> None:
    instrs = reg.instrs
    target = s.target
    cell = None
    levels = 0
    for labels, depth in reversed(cc.scopes):
        if target in labels:
            cell = labels[target]
            levels = cc.omp_depth - depth
            break
    if cell is None:
        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise _GotoSignal(target)
    elif levels == 0:
        def instr(ex, fr, ls, cell=cell):
            _stmt_charge(ex, 1.0)
            return cell[0]
    else:
        def instr(ex, fr, ls, cell=cell, levels=levels):
            _stmt_charge(ex, 1.0)
            raise _CrossGoto(levels, cell)
    instrs.append(instr)


def _resolve_label(cc: _Ctx, target: int):
    """(cell, levels) for a label visible from the current scope stack;
    (None, 0) when unresolved (handled at runtime via _GotoSignal)."""
    for labels, depth in reversed(cc.scopes):
        if target in labels:
            return labels[target], cc.omp_depth - depth
    return None, 0


def _emit_computed_goto(cc: _Ctx, reg: _Region, s: ast.ComputedGoto) -> None:
    instrs = reg.instrs
    nxt = len(instrs) + 1
    pure, charged, count = compile_expr(s.index, cc)
    if charged is None:
        amt = 1.0 + 0.5 * count
        ieval = pure
    else:
        amt = 1.0
        ieval = charged
    resolved = tuple(
        (target,) + _resolve_label(cc, target) for target in s.targets)
    n = len(resolved)

    def instr(ex, fr, ls):
        _stmt_charge(ex, amt)
        idx = int(ieval(ex, fr))
        # F77 semantics: an index outside 1..n falls through
        if not 1 <= idx <= n:
            return nxt
        target, cell, levels = resolved[idx - 1]
        if cell is None:
            raise _GotoSignal(target)
        if levels:
            raise _CrossGoto(levels, cell)
        return cell[0]
    instrs.append(instr)


def _emit_label_assign(cc: _Ctx, reg: _Region, s: ast.LabelAssign) -> None:
    instrs = reg.instrs
    nxt = len(instrs) + 1
    vname = s.var.upper()
    value = float(s.target_label)

    def instr(ex, fr, ls):
        _stmt_charge(ex, 1.0)
        ref = fr.vars.get(vname)
        if ref is None:
            ref = ex._local(vname, fr)
        if not isinstance(ref, ScalarRef):
            raise InterpreterError(f"ASSIGN target {s.var} is an array")
        ref.set(value)
        return nxt
    instrs.append(instr)


def _emit_assigned_goto(cc: _Ctx, reg: _Region, s: ast.AssignedGoto) -> None:
    instrs = reg.instrs
    if not s.targets:
        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            raise InterpreterError(
                "assigned GOTO without a label list is not executable")
        instrs.append(instr)
        return
    pure, charged, count = compile_expr(ast.Var(s.var), cc)
    if charged is None:
        amt = 1.0 + 0.5 * count
        veval = pure
    else:
        amt = 1.0
        veval = charged
    targets = s.targets
    resolved = {
        target: _resolve_label(cc, target) for target in targets}

    def instr(ex, fr, ls):
        _stmt_charge(ex, amt)
        idx = int(veval(ex, fr))
        if idx not in resolved:
            raise InterpreterError(
                f"assigned GOTO label {idx} not in its label list")
        cell, levels = resolved[idx]
        if cell is None:
            raise _GotoSignal(idx)
        if levels:
            raise _CrossGoto(levels, cell)
        return cell[0]
    instrs.append(instr)


def _emit_io(cc: _Ctx, reg: _Region, s: ast.IoStmt) -> None:
    instrs = reg.instrs
    nxt = len(instrs) + 1
    if s.kind == "READ":
        items = s.items

        def instr(ex, fr, ls):
            _stmt_charge(ex, 1.0)
            for item in items:
                if not ex.inputs:
                    raise InterpreterError("READ beyond provided input")
                ex._store(item, ex.inputs.pop(0), fr)
            return nxt
        instrs.append(instr)
        return
    fold, evals = _seq_fold([compile_expr(item, cc) for item in s.items])
    amt = 1.0 + fold

    def instr(ex, fr, ls):
        _stmt_charge(ex, amt)
        parts = []
        for f in evals:
            v = f(ex, fr)
            parts.append(v if isinstance(v, str) else str(v))
        ex.output.append(" ".join(parts))
        return nxt
    instrs.append(instr)


def _emit_omp(cc: _Ctx, reg: _Region, s: ast.OmpParallelDo) -> None:
    instrs = reg.instrs
    nxt = len(instrs) + 1
    loop = s.loop
    bounds = [compile_expr(loop.start, cc), compile_expr(loop.stop, cc)]
    if loop.step is not None:
        bounds.append(compile_expr(loop.step, cc))
    fold, evals = _seq_fold(bounds)
    amt = 1.0 + fold
    has_step = loop.step is not None
    sev = evals[0]
    tev = evals[1]
    pev = evals[2] if has_step else None
    vname = loop.var.upper()
    private_names = tuple(n.upper() for n in s.private)
    site_idx = cc.omp_index[id(s)]
    sub = _Region()
    cc.omp_depth += 1
    _compile_block(cc, sub, loop.body)
    cc.omp_depth -= 1
    body_region = sub.packed()
    binstrs, bn_loops = body_region
    n_bi = len(binstrs)

    def instr(ex, fr, ls):
        _stmt_charge(ex, amt)
        start = sev(ex, fr)
        stop = tev(ex, fr)
        step = pev(ex, fr) if pev is not None else 1.0
        if step == 0:
            raise InterpreterError("DO step is zero")
        trips = max(0, int((stop - start + step) // step))
        var = fr.vars.get(vname)
        if var is None:
            var = ex._local(vname, fr)
        # no ScalarRef check here: the tree-walker omits it for the
        # parallel path (an array DO variable fails in var.set instead)
        slices = []
        for name in private_names:
            ref = fr.vars.get(name)
            if ref is None:
                ref = ex._local(name, fr)
            if isinstance(ref, ScalarRef):
                slices.append((ref.buffer, ref.offset, 1))
            else:
                slices.append((ref.buffer, ref.offset, ref.size()))
        saved = [(buf, off, buf[off:off + size].copy())
                 for buf, off, size in slices]
        order = range(trips)
        if ex.order == ORDER_PERMUTED and trips > 1:
            order = list(reversed(range(trips - 1))) + [trips - 1]
        iteration_costs: List[float] = []
        ic_append = iteration_costs.append
        last = trips - 1
        # inlined ScalarRef.set + run_region for the per-iteration path;
        # non-ScalarRef DO variables keep the generic set() (same error)
        if var.__class__ is ScalarRef:
            vbuf, voff = var.buffer, var.offset
            vint = var.typename == "INTEGER"
        else:
            vbuf = None
        try:
            ex.parallel_depth += 1
            try:
                for k in order:
                    if k == last:
                        for buf, off, data in saved:
                            buf[off:off + len(data)] = data
                    else:
                        for buf, off, size in slices:
                            buf[off:off + size] = 0.0
                    v = start + k * step
                    if vbuf is not None:
                        vbuf[voff] = float(int(v)) if vint else v
                    else:
                        var.set(v)
                    before = ex.cost
                    bls = [None] * bn_loops if bn_loops else None
                    pc = 0
                    while pc < n_bi:
                        pc = binstrs[pc](ex, fr, bls)
                    ic_append(ex.cost - before)
                var.set(start + trips * step)
            finally:
                ex.parallel_depth -= 1
        except _CrossGoto as cg:
            if cg.levels <= 1:
                return cg.cell[0]
            cg.levels -= 1
            raise
        if ex.machine is not None:
            serial_cost = sum(iteration_costs)
            parallel_cost = ex.machine.parallel_time(
                iteration_costs, nested=ex.parallel_depth > 0)
            ex.cost += parallel_cost - serial_cost
            node = ex._omp_site(fr.unit, site_idx)
            stat = ex.omp_stats.setdefault(id(node), [0.0, 0.0])
            stat[0] += serial_cost
            stat[1] += parallel_cost
        return nxt
    instrs.append(instr)


# ---------------------------------------------------------------------------
# the compiled interpreter
# ---------------------------------------------------------------------------

class CompiledInterpreter(Interpreter):
    """Drop-in :class:`Interpreter` executing compiled closure templates.

    Frame construction, COMMON allocation, DATA statements, argument
    binding and the cost model are shared with (or mirrored exactly from)
    the tree-walker; only statement dispatch and expression evaluation
    are compiled.  Templates are cached process-wide per unit content
    hash, so constructing many interpreters over the same program only
    lowers each unit once.
    """

    def __init__(self, program: Program, **kwargs):
        super().__init__(program, **kwargs)
        self._templates: Dict[int, _UnitTemplate] = {}
        self._omp_sites: Dict[int, List[ast.OmpParallelDo]] = {}

    # -- template binding ------------------------------------------------
    def _template(self, unit: ast.ProgramUnit) -> _UnitTemplate:
        tmpl = self._templates.get(id(unit))
        if tmpl is None:
            tmpl = _template_for(unit, self.honor)
            self._templates[id(unit)] = tmpl
        return tmpl

    def _omp_site(self, unit: ast.ProgramUnit,
                  index: int) -> ast.OmpParallelDo:
        sites = self._omp_sites.get(id(unit))
        if sites is None:
            sites = collect_omp_sites(unit.body)
            self._omp_sites[id(unit)] = sites
        return sites[index]

    # -- entry points ----------------------------------------------------
    def run(self) -> ExecutionResult:
        main = self.program.main
        stop_message: Optional[str] = None
        try:
            frame = self._new_frame(main)
            self._apply_data(frame)
            try:
                run_region(self, self._template(main).region, frame)
            except _GotoSignal as g:
                raise InterpreterError(
                    f"GOTO {g.label} has no target in {main.name}")
        except FortranStop as stop:
            stop_message = stop.message or ""
        return ExecutionResult(self.output, self.cost,
                               {k: v.copy() for k, v in self.commons.items()},
                               stop_message)

    def _call(self, name: str, args: Sequence[ast.Expr],
              frame) -> Optional[float]:
        name = name.upper()
        unit = self.program.procedures.get(name)
        if unit is None:
            raise InterpreterError(
                f"procedure {name} is not defined in the program (external "
                f"library code cannot be executed)")
        self._charge(5.0)
        callee_table = self._table(unit)
        bound = []
        array_bindings = []
        if len(args) != len(unit.params):
            raise InterpreterError(
                f"{name}: expected {len(unit.params)} arguments, got "
                f"{len(args)}")
        for formal, actual in zip(unit.params, args):
            finfo = callee_table.info(formal)
            ref = self._argument_ref(actual, frame)
            if finfo.dims is not None:
                array_bindings.append((formal.upper(), finfo, ref))
            else:
                bound.append((formal.upper(),
                              self._as_scalar_ref(ref, finfo.typename)))
        callee_frame = self._new_frame(unit)
        for fname, ref in bound:
            callee_frame.vars[fname] = ref
        for fname, finfo, ref in array_bindings:
            lowers, extents = self._shape(finfo, callee_frame, callee_table)
            callee_frame.vars[fname] = self._as_array_view(
                ref, lowers, extents, finfo.typename, fname)
        self._apply_data(callee_frame)
        try:
            run_region(self, self._template(unit).region, callee_frame)
        except _ReturnSignal:
            pass
        except _GotoSignal as g:
            raise InterpreterError(
                f"GOTO {g.label} has no target in {unit.name}")
        if unit.kind == "FUNCTION":
            result = callee_frame.vars.get(unit.name.upper())
            if not isinstance(result, ScalarRef):
                raise InterpreterError(
                    f"function {unit.name} never set its result")
            return result.get()
        return None
