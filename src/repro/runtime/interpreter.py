"""Tree-walking interpreter for the Fortran 77 subset.

Faithful to the semantics the paper's pathologies depend on:

* by-reference argument passing — an array-element actual binds an array
  formal to a *view* starting at that element (Figure 2/3 aliasing);
* column-major storage and sequence-associated COMMON blocks;
* adjustable array formals (``DIMENSION M1(L)``) with extents evaluated
  in the callee after scalar binding;
* DO semantics with the trip count computed on entry.

Parallel execution (:class:`~repro.fortran.ast.OmpParallelDo`) is
*simulated*: iterations run in program order for determinism, private
variables get fresh (zeroed) storage per iteration with the last
iteration peeled onto the original storage — exactly the
last-iteration-peeling contract Polaris uses (paper Section III-B4) —
and wall-clock cost is modelled per :class:`~repro.runtime.machine.MachineModel`.
The differential tester (:mod:`repro.runtime.difftest`) also supports a
permuted iteration order to validate independence dynamically.

Cost accounting: every visited expression node and executed statement
charges ~1 work unit; the simulated time of a parallel region is
``fork_join + max over threads of assigned iteration cost``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FortranStop, InterpreterError
from repro.fortran import ast
from repro.fortran.intrinsics import is_intrinsic
from repro.fortran.symbols import SymbolTable, VarInfo, build_symbol_table
from repro.program import Program
from repro.runtime.intrinsics import call_intrinsic
from repro.runtime.machine import MachineModel
from repro.runtime.values import ArrayView, ScalarRef

_MAX_STEPS = 200_000_000


class _GotoSignal(Exception):
    def __init__(self, label: int):
        self.label = label


def outputs_equal(a: List[str], b: List[str], rtol: float = 1e-9) -> bool:
    """Compare output logs, numerically where tokens parse as numbers.

    Parallel reductions legally reorder floating-point sums, so printed
    values may differ in the last bits; a relative tolerance absorbs that
    without masking real divergence.
    """
    if len(a) != len(b):
        return False
    for la, lb in zip(a, b):
        ta, tb = la.split(), lb.split()
        if len(ta) != len(tb):
            return False
        for xa, xb in zip(ta, tb):
            try:
                fa, fb = float(xa), float(xb)
            except ValueError:
                if xa != xb:
                    return False
                continue
            # symmetric tolerance: scale by the larger magnitude so the
            # verdict cannot depend on comparison order
            if not (abs(fa - fb) <= max(abs(fa), abs(fb)) * rtol + 1e-12):
                return False
    return True


@dataclass
class ExecutionResult:
    output: List[str]
    cost: float
    commons: Dict[str, np.ndarray]
    stop_message: Optional[str] = None

    def memory_equal(self, other: "ExecutionResult",
                     rtol: float = 1e-9) -> bool:
        if set(self.commons) != set(other.commons):
            return False
        for name, buf in self.commons.items():
            theirs = other.commons[name]
            # np.allclose would raise on broadcast-incompatible shapes
            if buf.shape != theirs.shape:
                return False
            if not np.allclose(buf, theirs, rtol=rtol, atol=1e-12):
                return False
        return outputs_equal(self.output, other.output, rtol)


@dataclass
class _Frame:
    unit: ast.ProgramUnit
    table: SymbolTable
    vars: Dict[str, Union[ScalarRef, ArrayView]] = field(default_factory=dict)
    parameters: Dict[str, float] = field(default_factory=dict)


#: iteration-order policies for parallel loops
ORDER_SEQUENTIAL = "sequential"
ORDER_PERMUTED = "permuted"


class Interpreter:
    """Executes a :class:`~repro.program.Program`.

    ``machine`` enables parallel-cost simulation for OmpParallelDo nodes
    (without it they execute as plain loops at serial cost).
    ``iteration_order`` selects the dynamic schedule used to *validate*
    parallel loops (see module docstring).
    """

    def __init__(self, program: Program,
                 machine: Optional[MachineModel] = None,
                 honor_directives: bool = True,
                 iteration_order: str = ORDER_SEQUENTIAL,
                 inputs: Optional[Sequence[float]] = None,
                 max_steps: int = _MAX_STEPS):
        self.program = program
        self.machine = machine
        self.honor = honor_directives
        self.order = iteration_order
        self.inputs = list(inputs or [])
        self.max_steps = max_steps
        self.cost = 0.0
        self.steps = 0
        self.output: List[str] = []
        self.parallel_depth = 0
        self._tables: Dict[int, SymbolTable] = {}
        self.commons: Dict[str, np.ndarray] = {}
        #: per-unit cache of COMMON views and PARAMETER values (the
        #: buffers are fixed for the program's lifetime, so the views are
        #: shareable across frames)
        self._unit_statics: Dict[int, tuple] = {}
        self._intdiv_cache: Dict[int, bool] = {}
        #: per-directive accumulated (serial_body_cost, parallel_cost),
        #: keyed by node identity — consumed by the tuning pass
        self.omp_stats: Dict[int, List[float]] = {}
        self._allocate_commons()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _table(self, unit: ast.ProgramUnit) -> SymbolTable:
        key = id(unit)
        if key not in self._tables:
            self._tables[key] = build_symbol_table(unit)
        return self._tables[key]

    def _allocate_commons(self) -> None:
        sizes: Dict[str, int] = {}
        for unit in self.program.units:
            table = self._table(unit)
            for block, names in table.common_blocks.items():
                total = 0
                for name in names:
                    total += self._static_size(table.variables[name], table)
                sizes[block] = max(sizes.get(block, 0), total)
        for block, size in sizes.items():
            self.commons[block] = np.zeros(size, dtype=np.float64)

    def _static_size(self, info: VarInfo, table: SymbolTable) -> int:
        if info.dims is None:
            return 1
        total = 1
        for d in info.dims:
            ext = self._const_extent(d, table)
            if ext is None:
                raise InterpreterError(
                    f"COMMON array {info.name} needs constant dimensions")
            total *= ext
        return total

    def _const_extent(self, d: ast.Dim,
                      table: SymbolTable) -> Optional[int]:
        lo = self._const_value(d.lower, table)
        if d.upper is None or lo is None:
            return None
        hi = self._const_value(d.upper, table)
        if hi is None:
            return None
        return hi - lo + 1

    def _const_value(self, e: ast.Expr,
                     table: SymbolTable) -> Optional[int]:
        from repro.analysis.symbolic import from_expr
        poly = from_expr(e)
        c = poly.constant_value()
        if c is not None:
            return c
        # substitute PARAMETER constants
        def subst(x: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(x, ast.Var):
                info = table.variables.get(x.name.upper())
                if info is not None and info.parameter_value is not None:
                    return info.parameter_value
            return None
        c = from_expr(ast.map_expr(ast.clone(e), subst)).constant_value()
        return c

    # ------------------------------------------------------------------
    # frames
    # ------------------------------------------------------------------
    def _new_frame(self, unit: ast.ProgramUnit) -> _Frame:
        table = self._table(unit)
        key = id(unit)
        cached = self._unit_statics.get(key)
        if cached is None:
            frame = _Frame(unit, table)
            for name, info in table.variables.items():
                if info.parameter_value is not None:
                    v = self._const_value(info.parameter_value, table)
                    frame.parameters[name] = float(v) if v is not None \
                        else self._eval_literal(info.parameter_value)
            for block, names in table.common_blocks.items():
                buf = self.commons[block]
                offset = 0
                for name in names:
                    info = table.variables[name]
                    size = self._static_size(info, table)
                    if info.dims is None:
                        frame.vars[name] = ScalarRef(buf, offset,
                                                     info.typename)
                    else:
                        lowers, extents = self._shape(info, frame, table)
                        frame.vars[name] = ArrayView(buf, offset, lowers,
                                                     extents, info.typename,
                                                     name)
                    offset += size
            cached = (dict(frame.vars), dict(frame.parameters))
            self._unit_statics[key] = cached
        common_vars, parameters = cached
        frame = _Frame(unit, table)
        frame.vars.update(common_vars)
        frame.parameters.update(parameters)
        return frame

    def _eval_literal(self, e: ast.Expr) -> float:
        if isinstance(e, ast.RealLit):
            return e.value
        if isinstance(e, ast.IntLit):
            return float(e.value)
        raise InterpreterError("PARAMETER value is not constant")

    def _shape(self, info: VarInfo, frame: _Frame, table: SymbolTable
               ) -> Tuple[List[int], List[Optional[int]]]:
        lowers: List[int] = []
        extents: List[Optional[int]] = []
        for d in info.dims or ():
            lo = self._const_value(d.lower, table)
            if lo is None:
                lo = int(self._eval(d.lower, frame))
            lowers.append(lo)
            if d.upper is None:
                extents.append(None)
            else:
                hi = self._const_value(d.upper, table)
                if hi is None:
                    hi = int(self._eval(d.upper, frame))
                extents.append(hi - lo + 1)
        return lowers, extents

    def _local(self, name: str, frame: _Frame) -> Union[ScalarRef, ArrayView]:
        name = name.upper()
        ref = frame.vars.get(name)
        if ref is not None:
            return ref
        info = frame.table.info(name)
        if info.dims is None:
            ref = ScalarRef(np.zeros(1, dtype=np.float64), 0, info.typename)
        else:
            lowers, extents = self._shape(info, frame, frame.table)
            if any(e is None for e in extents):
                raise InterpreterError(
                    f"local array {name} in {frame.unit.name} has "
                    f"non-constant dimensions and is not a formal")
            total = 1
            for e in extents:
                total *= e  # type: ignore[operator]
            ref = ArrayView(np.zeros(total, dtype=np.float64), 0, lowers,
                            extents, info.typename, name)
        frame.vars[name] = ref
        return ref

    def _apply_data(self, frame: _Frame) -> None:
        for d in frame.unit.find_decls(ast.DataDecl):
            values = [self._eval(v, frame) for v in d.values]
            idx = 0
            for target in d.targets:
                if isinstance(target, ast.Var):
                    ref = self._local(target.name, frame)
                    if isinstance(ref, ArrayView):
                        n = ref.size()
                        for k in range(n):
                            ref.buffer[ref.offset + k] = values[idx]
                            idx += 1
                    else:
                        ref.set(values[idx])
                        idx += 1
                elif isinstance(target, ast.ArrayRef):
                    view = self._local(target.name, frame)
                    subs = [int(self._eval(s, frame)) for s in target.subs]
                    view.set(subs, values[idx])
                    idx += 1

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        main = self.program.main
        stop_message: Optional[str] = None
        try:
            self._exec_unit(main, [])
        except FortranStop as stop:
            stop_message = stop.message or ""
        return ExecutionResult(self.output, self.cost,
                               {k: v.copy() for k, v in self.commons.items()},
                               stop_message)

    def _exec_unit(self, unit: ast.ProgramUnit,
                   bound: Sequence[Tuple[str, Union[ScalarRef, ArrayView]]]
                   ) -> _Frame:
        frame = self._new_frame(unit)
        for name, ref in bound:
            frame.vars[name.upper()] = ref
        self._apply_data(frame)
        try:
            self._exec_block(unit.body, frame)
        except _GotoSignal as g:
            raise InterpreterError(
                f"GOTO {g.label} has no target in {unit.name}")
        return frame

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_block(self, body: Sequence[ast.Stmt], frame: _Frame) -> None:
        i = 0
        labels = {s.label: k for k, s in enumerate(body)
                  if getattr(s, "label", None)}
        while i < len(body):
            try:
                self._exec_stmt(body[i], frame)
            except _GotoSignal as g:
                if g.label in labels:
                    i = labels[g.label]
                    continue
                raise
            i += 1

    def _charge(self, amount: float = 1.0) -> None:
        self.cost += amount
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError("execution step limit exceeded")

    def _exec_stmt(self, s: ast.Stmt, frame: _Frame) -> None:
        self._charge()
        if isinstance(s, ast.Assign):
            value = self._eval(s.value, frame)
            self._store(s.target, value, frame)
        elif isinstance(s, ast.IfBlock):
            for cond, arm in s.arms:
                if cond is None or self._eval(cond, frame) != 0.0:
                    self._exec_block(arm, frame)
                    return
        elif isinstance(s, ast.DoLoop):
            self._exec_do(s, frame)
        elif isinstance(s, ast.OmpParallelDo):
            self._exec_omp(s, frame)
        elif isinstance(s, ast.CallStmt):
            self._call(s.name, s.args, frame)
        elif isinstance(s, ast.Goto):
            raise _GotoSignal(s.target)
        elif isinstance(s, ast.ComputedGoto):
            idx = int(self._eval(s.index, frame))
            # F77 semantics: an index outside 1..n falls through
            if 1 <= idx <= len(s.targets):
                raise _GotoSignal(s.targets[idx - 1])
        elif isinstance(s, ast.LabelAssign):
            ref = self._local(s.var, frame)
            if not isinstance(ref, ScalarRef):
                raise InterpreterError(
                    f"ASSIGN target {s.var} is an array")
            ref.set(float(s.target_label))
        elif isinstance(s, ast.AssignedGoto):
            if not s.targets:
                raise InterpreterError(
                    "assigned GOTO without a label list is not executable")
            idx = int(self._eval(ast.Var(s.var), frame))
            if idx not in s.targets:
                raise InterpreterError(
                    f"assigned GOTO label {idx} not in its label list")
            raise _GotoSignal(idx)
        elif isinstance(s, (ast.Continue,)):
            pass
        elif isinstance(s, ast.Return):
            raise _ReturnSignal()
        elif isinstance(s, ast.Stop):
            raise FortranStop(s.message or "")
        elif isinstance(s, ast.IoStmt):
            self._exec_io(s, frame)
        elif isinstance(s, ast.TaggedBlock):
            raise InterpreterError(
                "annotation-inlined code is not executable (it is a "
                "summary, not an implementation); reverse-inline first")
        else:
            raise InterpreterError(f"cannot execute {type(s).__name__}")

    def _exec_do(self, s: ast.DoLoop, frame: _Frame) -> None:
        start = self._eval(s.start, frame)
        stop = self._eval(s.stop, frame)
        step = self._eval(s.step, frame) if s.step is not None else 1.0
        if step == 0:
            raise InterpreterError("DO step is zero")
        trips = max(0, int((stop - start + step) // step))
        var = self._local(s.var, frame)
        if not isinstance(var, ScalarRef):
            raise InterpreterError(f"DO variable {s.var} is an array")
        value = start
        for _ in range(trips):
            var.set(value)
            self._exec_block(s.body, frame)
            value += step
        var.set(value)

    def _exec_io(self, s: ast.IoStmt, frame: _Frame) -> None:
        if s.kind == "READ":
            for item in s.items:
                if not self.inputs:
                    raise InterpreterError("READ beyond provided input")
                self._store(item, self.inputs.pop(0), frame)
            return
        parts = []
        for item in s.items:
            v = self._eval(item, frame)
            parts.append(str(v) if not isinstance(v, str) else v)
        self.output.append(" ".join(parts))

    # ------------------------------------------------------------------
    # OpenMP simulation
    # ------------------------------------------------------------------
    def _exec_omp(self, s: ast.OmpParallelDo, frame: _Frame) -> None:
        loop = s.loop
        if not self.honor:
            # directives ignored: the plain serial loop (used as the
            # baseline side of differential testing)
            self._exec_do(loop, frame)
            return
        start = self._eval(loop.start, frame)
        stop = self._eval(loop.stop, frame)
        step = self._eval(loop.step, frame) if loop.step is not None else 1.0
        if step == 0:
            raise InterpreterError("DO step is zero")
        trips = max(0, int((stop - start + step) // step))
        var = self._local(loop.var, frame)

        private_slices = self._private_storage(s.private, frame)
        saved = [(buf, off, buf[off:off + size].copy())
                 for buf, off, size in private_slices]

        order = list(range(trips))
        if self.order == ORDER_PERMUTED and trips > 1:
            # any order is legal for an independent loop, but the peeled
            # (original-storage) iteration must still run last in time
            order = list(reversed(range(trips - 1))) + [trips - 1]

        iteration_costs: List[float] = []
        self.parallel_depth += 1
        try:
            for pos, k in enumerate(order):
                is_peeled = (k == trips - 1)
                if is_peeled:
                    for (buf, off, data) in saved:
                        buf[off:off + len(data)] = data
                else:
                    for (buf, off, size) in private_slices:
                        buf[off:off + size] = 0.0
                var.set(start + k * step)
                before = self.cost
                self._exec_block(loop.body, frame)
                iteration_costs.append(self.cost - before)
            var.set(start + trips * step)
        finally:
            self.parallel_depth -= 1
        if self.machine is not None:
            serial_cost = sum(iteration_costs)
            parallel_cost = self.machine.parallel_time(
                iteration_costs, nested=self.parallel_depth > 0)
            self.cost += parallel_cost - serial_cost
            stat = self.omp_stats.setdefault(id(s), [0.0, 0.0])
            stat[0] += serial_cost
            stat[1] += parallel_cost

    def _private_storage(self, names: Sequence[str], frame: _Frame):
        slices = []
        for name in names:
            ref = frame.vars.get(name.upper())
            if ref is None:
                ref = self._local(name, frame)
            if isinstance(ref, ScalarRef):
                slices.append((ref.buffer, ref.offset, 1))
            else:
                slices.append((ref.buffer, ref.offset, ref.size()))
        return slices

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _call(self, name: str, args: Sequence[ast.Expr],
              frame: _Frame) -> Optional[float]:
        name = name.upper()
        unit = self.program.procedures.get(name)
        if unit is None:
            raise InterpreterError(
                f"procedure {name} is not defined in the program (external "
                f"library code cannot be executed)")
        self._charge(5.0)
        callee_table = self._table(unit)
        bound: List[Tuple[str, Union[ScalarRef, ArrayView]]] = []
        array_bindings: List[Tuple[str, VarInfo, object]] = []
        if len(args) != len(unit.params):
            raise InterpreterError(
                f"{name}: expected {len(unit.params)} arguments, got "
                f"{len(args)}")
        for formal, actual in zip(unit.params, args):
            finfo = callee_table.info(formal)
            ref = self._argument_ref(actual, frame)
            if finfo.dims is not None:
                array_bindings.append((formal.upper(), finfo, ref))
            else:
                bound.append((formal.upper(),
                              self._as_scalar_ref(ref, finfo.typename)))
        callee_frame = self._new_frame(unit)
        for fname, ref in bound:
            callee_frame.vars[fname] = ref
        # adjustable dims evaluate after scalars are bound
        for fname, finfo, ref in array_bindings:
            lowers, extents = self._shape(finfo, callee_frame, callee_table)
            view = self._as_array_view(ref, lowers, extents, finfo.typename,
                                       fname)
            callee_frame.vars[fname] = view
        self._apply_data(callee_frame)
        try:
            self._exec_block(unit.body, callee_frame)
        except _ReturnSignal:
            pass
        except _GotoSignal as g:
            raise InterpreterError(
                f"GOTO {g.label} has no target in {unit.name}")
        if unit.kind == "FUNCTION":
            result = callee_frame.vars.get(unit.name.upper())
            if not isinstance(result, ScalarRef):
                raise InterpreterError(
                    f"function {unit.name} never set its result")
            return result.get()
        return None

    def _argument_ref(self, actual: ast.Expr, frame: _Frame):
        if isinstance(actual, ast.Var):
            return self._local(actual.name, frame)
        if isinstance(actual, ast.ArrayRef):
            base = self._local(actual.name, frame)
            if isinstance(base, ArrayView):
                subs = [int(self._eval(x, frame)) for x in actual.subs]
                return ("element", base, subs)
            raise InterpreterError(
                f"{actual.name} subscripted but not an array")
        value = self._eval(actual, frame)
        tmp = ScalarRef(np.zeros(1, dtype=np.float64), 0, "DOUBLE PRECISION")
        tmp.set(float(value))
        return tmp

    def _as_scalar_ref(self, ref, typename: str) -> ScalarRef:
        if isinstance(ref, ScalarRef):
            return ScalarRef(ref.buffer, ref.offset, typename)
        if isinstance(ref, ArrayView):
            return ScalarRef(ref.buffer, ref.offset, typename)
        if isinstance(ref, tuple) and ref[0] == "element":
            _, base, subs = ref
            r = base.element_ref(subs)
            return ScalarRef(r.buffer, r.offset, typename)
        raise InterpreterError("bad scalar argument binding")

    def _as_array_view(self, ref, lowers, extents, typename: str,
                       name: str) -> ArrayView:
        if isinstance(ref, ArrayView):
            return ArrayView(ref.buffer, ref.offset, lowers, extents,
                             typename, name)
        if isinstance(ref, tuple) and ref[0] == "element":
            _, base, subs = ref
            return base.subview(subs, lowers, extents, typename, name)
        if isinstance(ref, ScalarRef):
            return ArrayView(ref.buffer, ref.offset, lowers, extents,
                             typename, name)
        raise InterpreterError("bad array argument binding")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _store(self, target: ast.Expr, value, frame: _Frame) -> None:
        if isinstance(target, ast.Var):
            ref = self._local(target.name, frame)
            if isinstance(ref, ArrayView):
                ref.fill(float(value))  # whole-array assignment
            else:
                ref.set(float(value))
            return
        if isinstance(target, ast.ArrayRef):
            view = self._local(target.name, frame)
            if isinstance(view, ScalarRef):
                raise InterpreterError(
                    f"{target.name} subscripted but declared scalar")
            if any(isinstance(x, ast.RangeExpr) for x in target.subs):
                self._store_region(view, target.subs, float(value), frame)
                return
            subs = [int(self._eval(x, frame)) for x in target.subs]
            view.set(subs, float(value))
            return
        raise InterpreterError(f"bad assignment target {target!r}")

    def _store_region(self, view: ArrayView, subs, value: float,
                      frame: _Frame) -> None:
        ranges: List[range] = []
        for k, sub in enumerate(subs):
            if isinstance(sub, ast.RangeExpr):
                lo = int(self._eval(sub.lo, frame)) if sub.lo is not None \
                    else view.lowers[k]
                if sub.hi is not None:
                    hi = int(self._eval(sub.hi, frame))
                elif view.extents[k] is not None:
                    hi = view.lowers[k] + view.extents[k] - 1
                else:
                    raise InterpreterError(
                        "region on assumed-size dimension")
                ranges.append(range(lo, hi + 1))
            else:
                v = int(self._eval(sub, frame))
                ranges.append(range(v, v + 1))
        import itertools
        for combo in itertools.product(*ranges):
            view.set(list(combo), value)

    def _eval(self, e: ast.Expr, frame: _Frame):
        self.cost += 0.5
        if isinstance(e, ast.BinOp):
            return self._binop(e, frame)
        if isinstance(e, ast.IntLit):
            return float(e.value)
        if isinstance(e, ast.RealLit):
            return e.value
        if isinstance(e, ast.LogicalLit):
            return 1.0 if e.value else 0.0
        if isinstance(e, ast.StringLit):
            return e.value
        if isinstance(e, ast.Var):
            name = e.name.upper()
            if name in frame.parameters:
                return frame.parameters[name]
            ref = self._local(name, frame)
            if isinstance(ref, ArrayView):
                raise InterpreterError(
                    f"array {name} used where a scalar value is needed")
            return ref.get()
        if isinstance(e, ast.ArrayRef):
            view = self._local(e.name, frame)
            if isinstance(view, ScalarRef):
                raise InterpreterError(
                    f"{e.name} subscripted but declared scalar")
            if any(isinstance(x, ast.RangeExpr) for x in e.subs):
                # region read: value of its first element (generated code
                # only; never executed on the reversed output)
                subs = []
                for k, sub in enumerate(e.subs):
                    if isinstance(sub, ast.RangeExpr):
                        subs.append(view.lowers[k]
                                    if sub.lo is None
                                    else int(self._eval(sub.lo, frame)))
                    else:
                        subs.append(int(self._eval(sub, frame)))
                return view.get(subs)
            subs = [int(self._eval(x, frame)) for x in e.subs]
            return view.get(subs)
        if isinstance(e, ast.FuncRef):
            if is_intrinsic(e.name):
                argv = [self._eval(a, frame) for a in e.args]
                return call_intrinsic(e.name, argv)
            result = self._call(e.name, e.args, frame)
            if result is None:
                raise InterpreterError(
                    f"{e.name} is a subroutine, not a function")
            return result
        if isinstance(e, ast.UnOp):
            v = self._eval(e.operand, frame)
            if e.op == "-":
                return -v
            if e.op == "+":
                return v
            if e.op == ".NOT.":
                return 0.0 if v != 0.0 else 1.0
            raise InterpreterError(f"unknown unary {e.op}")
        raise InterpreterError(f"cannot evaluate {type(e).__name__}")

    def _binop(self, e: ast.BinOp, frame: _Frame):
        op = e.op
        if op == ".AND.":
            return 1.0 if (self._eval(e.left, frame) != 0.0
                           and self._eval(e.right, frame) != 0.0) else 0.0
        if op == ".OR.":
            return 1.0 if (self._eval(e.left, frame) != 0.0
                           or self._eval(e.right, frame) != 0.0) else 0.0
        a = self._eval(e.left, frame)
        b = self._eval(e.right, frame)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise InterpreterError("division by zero")
            is_int = self._intdiv_cache.get(id(e))
            if is_int is None:
                from repro.fortran.symbols import expr_type
                is_int = (expr_type(e.left, frame.table) == "INTEGER"
                          and expr_type(e.right, frame.table) == "INTEGER")
                self._intdiv_cache[id(e)] = is_int
            if is_int:
                ia, ib = int(a), int(b)
                q = abs(ia) // abs(ib)
                return float(q if (ia < 0) == (ib < 0) else -q)
            return a / b
        if op == "**":
            if b == int(b):
                return float(a ** int(b))
            if a < 0:
                raise InterpreterError("negative base with real exponent")
            return float(a ** b)
        if op == "==":
            return 1.0 if a == b else 0.0
        if op == "/=":
            return 1.0 if a != b else 0.0
        if op == "<":
            return 1.0 if a < b else 0.0
        if op == "<=":
            return 1.0 if a <= b else 0.0
        if op == ">":
            return 1.0 if a > b else 0.0
        if op == ">=":
            return 1.0 if a >= b else 0.0
        if op in (".EQV.",):
            return 1.0 if (a != 0.0) == (b != 0.0) else 0.0
        if op in (".NEQV.",):
            return 1.0 if (a != 0.0) != (b != 0.0) else 0.0
        if op == "//":
            return str(a) + str(b)
        raise InterpreterError(f"unknown operator {op}")


class _ReturnSignal(Exception):
    pass
