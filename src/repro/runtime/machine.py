"""Machine models for the simulated OpenMP execution.

The paper measures on two multicore machines; we model the properties
that matter to Figure 20's *shape*: the thread count and the fixed costs
of entering/leaving a parallel region.  All quantities are in abstract
work units (the interpreter charges ~1 unit per executed operation), so a
fork overhead of 1500 means "parallelization pays off only for loops
whose total work comfortably exceeds a few thousand operations" — which
is exactly why most PERFECT benchmarks, with their small input sizes, see
at most ~10% end-to-end improvement and why the empirical tuning step
must disable some parallelized loops.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    name: str
    threads: int
    #: fixed cost of entering + leaving one parallel region
    fork_join_overhead: float = 1500.0
    #: per-chunk scheduling cost charged to each thread
    per_thread_overhead: float = 60.0
    #: relative serial-execution speed (arbitrary scale; affects absolute
    #: times only, never speedups)
    clock: float = 1.0

    def parallel_time(self, iteration_costs, nested: bool = False) -> float:
        """Simulated wall-clock cost of one parallel loop execution.

        Static (block) scheduling of ``iteration_costs`` over
        ``self.threads``; a nested region (inside an active parallel
        region) runs on one thread, paying only the fork overhead, which
        is OpenMP's default nested-parallelism behaviour.
        """
        costs = list(iteration_costs)
        if not costs:
            return self.fork_join_overhead
        if nested:
            return self.fork_join_overhead / 4 + sum(costs)
        threads = min(self.threads, len(costs))
        chunk = (len(costs) + threads - 1) // threads
        loads = [sum(costs[t * chunk:(t + 1) * chunk])
                 for t in range(threads)]
        return (self.fork_join_overhead
                + self.per_thread_overhead * threads
                + max(loads))


#: two quad-core 3GHz Intel processors (the paper's Intel Macintosh)
INTEL_MAC = MachineModel("intel-mac", threads=8, fork_join_overhead=1800.0,
                         per_thread_overhead=70.0)

#: two dual-core 3GHz AMD Opterons
AMD_OPTERON = MachineModel("amd-opteron", threads=4,
                           fork_join_overhead=1200.0,
                           per_thread_overhead=50.0)
