"""Runtime value model: storage buffers, array views, scalar references.

All numeric data lives in 1-D ``numpy.float64`` buffers (exact for the
integer magnitudes Fortran 77 benchmarks use).  A COMMON block is one
buffer shared program-wide; each program unit sees it through its own
sequence-associated views — the mechanism behind the paper's Figure 2/3
aliasing (different subroutines viewing different regions/shapes of the
same storage).

Arrays are column-major: ``A(i1, i2, ...)`` with declared dims
``(l_k : u_k)`` maps to offset ``sum_k (i_k - l_k) * stride_k`` with
``stride_1 = 1`` and ``stride_{k+1} = stride_k * extent_k``.  Passing an
array *element* to a subroutine passes a view starting at that element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InterpreterError


@dataclass
class ScalarRef:
    """A by-reference scalar cell: one slot of a buffer."""

    buffer: np.ndarray
    offset: int
    typename: str = "REAL"

    def get(self) -> float:
        v = float(self.buffer[self.offset])
        if self.typename == "INTEGER":
            return float(int(v))
        return v

    def set(self, value: float) -> None:
        if self.typename == "INTEGER":
            value = float(int(value))
        self.buffer[self.offset] = value


class ArrayView:
    """A column-major view into a buffer."""

    __slots__ = ("buffer", "offset", "lowers", "extents", "strides",
                 "typename", "name")

    def __init__(self, buffer: np.ndarray, offset: int,
                 lowers: Sequence[int], extents: Sequence[Optional[int]],
                 typename: str = "REAL", name: str = "?"):
        self.buffer = buffer
        self.offset = offset
        self.lowers = list(lowers)
        self.extents = list(extents)  # None = assumed size (last dim only)
        self.typename = typename
        self.name = name
        strides: List[int] = []
        stride = 1
        for ext in self.extents:
            strides.append(stride)
            if ext is not None:
                stride *= ext
        self.strides = strides

    @property
    def rank(self) -> int:
        return len(self.extents)

    def size(self) -> int:
        """Total elements (available buffer length for assumed size)."""
        if self.extents and self.extents[-1] is None:
            head = self.strides[-1]
            remaining = len(self.buffer) - self.offset
            return (remaining // head) * head if head else remaining
        total = 1
        for e in self.extents:
            total *= e or 1
        return total

    def flat_offset(self, subs: Sequence[int]) -> int:
        if len(subs) != self.rank:
            raise InterpreterError(
                f"array {self.name}: {len(subs)} subscripts for rank "
                f"{self.rank}")
        off = self.offset
        for sub, lower, ext, stride in zip(subs, self.lowers, self.extents,
                                           self.strides):
            rel = int(sub) - lower
            if rel < 0 or (ext is not None and rel >= ext):
                raise InterpreterError(
                    f"subscript {int(sub)} out of bounds for dimension of "
                    f"{self.name} ({lower}:{lower + (ext or 0) - 1})")
            off += rel * stride
        if off < 0 or off >= len(self.buffer):
            raise InterpreterError(
                f"reference beyond storage of {self.name}")
        return off

    def get(self, subs: Sequence[int]) -> float:
        v = float(self.buffer[self.flat_offset(subs)])
        if self.typename == "INTEGER":
            return float(int(v))
        return v

    def set(self, subs: Sequence[int], value: float) -> None:
        if self.typename == "INTEGER":
            value = float(int(value))
        self.buffer[self.flat_offset(subs)] = value

    def element_ref(self, subs: Sequence[int]) -> ScalarRef:
        return ScalarRef(self.buffer, self.flat_offset(subs), self.typename)

    def subview(self, subs: Sequence[int], lowers: Sequence[int],
                extents: Sequence[Optional[int]], typename: str,
                name: str) -> "ArrayView":
        """A view starting at element ``subs`` with a new shape — how an
        array-element actual binds to an array formal."""
        return ArrayView(self.buffer, self.flat_offset(subs), lowers,
                         extents, typename, name)

    def fill(self, value: float) -> None:
        self.buffer[self.offset:self.offset + self.size()] = value

    def snapshot(self) -> np.ndarray:
        return self.buffer[self.offset:self.offset + self.size()].copy()


@dataclass
class CommonBlock:
    """One COMMON block's storage plus its declared layout registry."""

    name: str
    buffer: np.ndarray

    @staticmethod
    def allocate(name: str, size: int) -> "CommonBlock":
        return CommonBlock(name, np.zeros(size, dtype=np.float64))
