"""Worker-side job execution, shared by every serving tier.

The single-node daemon (:mod:`repro.service.server`), the cluster
gateway's embedded dispatchers (:mod:`repro.cluster.gateway`), and the
remote worker fleet (:mod:`repro.cluster.workers`) all run the same
payloads the same way: :func:`execute_payload` interprets a submit
payload, and :func:`run_job_observed` wraps it with correlation-ID
propagation plus a metrics-registry delta for the parent to merge.

Everything here is module-level and picklable — it must cross the
process-pool boundary intact.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Optional, Tuple

from repro.experiments.executor import WorkerCrashError, in_worker
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics

#: payload kinds understood by :func:`execute_payload`
PAYLOAD_KINDS = ("benchmark", "sources", "probe", "parallelize")


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job payload to completion inside a worker.

    Payload kinds:

    * ``benchmark`` — a registered PERFECT substitute by name plus a
      pipeline configuration (``none``/``conventional``/``annotation``);
    * ``sources`` — literal ``{filename: fortran}`` sources with
      optional annotation text, same configurations;
    * ``probe`` — tiny diagnostic ops (``echo``/``sleep``/
      ``crash-once``) used by health checks and the service tests;
    * ``parallelize`` — real-world ``{filename: fortran}`` sources
      through the tolerant fixed-form frontend
      (:func:`repro.fortran.fixedform.parallelize_source`): the result
      carries the annotated OpenMP source plus recovery diagnostics and
      per-loop decision explanations.

    ``benchmark`` and ``sources`` payloads additionally accept an
    ``annotations_mode`` key (``hand``/``inferred``/``demand``) choosing
    the annotation source for ``annotation``-config runs.
    """
    kind = payload.get("kind")
    trace = bool(payload.get("trace"))
    backend = payload.get("backend")
    if kind == "probe":
        return _execute_probe(payload)
    if kind == "parallelize":
        return _execute_parallelize(payload)
    annotations_mode = payload.get("annotations_mode", "hand")
    if kind == "benchmark":
        from repro.perfect import get_benchmark
        benchmark = get_benchmark(payload["benchmark"])
        return _tag_trace(_run_pipeline(
            benchmark, payload.get("config", "annotation"),
            trace=trace, backend=backend,
            annotations_mode=annotations_mode), payload)
    if kind == "sources":
        from repro.perfect.suite import Benchmark
        sources = payload.get("sources")
        if not isinstance(sources, dict) or not sources:
            raise ValueError("'sources' payload needs a non-empty "
                             "{filename: text} mapping")
        benchmark = Benchmark(
            name=payload.get("name", "submitted"),
            description="submitted via repro.service",
            sources=dict(sources),
            annotations=payload.get("annotations", ""))
        return _tag_trace(_run_pipeline(
            benchmark, payload.get("config", "annotation"),
            trace=trace, backend=backend,
            annotations_mode=annotations_mode), payload)
    raise ValueError(f"unknown payload kind {kind!r}; "
                     f"expected one of {PAYLOAD_KINDS}")


def _tag_trace(result: Dict[str, Any],
               payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp a traced result's export with its job identity (the payload
    digest), so any later :meth:`Tracer.merge` of a crash-retried job's
    attempts counts each decision record exactly once."""
    trace = result.get("trace")
    if isinstance(trace, dict) and "job" not in trace:
        from repro.service.jobs import payload_digest
        trace["job"] = payload_digest(payload)
    return result


def _execute_parallelize(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.annotations.infer import ANNOTATION_MODES
    from repro.fortran.fixedform import parallelize_source
    sources = payload.get("sources")
    if not isinstance(sources, dict) or not sources:
        raise ValueError("'parallelize' payload needs a non-empty "
                         "{filename: text} mapping")
    config = payload.get("config", "annotation")
    if config not in ("none", "conventional", "annotation"):
        raise ValueError(f"unknown config {config!r}")
    mode = payload.get("annotations_mode", "inferred")
    if mode not in ANNOTATION_MODES:
        raise ValueError(f"unknown annotations mode {mode!r}; "
                         f"expected one of {ANNOTATION_MODES}")
    return parallelize_source(
        dict(sources), config=config, annotations_mode=mode,
        annotations_text=payload.get("annotations", ""),
        tolerant=bool(payload.get("tolerant", True)))


def _run_pipeline(benchmark, config_kind: str, trace: bool = False,
                  backend: Optional[str] = None,
                  annotations_mode: str = "hand") -> Dict[str, Any]:
    from repro.annotations.infer import ANNOTATION_MODES
    from repro.experiments.pipeline import (Config, run_config,
                                            summarize_result)
    from repro.runtime.backend import BACKEND_ENV, BACKENDS, default_backend
    if config_kind not in ("none", "conventional", "annotation"):
        raise ValueError(f"unknown config {config_kind!r}")
    if annotations_mode not in ANNOTATION_MODES:
        raise ValueError(f"unknown annotations mode {annotations_mode!r}; "
                         f"expected one of {ANNOTATION_MODES}")
    if backend is not None and backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    tracer = None
    if trace:
        from repro.trace import Tracer
        tracer = Tracer(label=f"service {benchmark.name}/{config_kind}")
    saved = os.environ.get(BACKEND_ENV)
    if backend is not None:
        # scope the requested backend to this job: anything in the
        # pipeline that executes programs goes through make_interpreter,
        # which reads the env at construction time
        os.environ[BACKEND_ENV] = backend
    try:
        summary = summarize_result(
            run_config(benchmark,
                       Config(config_kind, annotations=annotations_mode),
                       tracer=tracer))
    finally:
        if backend is not None:
            if saved is None:
                os.environ.pop(BACKEND_ENV, None)
            else:
                os.environ[BACKEND_ENV] = saved
    summary["backend"] = backend or default_backend()
    if tracer is not None:
        summary["trace"] = tracer.export()
    return summary


def run_job_observed(item: Tuple[Dict[str, Any], Dict[str, Any]]
                     ) -> Tuple[Dict[str, Any], Optional[Dict]]:
    """Worker entry point wrapping :func:`execute_payload` with
    observability: the client's correlation IDs become log context, and
    every metric the pipeline touches in the worker comes back as a
    registry delta for the parent to merge (same protocol as
    :func:`repro.experiments.executor._observed_task`).

    Inline pools share the parent's default registry, so there the
    metrics already landed — the delta is None and merging is skipped.
    """
    payload, ctx = item
    if not in_worker():
        with obs_logging.log_context(**ctx):
            return execute_payload(payload), None
    obs_logging.configure()  # spawned fresh: read REPRO_LOG* env
    registry = obs_metrics.get_registry()
    before = registry.export()
    with obs_logging.log_context(**ctx):
        result = execute_payload(payload)
    return result, obs_metrics.MetricsRegistry.delta(before,
                                                     registry.export())


def _execute_probe(payload: Dict[str, Any]) -> Dict[str, Any]:
    op = payload.get("probe")
    if op == "echo":
        return {"echo": payload.get("value")}
    if op == "sleep":
        seconds = float(payload.get("seconds", 0.0))
        time.sleep(seconds)
        return {"slept": seconds}
    if op == "crash-once":
        # First attempt: leave a marker, then die the way a real crash
        # does (SIGKILL in a pool worker; a WorkerCrashError inline).
        # Second attempt sees the marker and succeeds — the retry path.
        marker = payload["marker"]
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("crashed\n")
            if in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerCrashError("simulated worker crash")
        return {"recovered": True}
    raise ValueError(f"unknown probe op {op!r}")
