"""Service metrics: counters, gauges, histograms.

A single :class:`MetricsRegistry` owns every metric; accessors are
get-or-create so instrumentation points never race registration.  Two
render formats:

* ``to_json()`` — nested dict for the ``metrics`` protocol op and tests;
* ``to_prometheus()`` — the Prometheus text exposition format, so a
  scraper pointed at ``repro svc-status --prometheus`` (or the raw op)
  needs no translation layer.

All mutation is lock-protected; observation costs one lock acquire, fine
at this system's request rates (the pipeline behind each job runs for
milliseconds to seconds, not nanoseconds).
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

#: default histogram buckets (seconds) — the pipeline spans ~1ms probes
#: to multi-second whole-benchmark runs
DEFAULT_BUCKETS = (0.005, 0.02, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def _fmt(value: float) -> str:
    """Prometheus sample value: integers render without a decimal."""
    return str(int(value)) if float(value).is_integer() else repr(value)


def _labels_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count, optionally split by one label."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def to_json(self):
        with self._lock:
            if not self._values:
                return 0
            if list(self._values) == [()]:
                return self._values[()]
            return {_labels_suffix(k) or "total": v
                    for k, v in sorted(self._values.items())}

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items()) or [((), 0)]
            return [f"{self.name}{_labels_suffix(k)} {_fmt(v)}"
                    for k, v in items]


class Gauge:
    """A value that goes up and down (queue depth, running jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def to_json(self):
        return self.value()

    def samples(self) -> List[str]:
        return [f"{self.name} {_fmt(self.value())}"]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall clock on exit."""
        return _HistogramTimer(self)

    def to_json(self):
        with self._lock:
            cumulative = 0
            buckets = {}
            for bound, n in zip(self.buckets, self._counts):
                cumulative += n
                buckets[str(bound)] = cumulative
            buckets["+Inf"] = self._count
            return {"count": self._count, "sum": self._sum,
                    "buckets": buckets}

    def samples(self) -> List[str]:
        with self._lock:
            out = []
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts):
                cumulative += n
                out.append(f'{self.name}_bucket{{le="{bound}"}} '
                           f'{cumulative}')
            out.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            out.append(f"{self.name}_sum {_fmt(self._sum)}")
            out.append(f"{self.name}_count {self._count}")
            return out


class _HistogramTimer:
    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Thread-safe, get-or-create home for every service metric."""

    def __init__(self):
        self._lock = threading.Lock()          # guards the metric table
        self._metrics: Dict[str, object] = {}  # name -> metric (ordered)

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, threading.Lock(), **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {name!r} already registered "
                                f"as {type(metric).__name__}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def _snapshot(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for metric in self._snapshot():
            out[metric.name] = metric.to_json()
        return out

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self._snapshot():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"
