"""Compatibility shim: the metrics primitives now live in
:mod:`repro.obs.metrics` (the process-wide observability spine).

``repro.service`` keeps importing from here so the wire protocol, the
server, and existing callers are untouched; new instrumentation should
import :mod:`repro.obs.metrics` (or the module-level ``counter`` /
``gauge`` / ``histogram`` helpers bound to the default registry).
"""

from repro.obs.metrics import (  # noqa: F401
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _fmt,
    _labels_suffix,
    get_registry,
    set_registry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]
