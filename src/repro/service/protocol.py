"""Wire protocol: length-prefixed JSON frames over a stream socket.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both requests and responses are single JSON
objects; a connection carries any number of request/response pairs in
order.  Requests name an operation in ``op``; responses always carry a
boolean ``ok``, plus ``error``/``code`` when ``ok`` is false.

Job payloads may set ``trace: true`` to run the pipeline under a
:class:`repro.trace.Tracer`; the worker attaches the exported trace to
the stored result.  Because traces are bulky, ``submit`` and ``result``
responses omit the ``trace`` key unless the request sets
``include_trace: true``.

The frame length is capped so a corrupt or hostile peer cannot make the
server allocate unbounded memory from four bytes of garbage.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict

#: refuse frames beyond this many bytes (a full benchmark source tree is
#: a few hundred KB; 32 MiB leaves room for batched sources)
MAX_FRAME = 32 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame, oversize frame, or connection closed mid-frame."""


def encode(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"message of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME}-byte frame limit")
    return _LEN.pack(len(body)) + body


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse one frame body; raises :class:`ProtocolError` on bad JSON."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame; raises :class:`ProtocolError` on EOF/corruption."""
    header = sock.recv(_LEN.size)
    if not header:
        raise ProtocolError("connection closed")  # clean EOF between frames
    if len(header) < _LEN.size:
        header += _recv_exact(sock, _LEN.size - len(header))
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    body = _recv_exact(sock, length) if length else b""
    return decode_body(body)


# -- asyncio counterparts (the cluster gateway) -------------------------

async def read_message_async(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one frame from a stream reader; same contract as
    :func:`recv_message` (the wire format is identical, so the blocking
    client and the asyncio gateway interoperate frame for frame)."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ProtocolError("connection closed") from None
        raise ProtocolError("connection closed mid-frame") from None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_body(body)


async def write_message_async(writer: asyncio.StreamWriter,
                              message: Dict[str, Any]) -> None:
    """Send one frame on a stream writer; raises :class:`ProtocolError`
    when the encoded message exceeds the frame limit."""
    writer.write(encode(message))
    await writer.drain()


def error_response(error: str, code: str = "error") -> Dict[str, Any]:
    return {"ok": False, "error": error, "code": code}
