"""repro.service — a batch parallelization daemon.

The one-shot CLI pays the full parse → inline → analyze → reverse cost
on every invocation.  This package turns the Figure-15 pipeline into a
long-running server: a bounded job queue with deadlines, retry and
backpressure (:mod:`.jobs`), a socket server speaking a length-prefixed
JSON protocol (:mod:`.server`, :mod:`.protocol`), an LRU result cache
layered over the ``.repro_cache/`` disk cache (:mod:`.cache`), service
metrics in JSON and Prometheus text form (:mod:`.metrics`), and a thin
client (:mod:`.client`) behind the ``repro serve`` / ``repro submit`` /
``repro svc-status`` subcommands.

See ``docs/service.md`` for the protocol, knobs and failure modes.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (FINAL_STATES, Job, JobQueue, JobState,
                                QueueFullError)
from repro.service.metrics import MetricsRegistry
from repro.service.server import ParallelizationServer

__all__ = [
    "FINAL_STATES", "Job", "JobQueue", "JobState", "MetricsRegistry",
    "ParallelizationServer", "QueueFullError", "ResultCache",
    "ServiceClient", "ServiceError",
]
