"""Protocol-op helpers shared by the serving tiers.

The single-node threaded daemon and the asyncio cluster gateway answer
the same client-facing operations (``submit``/``status``/``result``/
``cancel``/``health``/``metrics``/``shutdown``) with the same response
shapes — the synchronous :class:`repro.service.client.ServiceClient`
must work unchanged against either.  This module holds the shaping
logic both reuse so the two implementations cannot drift.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.jobs import Job, JobState

#: scalar types allowed as correlation-context values on the wire
_CTX_SCALARS = (str, int, float, bool)


def validate_ctx(ctx: Any) -> Optional[str]:
    """Problem description for a submit ``ctx`` field, or None if fine."""
    if ctx is None:
        return None
    if not (isinstance(ctx, dict)
            and all(isinstance(k, str) and isinstance(v, _CTX_SCALARS)
                    for k, v in ctx.items())):
        return "'ctx' must map string keys to scalar values"
    return None


def validate_trace_ctx(trace_ctx: Any) -> Optional[str]:
    """Problem description for a submit ``trace_ctx`` field, or None.

    Delegates to :func:`repro.obs.distributed.validate_trace_ctx`
    (W3C-traceparent shape); re-exported here so both tiers validate
    submissions through one module, like ``validate_ctx``.
    """
    from repro.obs.distributed import validate_trace_ctx as _validate
    return _validate(trace_ctx)


def strip_trace(result: Optional[Dict[str, Any]],
                include_trace: bool) -> Optional[Dict[str, Any]]:
    """Drop the bulky ``trace`` key unless the client asked for it."""
    if not include_trace and isinstance(result, dict) and "trace" in result:
        return {k: v for k, v in result.items() if k != "trace"}
    return result


def job_response(job: Job, deduped: bool = False,
                 include_result: bool = False,
                 include_trace: bool = False) -> Dict[str, Any]:
    """The standard job-status response (both tiers answer with this)."""
    response = {"ok": True, "deduped": deduped}
    response.update(job.snapshot())
    if include_result and job.state == JobState.DONE:
        response["result"] = strip_trace(job.result, include_trace)
    return response
