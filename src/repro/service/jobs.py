"""Job model and bounded FIFO queue for the parallelization service.

Lifecycle::

    submitted --(admitted)--> queued --> running --> done
                  |                        |    \\-> failed
                  |                        |-> timeout (deadline passed)
                  |                        \\-> queued again (worker crash,
                  |                             attempts left, backoff)
                  \\--(queue full)--> rejected with a backpressure reason
    queued --(cancel)--> canceled

Deadlines are wall-clock budgets covering queue wait *plus* execution;
a job that is already past its deadline when a dispatcher picks it up
times out without running.  Retries apply only to worker *crashes*
(:class:`~repro.experiments.executor.WorkerCrashError`) — a task that
raises an ordinary exception is deterministic and fails immediately.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELED = "canceled"


FINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.TIMEOUT, JobState.CANCELED))

_ids = itertools.count(1)


def payload_digest(payload: Dict[str, Any]) -> str:
    """Canonical content digest of a submit payload.

    The payload fully determines the work (benchmark name or literal
    sources, annotations, configuration), so one digest keys in-flight
    deduplication and the result cache alike.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"repro-job-v1:" + canon.encode()).hexdigest()


@dataclass
class Job:
    digest: str
    payload: Dict[str, Any]
    deadline: Optional[float] = None      # seconds, queue wait + run
    max_retries: int = 1                  # crash retries, not failures
    id: str = field(default_factory=lambda: f"job-{next(_ids):06d}")
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: str = ""
    result: Optional[Dict[str, Any]] = None
    cached: bool = False                  # answered from the result cache
    #: correlation IDs carried from the submitting client (run_id, ...).
    #: Deliberately NOT part of the payload: two clients submitting the
    #: same work must dedup to one job regardless of who asked.
    ctx: Dict[str, Any] = field(default_factory=dict)
    #: W3C-traceparent-style distributed trace context, carried beside
    #: the payload exactly like ``ctx`` (never inside it — digests and
    #: dedup are identical with tracing on or off).  None = untraced.
    trace_ctx: Optional[Dict[str, Any]] = None
    finished: threading.Event = field(default_factory=threading.Event,
                                      repr=False)

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left before the deadline (None = no deadline)."""
        if self.deadline is None:
            return None
        now = time.monotonic() if now is None else now
        return self.deadline - (now - self.submitted_at)

    def expired(self, now: Optional[float] = None) -> bool:
        remaining = self.remaining(now)
        return remaining is not None and remaining <= 0

    def finish(self, state: str, result: Optional[Dict[str, Any]] = None,
               error: str = "") -> None:
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.monotonic()
        self.finished.set()

    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status view (no result body — fetch via ``result``)."""
        return {
            "job_id": self.id,
            "digest": self.digest,
            "state": self.state,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "deadline": self.deadline,
            "cached": self.cached,
            "error": self.error,
            "latency": self.latency(),
        }


class QueueFullError(Exception):
    """Backpressure: the bounded queue rejected a submission."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class JobQueue:
    """Bounded FIFO of :class:`Job` with explicit backpressure.

    ``put`` rejects (never blocks) when the queue is at capacity, so a
    flooded server answers "try later" instead of stalling every client
    connection.  Crash retries re-enter with ``force=True`` — the job
    was already admitted once; bouncing it on re-entry would turn a
    transient worker death into a spurious rejection.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, job: Job, force: bool = False) -> None:
        with self._cond:
            if self._closed:
                raise QueueFullError("service is shutting down")
            if not force and len(self._items) >= self.capacity:
                raise QueueFullError(
                    f"queue is full ({self.capacity} jobs waiting); "
                    f"retry after the backlog drains")
            self._items.append(job)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job, or None when the wait times out / the queue closes."""
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop accepting work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def depth(self) -> int:
        with self._cond:
            return len(self._items)
