"""The parallelization daemon.

One :class:`ParallelizationServer` owns four cooperating pieces:

* a listening TCP socket; each accepted connection gets a handler
  thread that reads length-prefixed JSON requests (:mod:`.protocol`)
  and answers them from the shared job table;
* a bounded :class:`~repro.service.jobs.JobQueue` feeding N dispatcher
  threads;
* one :class:`~repro.experiments.executor.WorkerPool` shared by the
  dispatchers — pipeline work runs in worker *processes* (crash
  isolation, deadline abandonment), degrading to in-thread execution
  where pools are unavailable;
* a :class:`~repro.service.cache.ResultCache` plus a
  :class:`~repro.service.metrics.MetricsRegistry`.

Deduplication: submissions are keyed by
:func:`~repro.service.jobs.payload_digest`.  A digest with a live
(queued/running) job joins that job instead of enqueueing a duplicate;
a digest with a cached result is answered instantly as an
already-finished job.  Both paths are visible in the metrics
(``repro_jobs_deduped_total``, ``repro_cache_hits_total``).
"""

from __future__ import annotations

import os
import threading
import time
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.executor import (WorkerCrashError, WorkerPool,
                                        WorkerTimeout, resolve_jobs)
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs.distributed import ClockModel, SpanRecorder, TraceContext
from repro.obs.telemetry import SpanStore, TelemetryStore
from repro.service import ops, protocol
from repro.service.cache import ResultCache
# re-exported for compatibility: execution moved to its own module so the
# cluster tier (gateway dispatchers, remote worker nodes) shares it
from repro.service.execution import (PAYLOAD_KINDS,  # noqa: F401
                                     _execute_probe, _run_pipeline,
                                     execute_payload, run_job_observed)
from repro.service.jobs import (FINAL_STATES, Job, JobQueue, JobState,
                                QueueFullError, payload_digest)
from repro.service.metrics import MetricsRegistry

#: states a digest counts as "in flight" for deduplication
_LIVE_STATES = (JobState.QUEUED, JobState.RUNNING)

_log = obs_logging.get_logger("repro.service")


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

class ParallelizationServer:
    """Long-running batch parallelization daemon (see module docstring).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.address`` after :meth:`start`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: Optional[int] = None, queue_capacity: int = 64,
                 cache_capacity: int = 128,
                 cache_dir: Optional[str] = None,
                 default_deadline: Optional[float] = None,
                 max_retries: int = 1, retry_backoff: float = 0.5,
                 drain_timeout: float = 30.0,
                 inline: Optional[bool] = None,
                 telemetry_dir: Optional[str] = None,
                 run_id: Optional[str] = None):
        self.host = host
        self.port = port
        self.workers = resolve_jobs(jobs)
        self.default_deadline = default_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.drain_timeout = drain_timeout

        self.queue = JobQueue(queue_capacity)
        self.cache = ResultCache(cache_capacity, directory=cache_dir)
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(self.workers, inline=inline)

        # observability plane (single-node flavor: everything on one
        # clock, so ClockModel stays empty and stitching is trivial)
        self.run_id = run_id or f"svc-{os.getpid()}"
        self.clock = ClockModel()
        self.spans = SpanRecorder("daemon")
        self.span_store = SpanStore(telemetry_dir, self.run_id)
        self.telemetry = TelemetryStore(telemetry_dir, self.run_id)
        self._traced: Dict[str, Dict[str, Any]] = {}

        self._jobs: Dict[str, Job] = {}          # job id -> Job
        self._by_digest: Dict[str, str] = {}     # digest -> live job id
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._started_at: Optional[float] = None
        self._sock: Optional[socket.socket] = None
        self._threads: list = []
        self.address: Optional[Tuple[str, int]] = None

        m = self.metrics
        self._m_submitted = m.counter(
            "repro_jobs_submitted_total", "jobs accepted into the queue")
        self._m_rejected = m.counter(
            "repro_jobs_rejected_total", "submissions rejected (queue full)")
        self._m_deduped = m.counter(
            "repro_jobs_deduped_total", "submissions joined to an "
            "in-flight job with the same digest")
        self._m_retried = m.counter(
            "repro_jobs_retried_total", "crash retries re-enqueued")
        self._m_completed = m.counter(
            "repro_jobs_completed_total", "jobs reaching a final state, "
            "by state")
        self._m_cache_hits = m.counter(
            "repro_cache_hits_total", "submissions answered from the "
            "result cache")
        self._m_cache_misses = m.counter(
            "repro_cache_misses_total", "submissions that had to run")
        self._m_depth = m.gauge(
            "repro_queue_depth", "jobs waiting in the queue")
        self._m_running = m.gauge(
            "repro_jobs_running", "jobs currently executing")
        self._m_uptime = m.gauge(
            "repro_uptime_seconds", "seconds since the server started")
        self._m_latency = m.histogram(
            "repro_job_latency_seconds", "submit-to-finish wall clock")
        self._m_requests = m.counter(
            "repro_requests_total", "protocol requests handled, by op")
        self._m_request_seconds = m.histogram(
            "repro_request_seconds", "protocol request handling time")
        self._m_loops_parallel = m.counter(
            "repro_loops_parallel_total", "loops parallelized by "
            "finished jobs")
        self._m_loops_serial = m.counter(
            "repro_loops_serial_total", "loops left serial by finished "
            "jobs, by reason")

    # -- lifecycle ---------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, spawn acceptor + dispatchers, return ``(host, port)``."""
        self._started_at = time.monotonic()
        swept = self.cache.sweep()
        if swept:
            _log.warning("cache-sweep", removed=swept)
        self._sock = socket.create_server((self.host, self.port))
        self.address = self._sock.getsockname()[:2]
        for i in range(self.workers):
            t = threading.Thread(target=self._dispatch_loop,
                                 name=f"repro-dispatch-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._accept_loop,
                             name="repro-accept", daemon=True)
        t.start()
        self._threads.append(t)
        return self.address

    def stop(self, drain: bool = False,
             drain_timeout: Optional[float] = None) -> None:
        """Shut the server down.

        With ``drain=True`` the server first stops admitting new jobs
        (submissions are rejected with a ``draining`` backpressure
        reason) and waits up to ``drain_timeout`` seconds (default: the
        server's ``drain_timeout``) for every accepted job to reach a
        final state — no accepted job is dropped by a graceful
        shutdown.  Status/result requests keep being answered while
        draining, so waiting clients collect their results.
        """
        if self._stop.is_set():
            return
        if drain:
            self._draining.set()
            _log.info("drain-start", pending=self.pending_jobs())
            budget = self.drain_timeout if drain_timeout is None \
                else drain_timeout
            deadline = time.monotonic() + max(0.0, budget)
            while self.pending_jobs() and time.monotonic() < deadline \
                    and not self._stop.is_set():
                time.sleep(0.02)
            _log.info("drain-finish", pending=self.pending_jobs())
        if self._stop.is_set():
            return
        self._stop.set()
        self.queue.close()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)
        self.pool.shutdown()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (the ``serve`` CLI foreground)."""
        return self._stop.wait(timeout=timeout)

    @property
    def running(self) -> bool:
        return self._started_at is not None and not self._stop.is_set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def pending_jobs(self) -> int:
        """Accepted jobs not yet in a final state (queued or running)."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state not in FINAL_STATES)

    def uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- submission --------------------------------------------------

    def submit(self, payload: Dict[str, Any],
               deadline: Optional[float] = None,
               max_retries: Optional[int] = None,
               ctx: Optional[Dict[str, Any]] = None,
               trace_ctx: Optional[Dict[str, Any]] = None) -> Job:
        """Admit a payload: dedup against in-flight work, answer from
        cache, or enqueue.  Raises :class:`QueueFullError` on
        backpressure and ValueError on malformed payloads.  ``ctx``
        carries the client's correlation IDs into the job's logs;
        ``trace_ctx`` carries a distributed trace context.  Neither
        participates in dedup (see :class:`Job`)."""
        kind = payload.get("kind")
        if kind not in PAYLOAD_KINDS:
            raise ValueError(f"unknown payload kind {kind!r}; "
                             f"expected one of {PAYLOAD_KINDS}")
        if self._draining.is_set():
            self._m_rejected.inc()
            raise QueueFullError("service is draining before shutdown; "
                                 "no new jobs accepted")
        digest = payload_digest(payload)
        if deadline is None:
            deadline = self.default_deadline
        if max_retries is None:
            max_retries = self.max_retries
        trace = self._open_trace(trace_ctx)

        with self._lock:
            live_id = self._by_digest.get(digest)
            if live_id is not None:
                live = self._jobs[live_id]
                if live.state in _LIVE_STATES:
                    self._m_deduped.inc()
                    return live
                del self._by_digest[digest]  # stale index entry

            job = Job(digest=digest, payload=payload, deadline=deadline,
                      max_retries=max_retries, ctx=dict(ctx or {}))
            if trace is not None:
                job.trace_ctx = {
                    "traceparent": trace["span"].to_traceparent()}
                self._traced[job.id] = trace
            t0_wall, t0 = time.time(), time.perf_counter()
            cached = self.cache.get(digest)
            if trace is not None:
                self.spans.record(
                    "cache-lookup", trace["span"].child(), cat="cache",
                    start_wall=t0_wall,
                    duration=time.perf_counter() - t0,
                    parent_id=trace["span"].span_id,
                    digest=digest, hit=cached is not None)
            if cached is not None:
                self._m_cache_hits.inc()
                job.cached = True
                job.finish(JobState.DONE, result=cached)
                self._m_completed.inc(state=JobState.DONE)
                self._jobs[job.id] = job
                if trace is not None:
                    self._record_job_span(job, trace)
                return job
            self._m_cache_misses.inc()
            try:
                self.queue.put(job)
            except QueueFullError:
                self._m_rejected.inc()
                self._traced.pop(job.id, None)
                raise
            self._m_submitted.inc()
            self._jobs[job.id] = job
            self._by_digest[digest] = job.id
            self._m_depth.set(self.queue.depth())
            return job

    def _open_trace(self, trace_ctx: Optional[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
        """Open the daemon-side 'job' span for a traced submission
        (None — the common case — costs one ``is None`` test)."""
        if trace_ctx is None:
            return None
        root = TraceContext.from_dict(trace_ctx)  # raises on malformed
        if root is None:
            return None
        return {"root": root, "span": root.child(),
                "submit_wall": time.time()}

    def _record_job_span(self, job: Job, trace: Dict[str, Any]) -> None:
        if trace.get("recorded"):
            return
        trace["recorded"] = True
        self.spans.record(
            "job", trace["span"], cat="daemon",
            start_wall=trace["submit_wall"],
            duration=job.latency() or 0.0,
            parent_id=trace["root"].span_id,
            job_id=job.id, digest=job.digest, state=job.state,
            cached=job.cached, attempts=job.attempts)

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Tuple[bool, str]:
        """Cancel a queued job.  Running/finished jobs are not touched:
        a busy worker cannot be interrupted selectively, and a finished
        job has nothing to cancel."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return False, f"unknown job {job_id!r}"
            if job.state != JobState.QUEUED:
                return False, f"job is {job.state}, not queued"
            job.finish(JobState.CANCELED, error="canceled by client")
            self._m_completed.inc(state=JobState.CANCELED)
            self._drop_digest(job)
        return True, "canceled"

    def _drop_digest(self, job: Job) -> None:
        # caller holds self._lock
        if self._by_digest.get(job.digest) == job.id:
            del self._by_digest[job.digest]

    # -- dispatching -------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.2)
            self._m_depth.set(self.queue.depth())
            if job is None:
                continue
            if job.state != JobState.QUEUED:
                continue  # canceled while waiting
            if job.expired():
                self._finalize(job, JobState.TIMEOUT,
                               error="deadline expired while queued")
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_at = time.monotonic()
        job.attempts += 1
        self._m_running.inc()
        trace = self._traced.get(job.id)
        t0_wall, t0 = time.time(), time.perf_counter()
        if trace is not None:
            wait_from = trace.get("last_wait", trace["submit_wall"])
            self.spans.record(
                "queue-wait", trace["span"].child(), cat="daemon",
                start_wall=wait_from,
                duration=max(0.0, t0_wall - wait_from),
                parent_id=trace["span"].span_id, job_id=job.id,
                attempt=job.attempts)
            trace["last_wait"] = t0_wall
        with obs_logging.log_context(job_id=job.id, **job.ctx):
            _log.info("job-start", digest=job.digest[:12],
                      attempt=job.attempts,
                      kind=job.payload.get("kind"))
            try:
                result, delta = self.pool.run(run_job_observed,
                                              (job.payload, job.ctx),
                                              timeout=job.remaining())
            except WorkerTimeout:
                self._finalize(job, JobState.TIMEOUT,
                               error="deadline expired while running")
                _log.warning("job-timeout", digest=job.digest[:12])
            except WorkerCrashError as exc:
                self._handle_crash(job, exc)
                _log.warning("job-crash", digest=job.digest[:12],
                             attempt=job.attempts, error=str(exc))
            except Exception as exc:  # deterministic failure: no retry
                self._finalize(job, JobState.FAILED,
                               error=f"{type(exc).__name__}: {exc}")
                _log.warning("job-failed", digest=job.digest[:12],
                             error=f"{type(exc).__name__}: {exc}")
            else:
                if delta:
                    obs_metrics.get_registry().merge(delta)
                self.cache.put(job.digest, result)
                self._finalize(job, JobState.DONE, result=result)
                _log.info("job-done", digest=job.digest[:12],
                          latency=round(job.latency() or 0.0, 4))
            finally:
                self._m_running.dec()
                if trace is not None:
                    self.spans.record(
                        "execute", trace["span"].child(), cat="worker",
                        start_wall=t0_wall,
                        duration=time.perf_counter() - t0,
                        parent_id=trace["span"].span_id, job_id=job.id,
                        digest=job.digest, outcome=job.state,
                        attempt=job.attempts)

    def _handle_crash(self, job: Job, exc: WorkerCrashError) -> None:
        if job.attempts > job.max_retries:
            self._finalize(job, JobState.FAILED,
                           error=f"worker crashed {job.attempts} times "
                                 f"(retries exhausted): {exc}")
            return
        self._m_retried.inc()
        job.state = JobState.QUEUED
        delay = self.retry_backoff * (2 ** (job.attempts - 1))
        remaining = job.remaining()
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))

        def requeue() -> None:
            try:
                self.queue.put(job, force=True)
                self._m_depth.set(self.queue.depth())
            except QueueFullError:  # closed: shutting down
                self._finalize(job, JobState.FAILED,
                               error="service stopped during crash retry")

        if delay <= 0:
            requeue()
        else:
            timer = threading.Timer(delay, requeue)
            timer.daemon = True
            timer.start()

    def _finalize(self, job: Job, state: str,
                  result: Optional[Dict[str, Any]] = None,
                  error: str = "") -> None:
        with self._lock:
            job.finish(state, result=result, error=error)
            self._m_completed.inc(state=state)
            self._drop_digest(job)
            trace = self._traced.get(job.id)
            if trace is not None:
                self._record_job_span(job, trace)
        latency = job.latency()
        if latency is not None:
            self._m_latency.observe(latency)
        if result is not None:
            for phase, seconds in result.get("timings", {}).items():
                self.metrics.histogram(
                    f"repro_phase_{phase}_seconds",
                    f"wall clock of the {phase} phase").observe(seconds)
            count = result.get("parallel_count")
            if isinstance(count, int):
                self._m_loops_parallel.inc(count)
            for reason, n in result.get("serial_reasons", {}).items():
                self._m_loops_serial.inc(n, reason=reason)

    # -- protocol handling -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed by stop()
            t = threading.Thread(target=self._serve_connection,
                                 args=(conn,), daemon=True)
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request = protocol.recv_message(conn)
                except protocol.ProtocolError:
                    return
                try:
                    response = self.handle_request(request)
                except Exception as exc:
                    response = protocol.error_response(
                        f"{type(exc).__name__}: {exc}", code="internal")
                shutdown = response.pop("_shutdown", False)
                drain = response.pop("_drain", False)
                drain_timeout = response.pop("_drain_timeout", None)
                try:
                    protocol.send_message(conn, response)
                except protocol.ProtocolError as exc:
                    # response exceeds the frame limit: tell the client
                    # instead of silently dropping the connection
                    try:
                        protocol.send_message(conn, protocol.error_response(
                            f"response too large for one frame: {exc}",
                            code="oversize"))
                    except (OSError, protocol.ProtocolError):
                        return
                except OSError:
                    return
                if shutdown:
                    threading.Thread(
                        target=self.stop, daemon=True,
                        kwargs={"drain": drain,
                                "drain_timeout": drain_timeout}).start()
                    return

    #: hyphenated wire ops that cannot be reached via ``_op_<name>``
    #: attribute lookup (kept identical to the gateway's op names)
    _OP_ALIASES = {"trace-export": "_op_trace_export"}

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one protocol request (also the unit-test entry point)."""
        op = request.get("op")
        alias = self._OP_ALIASES.get(op) if isinstance(op, str) else None
        if alias is not None:
            handler = getattr(self, alias)
        else:
            handler = getattr(self, f"_op_{op}", None) if op else None
            if handler is not None and not str(op).isidentifier():
                handler = None
        if handler is None:
            self._m_requests.inc(op="unknown")
            return protocol.error_response(
                f"unknown op {op!r}; expected submit/status/result/"
                f"cancel/health/metrics/telemetry/trace-export/shutdown",
                code="bad-op")
        self._m_requests.inc(op=str(op))
        with self._m_request_seconds.time():
            return handler(request)

    def _job_response(self, job: Job, deduped: bool = False,
                      include_result: bool = False,
                      include_trace: bool = False) -> Dict[str, Any]:
        return ops.job_response(job, deduped=deduped,
                                include_result=include_result,
                                include_trace=include_trace)

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = request.get("payload")
        if not isinstance(payload, dict):
            return protocol.error_response(
                "submit needs a 'payload' object", code="bad-request")
        before = None
        with self._lock:
            digest = payload_digest(payload)
            live = self._by_digest.get(digest)
            before = live if live else None
        ctx = request.get("ctx")
        ctx_problem = ops.validate_ctx(ctx)
        if ctx_problem:
            return protocol.error_response(ctx_problem, code="bad-request")
        trace_ctx = request.get("trace_ctx")
        trace_problem = ops.validate_trace_ctx(trace_ctx)
        if trace_problem:
            return protocol.error_response(trace_problem,
                                           code="bad-request")
        try:
            job = self.submit(payload,
                              deadline=request.get("deadline"),
                              max_retries=request.get("max_retries"),
                              ctx=ctx, trace_ctx=trace_ctx)
        except QueueFullError as exc:
            return protocol.error_response(exc.reason, code="backpressure")
        except (ValueError, KeyError) as exc:
            return protocol.error_response(str(exc), code="bad-request")
        deduped = before is not None and job.id == before
        if request.get("wait"):
            job.finished.wait(timeout=request.get("wait_timeout"))
        return self._job_response(
            job, deduped=deduped,
            include_result=bool(request.get("wait")),
            include_trace=bool(request.get("include_trace")))

    def _lookup(self, request: Dict[str, Any]):
        job_id = request.get("job_id")
        job = self.get_job(job_id) if job_id else None
        if job is None:
            return None, protocol.error_response(
                f"unknown job {job_id!r}", code="not-found")
        return job, None

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        return err if err else self._job_response(job)

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        if err:
            return err
        if request.get("wait"):
            job.finished.wait(timeout=request.get("wait_timeout"))
        if job.state == JobState.DONE:
            return self._job_response(
                job, include_result=True,
                include_trace=bool(request.get("include_trace")))
        if job.state in FINAL_STATES:
            return protocol.error_response(
                f"job {job.id} finished as {job.state}: {job.error}",
                code=job.state)
        return protocol.error_response(
            f"job {job.id} is still {job.state}", code="not-ready")

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job, err = self._lookup(request)
        if err:
            return err
        ok, reason = self.cancel(job.id)
        response = self._job_response(job)
        response["canceled"] = ok
        response["detail"] = reason
        return response

    def _op_health(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "tier": "single-node",
            "uptime": self.uptime(),
            "draining": self.draining,
            "workers": self.workers,
            "pool_mode": "inline" if self.pool.inline else "process",
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "jobs_by_state": states,
            "cache_entries": len(self.cache),
            "cache_stats": self.cache.stats(),
        }

    def _exported_metrics(self) -> MetricsRegistry:
        """The server's own registry unioned with the process-default one.

        Pipeline instrumentation from finished jobs (dependence tests,
        cache lookups, …) is merged into the process-default registry;
        the server keeps its service metrics in a private registry so
        concurrent servers in one process (tests) don't share counts.
        The metrics op must expose both.
        """
        combined = MetricsRegistry()
        combined.merge(self.metrics.export())
        combined.merge(obs_metrics.get_registry().export())
        return combined

    def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._m_uptime.set(self.uptime())
        fmt = request.get("format", "json")
        if fmt == "prometheus":
            return {"ok": True, "format": "prometheus",
                    "text": self._exported_metrics().to_prometheus()}
        if fmt != "json":
            return protocol.error_response(
                f"unknown metrics format {fmt!r}", code="bad-request")
        return {"ok": True, "format": "json",
                "metrics": self._exported_metrics().to_json()}

    def _snapshot_telemetry(self) -> Dict[str, Any]:
        """One merged metric+health snapshot (the daemon has no
        background telemetry loop; snapshots happen on demand)."""
        self._m_uptime.set(self.uptime())
        self.span_store.add(self.spans.drain())
        metrics = self._exported_metrics().export()
        health = self._op_health({})
        health.pop("ok", None)
        return self.telemetry.add_snapshot(metrics, health)

    def _op_telemetry(self, request: Dict[str, Any]) -> Dict[str, Any]:
        snapshot = self._snapshot_telemetry()
        since = request.get("events_since")
        events = self.telemetry.events_since(
            since if isinstance(since, int) else 0)
        return {"ok": True, "tier": "single-node", "run_id": self.run_id,
                "snapshot": snapshot, "events": events,
                "event_seq": self.telemetry.event_seq(),
                "spans_stored": len(self.span_store)}

    def _op_trace_export(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Same shape as the gateway's ``trace-export``: all spans, the
        (empty — one clock) offset table, and finished traced jobs'
        decision records stamped with their producing span ids."""
        from repro.trace.tracer import Tracer
        self.span_store.add(self.spans.drain())
        trace_id = request.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            return protocol.error_response(
                "'trace_id' must be a string", code="bad-request")
        spans = self.span_store.spans(trace_id)
        seen: set = set()
        decisions: List[Dict[str, Any]] = []
        site_decisions: List[Dict[str, Any]] = []
        with self._lock:
            traced = list(self._traced.items())
        for job_id, trace in traced:
            job = self._jobs.get(job_id)
            if job is None or not isinstance(job.result, dict):
                continue
            if trace_id and trace["span"].trace_id != trace_id:
                continue
            export = job.result.get("trace")
            if not isinstance(export, dict):
                continue
            link = {"job_id": job.id, "digest": job.digest,
                    "span_id": trace["span"].span_id,
                    "trace_id": trace["span"].trace_id}
            for kind, field, out in (
                    ("loop", "decisions", decisions),
                    ("site", "site_decisions", site_decisions)):
                for d in export.get(field) or ():
                    if not isinstance(d, dict):
                        continue
                    key = Tracer._decision_key(job.digest, kind, d)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append({**d, **link})
        return {"ok": True, "run_id": self.run_id, "spans": spans,
                "clock_offsets": self.clock.to_dict(),
                "trace_ids": self.span_store.trace_ids(),
                "decisions": decisions,
                "site_decisions": site_decisions,
                "dropped": self.span_store.dropped + self.spans.dropped}

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        drain = bool(request.get("drain"))
        if drain:
            # reject new submissions immediately; the post-response stop
            # thread then waits for the in-flight jobs
            self._draining.set()
        return {"ok": True, "stopping": True, "draining": drain,
                "_shutdown": True,
                "_drain": drain,
                "_drain_timeout": request.get("drain_timeout")}
