"""Thin client for the parallelization daemon.

Each request opens a fresh connection — requests are stateless and a
few per job, so connection reuse buys nothing at this scale and a fresh
socket per call makes the client robust to daemon restarts between
calls.  Errors reported by the server (backpressure, unknown jobs,
failed jobs) surface as :class:`ServiceError` carrying the protocol
error ``code``.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.obs.logging import current_context
from repro.service import protocol

DEFAULT_PORT = 7411  # 'repro' on a phone keypad, roughly


class ServiceError(Exception):
    """The server answered ``ok: false`` (or could not be reached)."""

    def __init__(self, message: str, code: str = "error"):
        super().__init__(message)
        self.code = code


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises ServiceError."""
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=self.timeout) as sock:
                protocol.send_message(sock, message)
                response = protocol.recv_message(sock)
        except (OSError, protocol.ProtocolError) as exc:
            raise ServiceError(
                f"cannot reach repro service at {self.host}:{self.port} "
                f"({exc})", code="unreachable") from None
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"),
                               code=response.get("code", "error"))
        return response

    # -- operations --------------------------------------------------

    def submit(self, payload: Dict[str, Any], wait: bool = True,
               deadline: Optional[float] = None,
               max_retries: Optional[int] = None,
               wait_timeout: Optional[float] = None,
               include_trace: bool = False,
               trace_ctx: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "submit", "payload": payload,
                                   "wait": wait}
        ctx = current_context()
        if ctx:
            # correlation IDs ride next to the payload (never inside it:
            # they must not perturb the dedup digest)
            message["ctx"] = ctx
        if trace_ctx is not None:
            # distributed trace context: same rule as ctx — beside the
            # payload, never part of the dedup digest
            message["trace_ctx"] = trace_ctx
        if deadline is not None:
            message["deadline"] = deadline
        if max_retries is not None:
            message["max_retries"] = max_retries
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        if include_trace:
            message["include_trace"] = True
        return self.request(message)

    def submit_benchmark(self, name: str, config: str = "annotation",
                         **kwargs) -> Dict[str, Any]:
        return self.submit({"kind": "benchmark", "benchmark": name,
                            "config": config}, **kwargs)

    def submit_sources(self, sources: Dict[str, str],
                       annotations: str = "",
                       config: str = "annotation", **kwargs
                       ) -> Dict[str, Any]:
        return self.submit({"kind": "sources", "sources": sources,
                            "annotations": annotations, "config": config},
                           **kwargs)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})

    def result(self, job_id: str, wait: bool = False,
               wait_timeout: Optional[float] = None,
               include_trace: bool = False) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "result", "job_id": job_id,
                                   "wait": wait}
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        if include_trace:
            message["include_trace"] = True
        return self.request(message)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def health(self) -> Dict[str, Any]:
        return self.request({"op": "health"})

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        return self.request({"op": "metrics", "format": format})

    def telemetry(self, events_since: int = 0) -> Dict[str, Any]:
        """One live telemetry frame: a fresh metric+health snapshot plus
        events newer than ``events_since`` (feeds ``repro top``)."""
        return self.request({"op": "telemetry",
                             "events_since": events_since})

    def trace_export(self, trace_id: Optional[str] = None
                     ) -> Dict[str, Any]:
        """All stored spans (optionally one trace), per-node clock
        offsets, and decision records (feeds ``repro trace-collect``)."""
        message: Dict[str, Any] = {"op": "trace-export"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        return self.request(message)

    def shutdown(self, drain: bool = False,
                 drain_timeout: Optional[float] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "shutdown"}
        if drain:
            message["drain"] = True
        if drain_timeout is not None:
            message["drain_timeout"] = drain_timeout
        return self.request(message)
